//! Differential testing of the staged model-checking engine against the
//! naive Kleene evaluator it replaced: on random µLA formulas over a real
//! RCYCL abstraction, `engine::eval_with_opts` must compute the exact same
//! extension as `mc::eval` — at every thread count — and its counters must
//! not depend on the thread count.

// Property tests require the external `proptest` crate, which the offline
// build environment cannot fetch; see the crate manifest for how to enable.
#![cfg(feature = "proptest")]

use dcds_verify::bench::examples;
use dcds_verify::folang::{Formula, QTerm};
use dcds_verify::mucalc::mc::{eval, Valuation};
use dcds_verify::mucalc::{check_with_opts, eval_with_opts, McOptions, Mu, PredVar};
use dcds_verify::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random closed µLA formula over schema {R/1, Q/1} with quantified
/// variables V0..V2 and at most one fixpoint binder.
fn arb_mu_la() -> impl Strategy<Value = Mu> {
    let leaf = prop_oneof![
        Just(Mu::Query(Formula::True)),
        Just(Mu::Query(Formula::False)),
        (0usize..2, 0usize..3).prop_map(|(rel, v)| {
            Mu::Query(Formula::Atom(
                dcds_verify::reldata::RelId::from_index(rel),
                vec![QTerm::var(&format!("V{v}"))],
            ))
        }),
        (0usize..3, 0usize..3).prop_map(|(v, w)| Mu::Query(Formula::eq(
            QTerm::var(&format!("V{v}")),
            QTerm::var(&format!("V{w}"))
        ))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            inner.clone().prop_map(|f| f.diamond()),
            inner.clone().prop_map(|f| f.boxed()),
            (0usize..3, inner.clone()).prop_map(|(v, f)| {
                let name = format!("V{v}");
                Mu::exists(name.as_str(), Mu::live(&name).and(f))
            }),
            (0usize..3, inner.clone()).prop_map(|(v, f)| {
                let name = format!("V{v}");
                Mu::forall(name.as_str(), Mu::live(&name).implies(f))
            }),
            inner.clone().prop_map(|f| Mu::lfp(
                "Zp",
                f.diamond().or(Mu::Pvar(PredVar::new("Zp")).diamond())
            )),
            inner
                .clone()
                .prop_map(|f| Mu::gfp("Zq", f.or(Mu::Pvar(PredVar::new("Zq")).boxed()))),
        ]
    })
}

/// Close a formula by guarded-existentially quantifying its free variables.
fn close(f: Mu) -> Mu {
    let mut out = f;
    for v in out.clone().free_vars() {
        let name = v.name().to_owned();
        out = Mu::exists(name.as_str(), Mu::live(&name).and(out));
    }
    out
}

fn system() -> Ts {
    let e51 = examples::example_5_1();
    let pruning = rcycl(&e51, 100);
    assert!(pruning.complete);
    pruning.ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn engine_agrees_with_naive_at_all_thread_counts(f in arb_mu_la()) {
        let phi = close(f);
        prop_assume!(dcds_verify::mucalc::fragments::check_monotone(
            &phi, &mut BTreeMap::new(), true).is_ok());
        let ts = system();
        let oracle = eval(&phi, &ts, &mut Valuation::default());
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let (ext, counters) = eval_with_opts(
                &phi, &ts, &mut Valuation::default(), McOptions { threads });
            prop_assert_eq!(&ext, &oracle,
                "engine at {} threads disagrees with naive on {:?}", threads, phi);
            runs.push(counters);
        }
        // Counters are a function of the run, not of the schedule.
        prop_assert_eq!(runs[0], runs[1]);
        prop_assert_eq!(runs[0], runs[2]);
        // The top-level entry point agrees with the extension-level one.
        let run = check_with_opts(&phi, &ts, McOptions::default()).unwrap();
        prop_assert_eq!(run.holds, oracle.contains(&ts.initial()));
        prop_assert_eq!(&run.extension, &oracle);
    }
}
