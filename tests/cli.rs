//! Smoke tests for the `dcds` command-line interface, driving the real
//! binary over the spec files in `specs/`.

use std::process::Command;

/// Run the binary; returns (exit code, combined stdout+stderr).
fn dcds_code(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dcds"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("not killed by signal"), text)
}

fn dcds(args: &[&str]) -> (bool, String) {
    let (code, text) = dcds_code(args);
    (code == 0, text)
}

/// Run the binary; returns (exit code, stdout, stderr) separately, for the
/// tests that pin the stdout/stderr routing contract.
fn dcds_streams(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dcds"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().expect("not killed by signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn spec(name: &str) -> String {
    format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn analyze_ping_pong() {
    let (ok, text) = dcds(&["analyze", &spec("ping_pong.dcds")]);
    assert!(ok, "{text}");
    assert!(text.contains("weakly acyclic: false"));
    assert!(text.contains("GR-acyclic: true"));
    assert!(text.contains("state-bounded"));
}

#[test]
fn analyze_accumulator_renders_witness() {
    let (ok, text) = dcds(&["analyze", &spec("accumulator.dcds")]);
    assert!(ok, "{text}");
    assert!(text.contains("GR+-acyclic: false"));
    assert!(text.contains("recall cycle pi3"));
}

#[test]
fn analyze_travel_request() {
    let (ok, text) = dcds(&["analyze", &spec("travel_request.dcds")]);
    assert!(ok, "{text}");
    assert!(text.contains("GR-acyclic: false"));
    assert!(text.contains("GR+-acyclic: true"));
}

#[test]
fn check_verdicts_witnesses_and_exit_codes() {
    // Exit 0: property holds on a complete abstraction.
    let (code, text) = dcds_code(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
        "--witness",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("fragment: MuLP"));
    assert!(text.contains("verdict: true"));
    assert!(text.contains("mc engine"), "{text}");

    // Exit 1: property violated, with a counterexample path.
    let (code2, text2) = dcds_code(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (exists X . live(X) & R(X)) & [] Z",
        "--witness",
    ]);
    assert_eq!(code2, 1, "{text2}");
    assert!(text2.contains("verdict: false"));
    assert!(text2.contains("violating state"));
}

#[test]
fn check_truncated_abstraction_is_inconclusive() {
    // Exit 2: the state budget cuts the abstraction short.
    let (code, text) = dcds_code(&[
        "check",
        &spec("travel_request.dcds"),
        "nu Z . true & [] Z",
        "--max-states",
        "3",
    ]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("truncated"), "{text}");
}

#[test]
fn check_rejects_open_formulas_by_name() {
    let (code, text) = dcds_code(&["check", &spec("ping_pong.dcds"), "live(X) & R(X)"]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error:"), "{text}");
    assert!(text.contains("not closed"), "{text}");
    assert!(text.contains('X'), "{text}");
}

#[test]
fn check_threads_agree_and_zero_is_rejected() {
    let phi = "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z";
    let (c1, t1) = dcds_code(&["check", &spec("ping_pong.dcds"), phi, "--threads", "1"]);
    let (c2, t2) = dcds_code(&["check", &spec("ping_pong.dcds"), phi, "--threads", "2"]);
    assert_eq!(c1, 0, "{t1}");
    assert_eq!(c2, 0, "{t2}");
    // Identical counters and verdict at every thread count: compare the
    // thread-independent report lines.
    let strip = |t: &str| {
        t.lines()
            .filter(|l| !l.starts_with("mc engine"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&t1), strip(&t2));
    // The counters line differs only in its thread-count prefix.
    let tail = |t: &str| {
        t.lines()
            .find(|l| l.starts_with("mc engine"))
            .map(|l| l.split(':').nth(1).unwrap().to_owned())
    };
    assert_eq!(tail(&t1), tail(&t2), "counters must not depend on threads");

    let (c0, t0) = dcds_code(&["check", &spec("ping_pong.dcds"), phi, "--threads", "0"]);
    assert_ne!(c0, 0);
    assert!(t0.contains("--threads must be at least 1"), "{t0}");

    let (ca, ta) = dcds_code(&["abstract", &spec("ping_pong.dcds"), "--threads", "0"]);
    assert_ne!(ca, 0);
    assert!(ta.contains("--threads must be at least 1"), "{ta}");
}

#[test]
fn check_format_json_is_one_object_on_stdout() {
    let (code, stdout, stderr) = dcds_streams(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
        "--format",
        "json",
    ]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    let line = stdout.trim();
    assert_eq!(line.lines().count(), 1, "one JSON object: {stdout}");
    assert!(line.starts_with("{\"fragment\":"), "{line}");
    assert!(line.ends_with('}'), "{line}");
    assert!(line.contains("\"abstraction\":{\"how\":"), "{line}");
    assert!(
        line.contains("\"engine_counters\":{\"states_expanded\":"),
        "{line}"
    );
    assert!(
        line.contains("\"mc_counters\":{\"query_state_evals\":"),
        "{line}"
    );
    assert!(line.contains("\"verdict\":true"), "{line}");
    // Human commentary must not contaminate the machine stream.
    assert!(!stdout.contains("mc engine"), "{stdout}");
}

#[test]
fn check_compact_format_json_keeps_stdout_clean() {
    // `--compact` adds a human store-stats line; it must land on stderr so
    // stdout stays exactly one machine-readable JSON object, byte-for-byte
    // parseable by `jq`-style consumers.
    let (code, stdout, stderr) = dcds_streams(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
        "--format",
        "json",
        "--compact",
    ]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    let line = stdout.trim();
    assert_eq!(line.lines().count(), 1, "one JSON object: {stdout}");
    assert!(line.starts_with("{\"fragment\":"), "{line}");
    assert!(line.ends_with('}'), "{line}");
    assert!(line.contains("\"verdict\":true"), "{line}");
    assert!(line.contains("compact store"), "{line}");
    assert!(!stdout.contains("compact store: "), "{stdout}");
    assert!(!stdout.contains("mc engine"), "{stdout}");
    // The human commentary lives on stderr.
    assert!(stderr.contains("compact store: "), "{stderr}");
}

#[test]
fn check_obs_flags_write_trace_and_metrics() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("dcds_cli_trace_{}.json", std::process::id()));
    let metrics = dir.join(format!("dcds_cli_metrics_{}.json", std::process::id()));
    let (code, stdout, stderr) = dcds_streams(&[
        "check",
        &spec("travel_request.dcds"),
        "nu Z . true & [] Z",
        "--max-states",
        "200",
        "--trace",
        trace.to_str().unwrap(),
        "--stats",
        "--metrics-json",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    // stdout: the machine-readable report only.
    assert!(stdout.contains("verdict: true"), "{stdout}");
    assert!(!stdout.contains("span summary"), "{stdout}");
    // stderr: the --stats summary and the trace-written note.
    assert!(stderr.contains("== span summary"), "{stderr}");
    assert!(stderr.contains("== counters =="), "{stderr}");
    assert!(stderr.contains("trace:"), "{stderr}");

    let t = std::fs::read_to_string(&trace).unwrap();
    assert!(t.starts_with("{\"displayTimeUnit\""), "{t}");
    assert!(t.contains("\"ph\":\"X\""));
    assert!(!t.contains("\"ph\":\"B\""), "complete events only");
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.starts_with("{\"counters\":{"), "{m}");
    assert!(m.contains("rcycl.triples_processed"), "{m}");
    assert!(m.contains("mc.query_state_evals"), "{m}");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

/// Run the binary with extra environment variables set.
fn dcds_streams_env(args: &[&str], envs: &[(&str, &str)]) -> (i32, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcds"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.code().expect("not killed by signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn abstract_profile_writes_folded_stacks_covering_the_run() {
    let dir = std::env::temp_dir();
    let profile = dir.join(format!("dcds_cli_profile_{}.folded", std::process::id()));
    let events = dir.join(format!("dcds_cli_profile_ev_{}.jsonl", std::process::id()));
    let (code, _stdout, stderr) = dcds_streams(&[
        "abstract",
        &spec("travel_request.dcds"),
        "--max-states",
        "200",
        "--profile",
        profile.to_str().unwrap(),
        "--profile-alloc",
        "--events",
        events.to_str().unwrap(),
        "--stats",
    ]);
    assert_eq!(code, 0, "{stderr}");
    // The --stats table gains allocation columns under --profile-alloc.
    assert!(stderr.contains("== top spans (self time) =="), "{stderr}");
    assert!(stderr.contains("alloc"), "{stderr}");

    // Every folded line is `path;seg;... weight`; the driver paths (the
    // non-`workers` trees) partition the root's inclusive time, so their
    // self-time sum is the root's folded total.
    let folded = std::fs::read_to_string(&profile).unwrap();
    let mut driver_self_us = 0u64;
    for line in folded.lines() {
        let (path, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("folded line without weight: {line}"));
        let w: u64 = weight
            .parse()
            .unwrap_or_else(|_| panic!("bad weight: {line}"));
        assert!(!path.is_empty());
        if !path.starts_with("workers") {
            driver_self_us += w;
        }
    }
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("run ") || l.starts_with("run;")),
        "root `run` span missing: {folded}"
    );

    // The allocation-weighted companion exists and attributes real bytes.
    let alloc = std::fs::read_to_string(format!("{}.alloc", profile.display())).unwrap();
    let alloc_total: u64 = alloc
        .lines()
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert!(alloc_total > 0, "no bytes attributed: {alloc}");

    // The folded root total accounts for the run's wall clock (within 5%,
    // plus a small absolute slack for sub-millisecond runs).
    let ev = std::fs::read_to_string(&events).unwrap();
    let last = ev.lines().last().unwrap();
    assert!(last.contains("\"type\":\"run_end\""), "{ev}");
    let wall_us: u64 = last
        .split("\"wall_us\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("run_end without wall_us: {last}"));
    let slack = (wall_us / 20).max(2_000);
    assert!(
        driver_self_us + slack >= wall_us && driver_self_us <= wall_us + slack,
        "folded root {driver_self_us}µs vs wall {wall_us}µs"
    );
    let _ = std::fs::remove_file(&profile);
    let _ = std::fs::remove_file(format!("{}.alloc", profile.display()));
    let _ = std::fs::remove_file(&events);
}

#[test]
fn check_events_stream_has_lifecycle_and_monotonic_seq() {
    let dir = std::env::temp_dir();
    let events = dir.join(format!("dcds_cli_events_{}.jsonl", std::process::id()));
    let (code, _stdout, stderr) = dcds_streams(&[
        "check",
        &spec("travel_request.dcds"),
        "nu Z . true & [] Z",
        "--max-states",
        "200",
        "--events",
        events.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stderr}");
    let text = std::fs::read_to_string(&events).unwrap();
    let first = text.lines().next().unwrap();
    assert!(first.contains("\"type\":\"run_start\""), "{first}");
    assert!(first.contains("\"command\":\"check\""), "{first}");
    assert!(first.contains("travel_request.dcds"), "{first}");
    let last = text.lines().last().unwrap();
    assert!(last.contains("\"type\":\"run_end\""), "{last}");
    // Engine progress and model-checker fixpoint iterations are on the
    // stream, with strictly increasing sequence numbers.
    assert!(text.contains("\"type\":\"progress\""), "{text}");
    assert!(text.contains("\"type\":\"fixpoint\""), "{text}");
    let mut last_seq = None;
    for line in text.lines() {
        let seq: u64 = line
            .split("\"seq\":")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '}'][..]).next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("event line without seq: {line}"));
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq went {prev} -> {seq}");
        }
        last_seq = Some(seq);
    }
    let _ = std::fs::remove_file(&events);
}

#[test]
fn progress_always_flushes_a_final_line_on_short_runs() {
    // The interval is an hour, so the rate limiter never fires mid-run —
    // but the final flush still reports the outcome, so a short run under
    // DCDS_PROGRESS is never silent.
    let (code, _stdout, stderr) = dcds_streams_env(
        &[
            "abstract",
            &spec("travel_request.dcds"),
            "--max-states",
            "200",
        ],
        &[("DCDS_PROGRESS", "3600s")],
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("[dcds +"), "{stderr}");
    assert!(stderr.contains("rcycl done:"), "{stderr}");
    assert!(stderr.contains("run finished in"), "{stderr}");
}

#[test]
fn abstract_metrics_json_dash_goes_to_stdout() {
    let (code, stdout, stderr) =
        dcds_streams(&["abstract", &spec("ping_pong.dcds"), "--metrics-json", "-"]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stdout.contains("{\"counters\":{"), "{stdout}");
    assert!(stdout.contains("\"gauges\":{"), "{stdout}");
}

#[test]
fn analyze_stats_summary_lands_on_stderr() {
    let (code, stdout, stderr) = dcds_streams(&["analyze", &spec("ping_pong.dcds"), "--stats"]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stderr.contains("analyze.relations"), "{stderr}");
    assert!(stdout.contains("weakly acyclic"), "{stdout}");
    assert!(!stdout.contains("analyze.relations"), "{stdout}");
}

#[test]
fn run_accepts_full_u64_seeds() {
    // u64::MAX used to be rejected (or truncated) by the usize round trip.
    let (ok, text) = dcds(&[
        "run",
        &spec("ping_pong.dcds"),
        "--steps",
        "2",
        "--seed",
        "18446744073709551615",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("s2:"), "{text}");
}

#[test]
fn deeply_nested_formula_is_a_parse_error_not_a_crash() {
    let bomb = format!("{}true{}", "(".repeat(50_000), ")".repeat(50_000));
    let (code, text) = dcds_code(&["check", &spec("ping_pong.dcds"), &bomb]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("nesting"), "{text}");
}

#[test]
fn abstract_and_run_and_dot_and_fmt() {
    let (ok, text) = dcds(&[
        "abstract",
        &spec("travel_request.dcds"),
        "--max-states",
        "5000",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("complete = true"));

    let (ok2, text2) = dcds(&[
        "run",
        &spec("ping_pong.dcds"),
        "--steps",
        "4",
        "--seed",
        "7",
    ]);
    assert!(ok2, "{text2}");
    assert!(text2.contains("s4:"));

    let (ok3, text3) = dcds(&["dot", &spec("ping_pong.dcds"), "--graph", "dataflow"]);
    assert!(ok3, "{text3}");
    assert!(text3.contains("digraph dataflow"));

    // fmt output re-parses (write it to a temp file and analyze it).
    let (ok4, text4) = dcds(&["fmt", &spec("travel_request.dcds")]);
    assert!(ok4, "{text4}");
    let tmp = std::env::temp_dir().join("dcds_fmt_roundtrip.dcds");
    std::fs::write(&tmp, &text4).unwrap();
    let (ok5, text5) = dcds(&["analyze", tmp.to_str().unwrap()]);
    assert!(ok5, "fmt output must reparse: {text5}\n---\n{text4}");
}

#[test]
fn symbolic_engine_exit_codes() {
    // Exit 0: AG property proved by fixpoint, no boundedness involved.
    let (code, text) = dcds_code(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (! (exists X . exists Y . R(X) & Q(Y))) & [] Z",
        "--engine",
        "symbolic",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("mode = AG"), "{text}");
    assert!(text.contains("verdict: true"), "{text}");

    // Exit 0: EF property confirmed with a concrete witness trace.
    let (code2, stdout2, stderr2) = dcds_streams(&[
        "check",
        &spec("ping_pong.dcds"),
        "mu Z . (exists X . Q(X)) | <> Z",
        "--engine",
        "symbolic",
        "--witness",
    ]);
    assert_eq!(code2, 0, "{stdout2}{stderr2}");
    assert!(stdout2.contains("verdict: true"), "{stdout2}");
    assert!(stderr2.contains("witness trace"), "{stderr2}");
    assert!(stderr2.contains("state 0 (initial)"), "{stderr2}");

    // Exit 1: AG property refuted, with a counterexample trace.
    let (code3, stdout3, stderr3) = dcds_streams(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (! (exists X . Q(X))) & [] Z",
        "--engine",
        "symbolic",
        "--witness",
    ]);
    assert_eq!(code3, 1, "{stdout3}{stderr3}");
    assert!(stdout3.contains("verdict: false"), "{stdout3}");
    assert!(stderr3.contains("counterexample trace"), "{stderr3}");

    // Exit 2: the iteration budget cuts the regression short.
    let (code4, text4) = dcds_code(&[
        "check",
        &spec("accumulator.dcds"),
        "mu Z . (exists X . exists Y . Q(X) & Q(Y) & ! X = Y) | <> Z",
        "--engine",
        "symbolic",
        "--max-iters",
        "1",
    ]);
    assert_eq!(code4, 2, "{text4}");
    assert!(text4.contains("inconclusive"), "{text4}");
}

#[test]
fn symbolic_format_json_is_one_object_on_stdout() {
    let (code, stdout, stderr) = dcds_streams(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (! (exists X . exists Y . R(X) & Q(Y))) & [] Z",
        "--engine",
        "symbolic",
        "--format",
        "json",
    ]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    let line = stdout.trim();
    assert_eq!(line.lines().count(), 1, "one JSON object: {stdout}");
    assert!(line.starts_with("{\"fragment\":"), "{line}");
    assert!(line.ends_with('}'), "{line}");
    assert!(line.contains("\"engine\":\"symbolic\""), "{line}");
    assert!(line.contains("\"mode\":\"AG\""), "{line}");
    assert!(line.contains("\"sym_counters\":{\"iterations\":"), "{line}");
    assert!(line.contains("\"verdict\":true"), "{line}");
    // Counters commentary stays off the machine stream.
    assert!(!stdout.contains("symbolic engine:"), "{stdout}");
    assert!(stderr.contains("symbolic engine:"), "{stderr}");

    // Inconclusive verdicts surface as null with a reason.
    let (code2, stdout2, _) = dcds_streams(&[
        "check",
        &spec("accumulator.dcds"),
        "mu Z . (exists X . exists Y . Q(X) & Q(Y) & ! X = Y) | <> Z",
        "--engine",
        "symbolic",
        "--max-iters",
        "1",
        "--format",
        "json",
    ]);
    assert_eq!(code2, 2, "{stdout2}");
    let line2 = stdout2.trim();
    assert!(line2.contains("\"verdict\":null"), "{line2}");
    assert!(line2.contains("\"reason\":"), "{line2}");
}

#[test]
fn symbolic_engine_decides_what_the_explicit_engines_cannot() {
    // `unbounded_safe.dcds` chases a deterministic service forever: the
    // static analysis refuses the run-boundedness certificate and the
    // explicit abstraction hits any budget (exit 2) — but the symbolic
    // engine proves the AG property outright (exit 0).
    let (ok, text) = dcds(&["analyze", &spec("unbounded_safe.dcds")]);
    assert!(ok, "{text}");
    assert!(text.contains("weakly acyclic: false"), "{text}");

    let phi = "nu Z . (forall Y . Flag(Y) -> Y = 'ok') & [] Z";
    let (explicit, etext) = dcds_code(&[
        "check",
        &spec("unbounded_safe.dcds"),
        phi,
        "--max-states",
        "50",
    ]);
    assert_eq!(explicit, 2, "{etext}");
    assert!(etext.contains("truncated"), "{etext}");

    let (symbolic, stext) = dcds_code(&[
        "check",
        &spec("unbounded_safe.dcds"),
        phi,
        "--engine",
        "symbolic",
    ]);
    assert_eq!(symbolic, 0, "{stext}");
    assert!(stext.contains("verdict: true"), "{stext}");
}

#[test]
fn symbolic_engine_rejects_non_safety_formulas() {
    // Outside the AG/EF fragment: ordinary error path, not a verdict.
    let (code, text) = dcds_code(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
        "--engine",
        "symbolic",
    ]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error:"), "{text}");

    let (code2, text2) = dcds_code(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . true & [] Z",
        "--engine",
        "bogus",
    ]);
    assert_eq!(code2, 1, "{text2}");
    assert!(text2.contains("unknown engine"), "{text2}");
}

#[test]
fn errors_are_reported() {
    let (ok, text) = dcds(&["analyze", "/nonexistent.dcds"]);
    assert!(!ok);
    assert!(text.contains("cannot read"));
    let (ok2, text2) = dcds(&["frobnicate"]);
    assert!(!ok2);
    assert!(text2.contains("unknown command"));
    let (ok3, text3) = dcds(&["check", &spec("ping_pong.dcds"), "nu Z . Nope(X) & [] Z"]);
    assert!(!ok3);
    assert!(text3.contains("unknown relation"), "{text3}");
}
