//! Smoke tests for the `dcds` command-line interface, driving the real
//! binary over the spec files in `specs/`.

use std::process::Command;

fn dcds(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dcds"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn spec(name: &str) -> String {
    format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn analyze_ping_pong() {
    let (ok, text) = dcds(&["analyze", &spec("ping_pong.dcds")]);
    assert!(ok, "{text}");
    assert!(text.contains("weakly acyclic: false"));
    assert!(text.contains("GR-acyclic: true"));
    assert!(text.contains("state-bounded"));
}

#[test]
fn analyze_accumulator_renders_witness() {
    let (ok, text) = dcds(&["analyze", &spec("accumulator.dcds")]);
    assert!(ok, "{text}");
    assert!(text.contains("GR+-acyclic: false"));
    assert!(text.contains("recall cycle pi3"));
}

#[test]
fn analyze_travel_request() {
    let (ok, text) = dcds(&["analyze", &spec("travel_request.dcds")]);
    assert!(ok, "{text}");
    assert!(text.contains("GR-acyclic: false"));
    assert!(text.contains("GR+-acyclic: true"));
}

#[test]
fn check_verdicts_and_traces() {
    let (ok, text) = dcds(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
        "--trace",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("fragment: MuLP"));
    assert!(text.contains("verdict: true"));
    // A failing property gets a counterexample path.
    let (ok2, text2) = dcds(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . (exists X . live(X) & R(X)) & [] Z",
        "--trace",
    ]);
    assert!(ok2, "{text2}");
    assert!(text2.contains("verdict: false"));
    assert!(text2.contains("violating state"));
}

#[test]
fn abstract_and_run_and_dot_and_fmt() {
    let (ok, text) = dcds(&["abstract", &spec("travel_request.dcds"), "--max-states", "5000"]);
    assert!(ok, "{text}");
    assert!(text.contains("complete = true"));

    let (ok2, text2) = dcds(&["run", &spec("ping_pong.dcds"), "--steps", "4", "--seed", "7"]);
    assert!(ok2, "{text2}");
    assert!(text2.contains("s4:"));

    let (ok3, text3) = dcds(&["dot", &spec("ping_pong.dcds"), "--graph", "dataflow"]);
    assert!(ok3, "{text3}");
    assert!(text3.contains("digraph dataflow"));

    // fmt output re-parses (write it to a temp file and analyze it).
    let (ok4, text4) = dcds(&["fmt", &spec("travel_request.dcds")]);
    assert!(ok4, "{text4}");
    let tmp = std::env::temp_dir().join("dcds_fmt_roundtrip.dcds");
    std::fs::write(&tmp, &text4).unwrap();
    let (ok5, text5) = dcds(&["analyze", tmp.to_str().unwrap()]);
    assert!(ok5, "fmt output must reparse: {text5}\n---\n{text4}");
}

#[test]
fn errors_are_reported() {
    let (ok, text) = dcds(&["analyze", "/nonexistent.dcds"]);
    assert!(!ok);
    assert!(text.contains("cannot read"));
    let (ok2, text2) = dcds(&["frobnicate"]);
    assert!(!ok2);
    assert!(text2.contains("unknown command"));
    let (ok3, text3) = dcds(&[
        "check",
        &spec("ping_pong.dcds"),
        "nu Z . Nope(X) & [] Z",
    ]);
    assert!(!ok3);
    assert!(text3.contains("unknown relation"), "{text3}");
}
