//! Integration tests for the boundedness machinery and the Section 6
//! reductions, exercised across crates:
//!
//! * Lemma 4.1: the positive approximate over-approximates run growth;
//! * Theorem 4.7: weakly acyclic ⇒ run-bounded (empirically: abstraction
//!   saturation across a family of systems);
//! * Theorem 5.6: GR-acyclic ⇒ state-bounded (empirically: RCYCL
//!   saturation), and the converse failure modes;
//! * Theorems 6.1/6.2 round trip: det → nondet → det preserves the
//!   original-schema behaviours.

use dcds_verify::abstraction::{observe_run_bound, observe_state_bound};
use dcds_verify::analysis::positive_approximate;
use dcds_verify::bench::{examples, synthetic};
use dcds_verify::prelude::*;
use dcds_verify::reductions::{det_to_nondet, nondet_to_det};

#[test]
fn lemma_4_1_positive_approximate_dominates() {
    // For every depth, the approximate's witnessed run bound dominates the
    // original's (it has strictly more behaviours).
    for dcds in [examples::example_4_1(), examples::example_4_2()] {
        let plus = positive_approximate(&dcds);
        for depth in 1..=3 {
            let orig = observe_run_bound(&dcds, depth, 3_000);
            let approx = observe_run_bound(&plus, depth, 3_000);
            assert!(
                approx.max_observed >= orig.max_observed,
                "S+ must dominate S at depth {depth}"
            );
        }
    }
}

#[test]
fn theorem_4_7_weak_acyclicity_implies_saturation() {
    // Weakly acyclic systems: deterministic abstraction saturates.
    for (name, dcds) in [
        ("example_4_1", examples::example_4_1()),
        ("example_4_2", examples::example_4_2()),
        ("copy_chain_4", synthetic::copy_chain(4)),
        ("service_chain_2", synthetic::service_chain(2)),
    ] {
        let dg = dependency_graph(&dcds);
        assert!(is_weakly_acyclic(&dg), "{name}");
        let abs = det_abstraction(&dcds, 4_000);
        assert_eq!(abs.outcome, AbsOutcome::Complete, "{name}");
        // And the theoretical bound of the Theorem 4.7 proof is finite.
        let bound = dcds_verify::analysis::run_bound_estimate(&dcds, &dg).unwrap();
        assert!(bound.is_finite(), "{name}");
    }
    // Contrast: the non-weakly-acyclic Example 4.3 does not saturate.
    let e43 = examples::example_4_3(ServiceKind::Deterministic);
    assert!(!is_weakly_acyclic(&dependency_graph(&e43)));
    assert_eq!(det_abstraction(&e43, 60).outcome, AbsOutcome::Truncated);
}

#[test]
fn theorem_5_6_gr_acyclicity_implies_rcycl_saturation() {
    for (name, dcds) in [
        ("example_5_1", examples::example_5_1()),
        ("flush_ladder", synthetic::flush_ladder()),
    ] {
        let df = dataflow_graph(&dcds);
        assert!(is_gr_plus_acyclic(&df), "{name} should be GR(+)-acyclic");
        let res = rcycl(&dcds, 4_000);
        assert!(res.complete, "{name} should saturate");
    }
    for (name, dcds) in [
        ("example_5_2", examples::example_5_2()),
        ("example_5_3", examples::example_5_3()),
        ("accumulator_2", synthetic::accumulator(2)),
    ] {
        let df = dataflow_graph(&dcds);
        assert!(!is_gr_plus_acyclic(&df), "{name}");
        let res = rcycl(&dcds, 100);
        assert!(!res.complete, "{name} should truncate");
    }
}

#[test]
fn state_bounds_track_gr_verdicts() {
    // Example 5.3 is special: NOT GR-acyclic yet its states grow without
    // accumulating per-value (the count of tuples doubles — and with it the
    // number of calls per step, so observation depth must stay shallow:
    // commitment enumeration is exponential in the per-step call count).
    let e53 = examples::example_5_3();
    let shallow = observe_state_bound(&e53, 1, 500);
    let deep = observe_state_bound(&e53, 2, 500);
    assert!(deep.max_observed > shallow.max_observed);
    // Example 5.1 stays flat.
    let e51 = examples::example_5_1();
    assert_eq!(observe_state_bound(&e51, 4, 5_000).max_observed, 1);
}

#[test]
fn theorems_6_1_6_2_round_trip() {
    // det → nondet → det: the double rewrite preserves the original-schema
    // reachable isomorphism types on a bounded horizon.
    use dcds_verify::core::explore::{explore_det, CommitmentOracle, Limits};
    use dcds_verify::reldata::Facts;
    use std::collections::BTreeSet;

    let d0 = examples::example_4_3(ServiceKind::Deterministic);
    let n1 = det_to_nondet(&d0).unwrap();
    let d2 = nondet_to_det(&n1).unwrap();

    let limits = Limits {
        max_states: 500,
        max_depth: 2,
    };
    let mut o1 = CommitmentOracle;
    let e0 = explore_det(&d0, limits, &mut o1);
    let mut o2 = CommitmentOracle;
    let e2 = explore_det(&d2, limits, &mut o2);

    let orig: BTreeSet<_> = d0.data.schema.rel_ids().collect();
    let rigid = d0.rigid_constants();
    let keys = |ts: &Ts| -> BTreeSet<dcds_verify::reldata::CanonKey> {
        ts.state_ids()
            .map(|s| Facts::from_instance(&ts.db(s).project(&orig)).canonical_key(&rigid))
            .collect()
    };
    // The doubly-rewritten system shows every original isomorphism type.
    let k0 = keys(&e0.ts);
    let k2 = keys(&e2.ts);
    assert!(
        k0.is_subset(&k2),
        "double rewrite must preserve original behaviours"
    );
}

#[test]
fn run_bounded_but_not_weakly_acyclic_exists() {
    // Weak acyclicity is sufficient, not necessary: a system whose cycle
    // through a special edge is semantically dead (guarded by an
    // always-false filter) is run-bounded yet rejected by the syntactic
    // check — exactly the precision/decidability trade the paper makes.
    let dcds = DcdsBuilder::new()
        .relation("R", 1)
        .relation("Q", 1)
        .service("f", 1, ServiceKind::Deterministic)
        .init_fact("R", &["a"])
        .action("alpha", &[], |a| {
            // The generating effect can never fire (filter is false).
            a.effect("R(X) & X != X", "Q(f(X))");
            a.effect("Q(X)", "R(X)");
            a.effect("R(X)", "R(X)");
        })
        .rule("true", "alpha")
        .build()
        .unwrap();
    let dg = dependency_graph(&dcds);
    assert!(!is_weakly_acyclic(&dg), "syntactically rejected");
    let abs = det_abstraction(&dcds, 100);
    assert_eq!(abs.outcome, AbsOutcome::Complete, "semantically bounded");
}
