//! Parallel engines are bit-identical to the serial ones.
//!
//! The abstraction engines and the bounded explorers are level-synchronised
//! and phase-split: query evaluation fans out over worker threads, while
//! every order-sensitive effect (constant minting, oracle calls, dedup and
//! state-id allocation) replays the serial order. The contract is not
//! "isomorphic output" but **structural equality**: same states in the same
//! order, same edges, same outcome, same pool, same counters — at every
//! thread count.
//!
//! This suite checks that contract on the paper's running examples
//! (4.1, 4.2, 4.3, 5.1, 5.2) and the Appendix E travel-reimbursement
//! systems, for 1, 2, and 8 worker threads.

use dcds_verify::abstraction::{
    det_abstraction_opts, rcycl_opts, AbsOptions, DedupStrategy, DetAbstraction, RcyclResult,
};
use dcds_verify::bench::{examples, travel};
use dcds_verify::core::explore::{explore_det_opts, CommitmentOracle, Limits};
use dcds_verify::core::{Dcds, ServiceKind};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn det_runs(dcds: &Dcds, max_states: usize, strategy: DedupStrategy) -> Vec<DetAbstraction> {
    THREAD_COUNTS
        .into_iter()
        .map(|threads| {
            det_abstraction_opts(
                dcds,
                max_states,
                AbsOptions {
                    strategy,
                    threads,
                    ..AbsOptions::default()
                },
            )
        })
        .collect()
}

fn assert_det_runs_identical(name: &str, runs: &[DetAbstraction]) {
    let base = &runs[0];
    for (other, threads) in runs[1..].iter().zip(&THREAD_COUNTS[1..]) {
        assert_eq!(base.ts, other.ts, "{name}: Ts differs at {threads} threads");
        assert_eq!(
            base.states, other.states,
            "{name}: ⟨I, M⟩ states differ at {threads} threads"
        );
        assert_eq!(
            base.outcome, other.outcome,
            "{name}: outcome differs at {threads} threads"
        );
        assert_eq!(
            base.pool.len(),
            other.pool.len(),
            "{name}: pool differs at {threads} threads"
        );
        assert_eq!(
            base.counters, other.counters,
            "{name}: counters differ at {threads} threads"
        );
    }
}

fn rcycl_runs(dcds: &Dcds, max_states: usize) -> Vec<RcyclResult> {
    THREAD_COUNTS
        .into_iter()
        .map(|threads| rcycl_opts(dcds, max_states, threads))
        .collect()
}

fn assert_rcycl_runs_identical(name: &str, runs: &[RcyclResult]) {
    let base = &runs[0];
    for (other, threads) in runs[1..].iter().zip(&THREAD_COUNTS[1..]) {
        assert_eq!(base.ts, other.ts, "{name}: Ts differs at {threads} threads");
        assert_eq!(
            base.complete, other.complete,
            "{name}: completeness differs at {threads} threads"
        );
        assert_eq!(
            base.used_values, other.used_values,
            "{name}: UsedValues differs at {threads} threads"
        );
        assert_eq!(
            base.triples_processed, other.triples_processed,
            "{name}: triple count differs at {threads} threads"
        );
        assert_eq!(
            base.pool.len(),
            other.pool.len(),
            "{name}: pool differs at {threads} threads"
        );
        assert_eq!(
            base.counters, other.counters,
            "{name}: counters differ at {threads} threads"
        );
    }
}

#[test]
fn det_abstraction_examples_are_thread_count_invariant() {
    for (name, dcds, budget) in [
        ("Example 4.1", examples::example_4_1(), 200),
        ("Example 4.2", examples::example_4_2(), 200),
        (
            "Example 4.3 (det)",
            examples::example_4_3(ServiceKind::Deterministic),
            60,
        ),
    ] {
        for strategy in [DedupStrategy::CanonicalKey, DedupStrategy::PairwiseIso] {
            let runs = det_runs(&dcds, budget, strategy);
            assert_det_runs_identical(name, &runs);
        }
    }
}

#[test]
fn det_abstraction_travel_audit_is_thread_count_invariant() {
    let dcds = travel::audit_system_small();
    let runs = det_runs(&dcds, 80, DedupStrategy::CanonicalKey);
    assert_det_runs_identical("travel audit (small)", &runs);
    // The workload is non-trivial: every run expanded real frontiers.
    assert!(runs[0].counters.states_expanded > 1);
    assert!(runs[0].counters.successors_generated > runs[0].counters.states_expanded);
}

#[test]
fn rcycl_examples_are_thread_count_invariant() {
    for (name, dcds, budget) in [
        ("Example 5.1", examples::example_5_1(), 100),
        ("Example 5.2", examples::example_5_2(), 80),
    ] {
        let runs = rcycl_runs(&dcds, budget);
        assert_rcycl_runs_identical(name, &runs);
    }
}

#[test]
fn rcycl_travel_request_is_thread_count_invariant() {
    let dcds = travel::request_system_small();
    let runs = rcycl_runs(&dcds, 150);
    assert_rcycl_runs_identical("travel request (small)", &runs);
    // The travel pruning has a real θ fan-out per triple.
    assert!(runs[0].counters.successors_generated > 100);
}

#[test]
fn bounded_explorer_is_thread_count_invariant() {
    let dcds = examples::example_4_3(ServiceKind::Deterministic);
    let limits = Limits {
        max_states: 150,
        max_depth: 4,
    };
    let runs: Vec<_> = THREAD_COUNTS
        .into_iter()
        .map(|threads| {
            let mut oracle = CommitmentOracle;
            explore_det_opts(&dcds, limits, &mut oracle, threads)
        })
        .collect();
    for (other, threads) in runs[1..].iter().zip(&THREAD_COUNTS[1..]) {
        assert_eq!(runs[0].ts, other.ts, "Ts differs at {threads} threads");
        assert_eq!(runs[0].call_maps, other.call_maps);
        assert_eq!(runs[0].outcome, other.outcome);
        assert_eq!(runs[0].pool.len(), other.pool.len());
    }
}

#[test]
fn dedup_strategies_agree_on_travel_audit() {
    // The signature-bucketed lazy canonical-key index and the
    // signature-bucketed pairwise matcher define the same quotient.
    let dcds = travel::audit_system_small();
    let a = det_abstraction_opts(
        &dcds,
        80,
        AbsOptions {
            strategy: DedupStrategy::CanonicalKey,
            threads: 4,
            ..AbsOptions::default()
        },
    );
    let b = det_abstraction_opts(
        &dcds,
        80,
        AbsOptions {
            strategy: DedupStrategy::PairwiseIso,
            threads: 4,
            ..AbsOptions::default()
        },
    );
    assert_eq!(a.ts.num_states(), b.ts.num_states());
    assert_eq!(a.ts.num_edges(), b.ts.num_edges());
    assert_eq!(a.outcome, b.outcome);
}
