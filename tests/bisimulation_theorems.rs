//! Machine-checked instances of the paper's bisimulation theorems.
//!
//! * Theorem 4.3: the deterministic abstraction of a run-bounded DCDS is
//!   history-preserving bisimilar to the concrete transition system. We
//!   check the consequence that any two correct finite abstractions are
//!   history-bisimilar *to each other*, by hand-building the paper's
//!   Figure 2(b) with different fresh-value names.
//! * Theorem 5.4: any two eventually-recycling prunings are
//!   persistence-preserving bisimilar to each other; we hand-build an
//!   α-renamed copy of the RCYCL output and check ∼, plus a negative case
//!   showing a *wrong* pruning is rejected.
//! * Theorems 3.1/3.2: bisimilar systems satisfy the same µLA (resp. µLP)
//!   formulas — checked over a battery of formulas.

use dcds_verify::bench::examples;
use dcds_verify::bisim::{history_bisimilar, persistence_bisimilar};
use dcds_verify::mucalc::{check, sugar, Mu};
use dcds_verify::prelude::*;
use dcds_verify::reldata::Value;
use std::collections::BTreeSet;

/// Hand-build Figure 2(b): the 4-state abstraction of Example 4.2, with a
/// caller-chosen name for the fresh value returned by g(a).
fn figure_2b(fresh_name: &str) -> (Ts, Value) {
    let dcds = examples::example_4_2();
    let mut pool = dcds.data.pool.clone();
    let schema = &dcds.data.schema;
    let a = pool.get("a").unwrap();
    let b = pool.intern(fresh_name);
    let q = schema.rel_id("Q").unwrap();
    let p = schema.rel_id("P").unwrap();
    let r = schema.rel_id("R").unwrap();
    let mk = |facts: Vec<(dcds_verify::reldata::RelId, Vec<Value>)>| {
        Instance::from_facts(facts.into_iter().map(|(rel, vs)| (rel, Tuple::from(vs))))
    };
    // s0 = {P(a), Q(a,a)}; s1 = s0 + R(a) (g(a) ↦ a);
    // s2 = {P(a), R(a), Q(a,b)} (g(a) fresh); s3 = {P(a), Q(a,b)}.
    let s0 = mk(vec![(p, vec![a]), (q, vec![a, a])]);
    let s1 = mk(vec![(p, vec![a]), (q, vec![a, a]), (r, vec![a])]);
    let s2 = mk(vec![(p, vec![a]), (q, vec![a, b]), (r, vec![a])]);
    let s3 = mk(vec![(p, vec![a]), (q, vec![a, b])]);
    let mut ts = Ts::new(s0);
    let i1 = ts.add_state(s1);
    let i2 = ts.add_state(s2);
    let i3 = ts.add_state(s3);
    ts.add_edge(ts.initial(), i1);
    ts.add_edge(ts.initial(), i2);
    ts.add_edge(i1, i1);
    ts.add_edge(i2, i3);
    ts.add_edge(i3, i3);
    (ts, a)
}

#[test]
fn theorem_4_3_abstractions_are_history_bisimilar() {
    let dcds = examples::example_4_2();
    let abs = det_abstraction(&dcds, 100);
    assert_eq!(abs.outcome, AbsOutcome::Complete);
    let rigid: BTreeSet<Value> = dcds.rigid_constants();
    // Our computed abstraction vs the paper's hand-drawn Figure 2(b), with
    // an unrelated fresh-value name: history-preserving bisimilar.
    let (fig, _) = figure_2b("zz_other_fresh");
    assert!(history_bisimilar(&abs.ts, &fig, &rigid));
    // Reflexivity sanity.
    assert!(history_bisimilar(&abs.ts, &abs.ts, &rigid));
}

#[test]
fn theorem_3_1_mu_la_invariance_across_bisimilar_systems() {
    let dcds = examples::example_4_2();
    let abs = det_abstraction(&dcds, 100);
    let (fig, _) = figure_2b("another_name");
    let rigid = dcds.rigid_constants();
    assert!(history_bisimilar(&abs.ts, &fig, &rigid));
    let schema = &dcds.data.schema;
    let p = schema.rel_id("P").unwrap();
    let q = schema.rel_id("Q").unwrap();
    let r = schema.rel_id("R").unwrap();
    let var = dcds_verify::folang::QTerm::var;
    let formulas = [
        // AG ∃x.live(x) ∧ P(x).
        sugar::ag(Mu::exists(
            "X",
            Mu::live("X").and(Mu::Query(Formula::Atom(p, vec![var("X")]))),
        )),
        // EF ∃x,y. live ∧ Q(x,y) ∧ x ≠ y.
        sugar::ef(Mu::exists(
            "X",
            Mu::live("X").and(Mu::exists(
                "Y",
                Mu::live("Y").and(
                    Mu::Query(Formula::Atom(q, vec![var("X"), var("Y")]))
                        .and(Mu::Query(Formula::neq(var("X"), var("Y")))),
                ),
            )),
        )),
        // EF R nonempty, then AG from there (nested fixpoints).
        sugar::ef(
            Mu::exists(
                "X",
                Mu::live("X").and(Mu::Query(Formula::Atom(r, vec![var("X")]))),
            )
            .and(sugar::ag(Mu::exists(
                "Y",
                Mu::live("Y").and(Mu::Query(Formula::Atom(p, vec![var("Y")]))),
            ))),
        ),
        // A history-preserving cross-state reference: some live value is
        // eventually in R — µLA because the quantifier is guarded NOW.
        Mu::exists(
            "X",
            Mu::live("X").and(sugar::ef(Mu::Query(Formula::Atom(r, vec![var("X")])))),
        ),
    ];
    for (ix, phi) in formulas.iter().enumerate() {
        assert_eq!(
            check(phi, &abs.ts).unwrap(),
            check(phi, &fig).unwrap(),
            "formula #{ix} distinguishes bisimilar systems"
        );
    }
}

#[test]
fn theorem_5_4_prunings_are_persistence_bisimilar() {
    let dcds = examples::example_5_1();
    let res = rcycl(&dcds, 100);
    assert!(res.complete);
    let rigid = dcds.rigid_constants();

    // An α-renamed pruning: same shape, different non-rigid value names.
    let mut pool = res.pool.clone();
    let schema = &dcds.data.schema;
    let r = schema.rel_id("R").unwrap();
    let q = schema.rel_id("Q").unwrap();
    let a = pool.get("a").unwrap();
    let c1 = pool.intern("zz_c1");
    let c2 = pool.intern("zz_c2");
    let one = |rel, v: Value| Instance::from_facts([(rel, Tuple::from([v]))]);
    // Mirror of the RCYCL output shape: R(a) -> {Q(a), Q(c1)};
    // Q(a) -> R(a); Q(c1) -> R(c1); R(c1) -> {Q(a), Q(c1), Q(c2)};
    // Q(c2) -> R(c2); R(c2) -> {Q(a), Q(c1), Q(c2)}.
    let mut ts = Ts::new(one(r, a));
    let qa = ts.add_state(one(q, a));
    let qc1 = ts.add_state(one(q, c1));
    let rc1 = ts.add_state(one(r, c1));
    let qc2 = ts.add_state(one(q, c2));
    let rc2 = ts.add_state(one(r, c2));
    ts.add_edge(ts.initial(), qa);
    ts.add_edge(ts.initial(), qc1);
    ts.add_edge(qa, ts.initial());
    ts.add_edge(qc1, rc1);
    ts.add_edge(rc1, qa);
    ts.add_edge(rc1, qc1);
    ts.add_edge(rc1, qc2);
    ts.add_edge(qc2, rc2);
    ts.add_edge(rc2, qa);
    ts.add_edge(rc2, qc1);
    ts.add_edge(rc2, qc2);
    assert!(persistence_bisimilar(&res.ts, &ts, &rigid));

    // Negative: a "pruning" that forgot the fresh branch from the initial
    // state is NOT persistence-bisimilar.
    let mut broken = Ts::new(one(r, a));
    let bqa = broken.add_state(one(q, a));
    broken.add_edge(broken.initial(), bqa);
    broken.add_edge(bqa, broken.initial());
    assert!(!persistence_bisimilar(&res.ts, &broken, &rigid));
}

#[test]
fn theorem_3_2_mu_lp_invariance() {
    // Persistence-bisimilar systems (the RCYCL pruning and its mirror from
    // the previous test) agree on µLP formulas.
    let dcds = examples::example_5_1();
    let res = rcycl(&dcds, 100);
    let mut schema = dcds.data.schema.clone();
    let mut pool = res.pool.clone();
    let sources = [
        "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
        "nu Z . !(exists X . live(X) & R(X) & Q(X)) & [] Z",
        "mu Y . (exists X . live(X) & Q(X)) | <> Y",
        // A persistence-guarded modality: some R value is live and stays
        // live into some successor where Q holds of it (false here: the
        // whole state is replaced each step).
        "exists X . live(X) & R(X) & <> (live(X) & Q(X))",
    ];
    // The mirror built exactly as in the previous test.
    let r = schema.rel_id("R").unwrap();
    let q = schema.rel_id("Q").unwrap();
    let a = pool.get("a").unwrap();
    let c1 = pool.intern("zz_c1");
    let one = |rel, v: Value| Instance::from_facts([(rel, Tuple::from([v]))]);
    let mut mirror = Ts::new(one(r, a));
    let qa = mirror.add_state(one(q, a));
    let qc1 = mirror.add_state(one(q, c1));
    let rc1 = mirror.add_state(one(r, c1));
    let qc2 = mirror.add_state(one(q, pool.intern("zz_c2")));
    let rc2 = mirror.add_state(one(r, pool.get("zz_c2").unwrap()));
    mirror.add_edge(mirror.initial(), qa);
    mirror.add_edge(mirror.initial(), qc1);
    mirror.add_edge(qa, mirror.initial());
    mirror.add_edge(qc1, rc1);
    mirror.add_edge(rc1, qa);
    mirror.add_edge(rc1, qc1);
    mirror.add_edge(rc1, qc2);
    mirror.add_edge(qc2, rc2);
    mirror.add_edge(rc2, qa);
    mirror.add_edge(rc2, qc1);
    mirror.add_edge(rc2, qc2);
    let rigid = dcds.rigid_constants();
    assert!(persistence_bisimilar(&res.ts, &mirror, &rigid));
    for src in sources {
        let phi = parse_mu(src, &mut schema, &mut pool).unwrap();
        assert!(
            classify(&phi).unwrap() <= Fragment::MuLA,
            "test formulas should be in a decidable fragment: {src}"
        );
        assert_eq!(
            check(&phi, &res.ts).unwrap(),
            check(&phi, &mirror).unwrap(),
            "µLP formula distinguishes persistence-bisimilar systems: {src}"
        );
    }
}
