//! End-to-end pipeline over the textual surface syntax: parse a DCDS spec,
//! statically analyse it, build its abstraction, and verify parsed
//! µ-calculus properties — everything a downstream user does, in one test.

use dcds_verify::prelude::*;

const SPEC: &str = r"
    % A tiny ticketing flow: tickets are opened with external payloads,
    % triaged, then closed; closing forgets the ticket.
    schema {
        Tru 0;
        Open 1;
        Triaged 1;
        Phase 1;
    }
    services { payload 0 nondet; }
    init { Tru(); Phase('open'); }

    action OpenTicket() {
        Tru() ~> Tru(), Phase('triage'), Open(payload());
    }
    action Triage() {
        Tru() ~> Tru(), Phase('close');
        Open(X) ~> Triaged(X);
    }
    action Close() {
        Tru() ~> Tru(), Phase('open');
    }
    rule Phase('open')   => OpenTicket;
    rule Phase('triage') => Triage;
    rule Phase('close')  => Close;
";

#[test]
fn parse_analyse_abstract_verify() {
    let dcds = parse_dcds(SPEC).expect("spec parses");
    assert_eq!(dcds.process.actions.len(), 3);
    assert!(dcds.is_nondeterministic());

    // Static verdicts: values never accumulate (each phase forgets the
    // previous payload): GR-acyclic.
    let df = dataflow_graph(&dcds);
    assert!(is_gr_acyclic(&df));

    // RCYCL terminates.
    let pruning = rcycl(&dcds, 2_000);
    assert!(pruning.complete);
    assert!(pruning.ts.max_state_adom() <= 2); // phase + one payload

    // Parsed µLP properties.
    let mut schema = dcds.data.schema.clone();
    let mut pool = pruning.pool.clone();
    let cases = [
        // Every triaged payload came from somewhere: in triage phase an
        // Open ticket exists.
        (
            "nu Z . (Phase('triage') -> exists X . live(X) & Open(X)) & [] Z",
            true,
        ),
        // The phase cycle always returns to 'open'.
        ("nu Z . (mu Y . Phase('open') | <> Y) & [] Z", true),
        // Tickets do not survive closing: AG (Phase('open') -> no Triaged).
        (
            "nu Z . (Phase('open') -> !(exists X . live(X) & Triaged(X))) & [] Z",
            true,
        ),
        // A ticket payload persists from open into triage on some path —
        // true: Triage copies Open into Triaged.
        (
            "nu Z . (forall X . live(X) -> (Open(X) -> <> (live(X) & Triaged(X)))) & [] Z",
            true,
        ),
        // Sanity negative: AG Open nonempty is false (close phases drop it).
        ("nu Z . (exists X . live(X) & Open(X)) & [] Z", false),
    ];
    for (src, expected) in cases {
        let phi = parse_mu(src, &mut schema, &mut pool).expect("property parses");
        assert!(
            classify(&phi).is_ok(),
            "monotonicity check must pass for {src}"
        );
        assert_eq!(check(&phi, &pruning.ts).unwrap(), expected, "{src}");
    }
}

#[test]
fn spec_errors_are_reported_with_positions() {
    // Unknown relation in an effect head.
    let bad = r"
        schema { P 1; }
        init { P(a); }
        action a1() { P(X) ~> Nope(X); }
        rule true => a1;
    ";
    let err = parse_dcds(bad).unwrap_err();
    assert!(
        err.contains("Nope"),
        "error should name the relation: {err}"
    );

    // Rule whose guard variables mismatch the action parameters.
    let bad2 = r"
        schema { P 1; }
        init { P(a); }
        action a1(X, Y) { true ~> P(X), P(Y); }
        rule P(X) => a1;
    ";
    let err2 = parse_dcds(bad2).unwrap_err();
    assert!(err2.contains("parameters"), "got: {err2}");

    // Constraint violated by the initial instance.
    let bad3 = r"
        schema { P 1; Q 1; }
        init { P(a); Q(b); }
        constraint P(X) & Q(Y) -> X = Y;
        action a1() { P(X) ~> P(X); }
        rule true => a1;
    ";
    let err3 = parse_dcds(bad3).unwrap_err();
    assert!(err3.contains("initial instance"), "got: {err3}");
}

#[test]
fn round_trip_between_builder_and_spec() {
    // The same system expressed both ways yields the same analyses and
    // the same abstraction size.
    let via_spec = parse_dcds(
        r"
        schema { R 1; Q 1; }
        services { f 1 nondet; }
        init { R(a); }
        action alpha() { R(X) ~> Q(f(X)); Q(X) ~> R(X); }
        rule true => alpha;
        ",
    )
    .unwrap();
    let via_builder = DcdsBuilder::new()
        .relation("R", 1)
        .relation("Q", 1)
        .service("f", 1, ServiceKind::Nondeterministic)
        .init_fact("R", &["a"])
        .action("alpha", &[], |a| {
            a.effect("R(X)", "Q(f(X))");
            a.effect("Q(X)", "R(X)");
        })
        .rule("true", "alpha")
        .build()
        .unwrap();
    let p1 = rcycl(&via_spec, 100);
    let p2 = rcycl(&via_builder, 100);
    assert_eq!(p1.ts.num_states(), p2.ts.num_states());
    assert_eq!(p1.ts.num_edges(), p2.ts.num_edges());
    let rigid = via_spec.rigid_constants();
    assert!(dcds_verify::bisim::persistence_bisimilar(
        &p1.ts, &p2.ts, &rigid
    ));
}
