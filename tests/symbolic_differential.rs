//! Differential testing of the symbolic backward-reachability engine.
//!
//! On every *bounded* system — the shipped bounded specs plus seeded-random
//! weakly acyclic deterministic systems — a definitive symbolic verdict
//! must agree with two independent oracles computed on the complete
//! explicit abstraction: the naive Kleene evaluator ([`mucalc::check`])
//! and the staged engine ([`mucalc::check_with_opts`]). The symbolic
//! engine works on the *infinite-state* system directly, so agreement
//! here exercises the regression, subsumption, normalisation, and
//! trace-confirmation layers end to end.
//!
//! Inconclusive symbolic verdicts are permitted (the clause set
//! over-approximates), but the suite asserts they stay rare.

use dcds_verify::abstraction::{det_abstraction, rcycl, AbsOutcome};
use dcds_verify::bench::rng::SplitMix64;
use dcds_verify::core::{parse_dcds, Dcds, DcdsBuilder, ServiceKind, Ts};
use dcds_verify::mucalc::{check, check_with_opts, parse_mu, McOptions};
use dcds_verify::symbolic::{check_safety, SymOptions, SymVerdict};

/// Build the complete explicit abstraction; panics if the budget is hit
/// (differential systems must be bounded for the oracle to be exact).
fn explicit_ts(dcds: &Dcds) -> Ts {
    if dcds.is_deterministic() {
        let abs = det_abstraction(dcds, 50_000);
        assert_eq!(abs.outcome, AbsOutcome::Complete, "abstraction truncated");
        abs.ts
    } else {
        let p = rcycl(dcds, 50_000);
        assert!(p.complete, "rcycl truncated");
        p.ts
    }
}

/// Check one property three ways. Returns `Some(verdict)` when the
/// symbolic engine was definitive (after asserting three-way agreement),
/// `None` when it was inconclusive.
fn differential(dcds: &Dcds, ts: &Ts, formula: &str, label: &str) -> Option<bool> {
    let mut schema = dcds.data.schema.clone();
    let mut pool = dcds.data.pool.clone();
    let phi = parse_mu(formula, &mut schema, &mut pool)
        .unwrap_or_else(|e| panic!("{label}: {formula}: {e}"));

    let naive = check(&phi, ts).unwrap_or_else(|e| panic!("{label}: naive: {e}"));
    let staged = check_with_opts(&phi, ts, McOptions::default())
        .unwrap_or_else(|e| panic!("{label}: staged: {e}"))
        .holds;
    assert_eq!(
        naive, staged,
        "{label}: naive vs staged differ on {formula}"
    );

    let run = check_safety(dcds, &phi, &SymOptions::default())
        .unwrap_or_else(|e| panic!("{label}: symbolic rejected {formula}: {e}"));
    match run.verdict {
        SymVerdict::Holds(_) => {
            assert!(
                naive,
                "{label}: symbolic=holds, explicit=violated on {formula}"
            );
            Some(true)
        }
        SymVerdict::Violated(_) => {
            assert!(
                !naive,
                "{label}: symbolic=violated, explicit=holds on {formula}"
            );
            Some(false)
        }
        SymVerdict::Inconclusive(_) => None,
    }
}

fn load_spec(name: &str) -> Dcds {
    let path = format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"));
    parse_dcds(&std::fs::read_to_string(&path).unwrap()).unwrap()
}

#[test]
fn shipped_bounded_specs_agree() {
    // ping_pong: nondeterministic, state-bounded — RCYCL is exact.
    let pp = load_spec("ping_pong.dcds");
    let pp_ts = explicit_ts(&pp);
    let pp_props = [
        // R and Q are never simultaneously nonempty: holds.
        "nu Z . (! (exists X . exists Y . R(X) & Q(Y))) & [] Z",
        // Q is eventually populated: holds.
        "mu Z . (exists X . Q(X)) | <> Z",
        // Q stays empty forever: violated.
        "nu Z . (! (exists X . Q(X))) & [] Z",
        // R only ever holds the initial constant: violated (service
        // results flow back into R through Q).
        "nu Z . (forall Y . R(Y) -> Y = 'a') & [] Z",
        // Some R value differs from 'a' eventually: holds.
        "mu Z . (exists X . R(X) & ! X = 'a') | <> Z",
    ];
    for p in pp_props {
        let v = differential(&pp, &pp_ts, p, "ping_pong");
        assert!(v.is_some(), "ping_pong must be definitive on {p}");
    }

    // travel_request: nondeterministic with integrity constraints,
    // state-bounded via GR+-acyclicity.
    let tr = load_spec("travel_request.dcds");
    let tr_ts = explicit_ts(&tr);
    let tr_props = [
        // A request can be confirmed: holds.
        "mu Z . Status('requestConfirmed') | <> Z",
        // The Status domain constraint is invariant: holds (and the
        // symbolic engine proves it by constraint pruning alone).
        "nu Z . (forall S . Status(S) -> S = 'readyForRequest' | S = 'readyToVerify' \
         | S = 'readyToUpdate' | S = 'requestConfirmed') & [] Z",
        // The status never leaves the initial value: violated.
        "nu Z . (forall S . Status(S) -> S = 'readyForRequest') & [] Z",
        // Once verified, the status has advanced (the spec's second
        // integrity constraint, restated as an invariant): holds.
        "nu Z . (Verified() -> (forall S . Status(S) -> S = 'readyToUpdate' \
         | S = 'requestConfirmed')) & [] Z",
    ];
    for p in tr_props {
        let v = differential(&tr, &tr_ts, p, "travel_request");
        assert!(v.is_some(), "travel_request must be definitive on {p}");
    }
}

/// A seeded-random *weakly acyclic* deterministic system: unary layer
/// relations `L0..L{k-1}`, effects that copy a layer in place or write
/// strictly upward (optionally through a deterministic service), so every
/// special edge in the dependency graph points up and the system is
/// run-bounded by construction (Theorem 4.7).
fn random_layered_system(seed: u64) -> Dcds {
    let mut rng = SplitMix64::new(seed);
    let layers = 3 + rng.gen_range(2); // 3..=4
    let services = 1 + rng.gen_range(2); // 1..=2
    let mut b = DcdsBuilder::new();
    for i in 0..layers {
        b = b.relation(&format!("L{i}"), 1);
    }
    for s in 0..services {
        b = b.service(&format!("f{s}"), 1, ServiceKind::Deterministic);
    }
    b = b.init_fact("L0", &["c0"]);
    if rng.gen_range(2) == 0 {
        b = b.init_fact("L0", &["c1"]);
    }
    let actions = 1 + rng.gen_range(2); // 1..=2
    for a in 0..actions {
        let mut effects: Vec<(String, String)> = Vec::new();
        for i in 0..layers {
            if rng.gen_range(2) == 0 {
                effects.push((format!("L{i}(X)"), format!("L{i}(X)")));
            }
        }
        for _ in 0..(1 + rng.gen_range(3)) {
            let i = rng.gen_range(layers - 1);
            let j = i + 1 + rng.gen_range(layers - 1 - i);
            if rng.gen_range(2) == 0 {
                let s = rng.gen_range(services);
                effects.push((format!("L{i}(X)"), format!("L{j}(f{s}(X))")));
            } else {
                effects.push((format!("L{i}(X)"), format!("L{j}(X)")));
            }
        }
        let name = format!("act{a}");
        b = b.action(&name, &[], |spec| {
            for (body, head) in &effects {
                spec.effect(body, head);
            }
        });
        b = b.rule("true", &name);
    }
    b.build().expect("generated spec must validate")
}

#[test]
fn seeded_random_weakly_acyclic_systems_agree() {
    let mut definitive = 0usize;
    let mut inconclusive = 0usize;
    for seed in 0..12u64 {
        let dcds = random_layered_system(seed);
        // Belt and braces: the generator must only emit weakly acyclic
        // systems, otherwise the explicit oracle may be truncated.
        let dg = dcds_verify::analysis::dependency_graph(&dcds);
        assert!(
            dcds_verify::analysis::is_weakly_acyclic(&dg),
            "seed {seed}: generator emitted a non-weakly-acyclic system"
        );
        let ts = explicit_ts(&dcds);
        // Every relation is a layer, so the last one is the top.
        let top = format!("L{}", dcds.data.schema.len() - 1);
        let props = [
            // The top layer is eventually populated.
            format!("mu Z . (exists X . {top}(X)) | <> Z"),
            // The top layer only ever holds the initial constant.
            format!("nu Z . (forall Y . {top}(Y) -> Y = 'c0') & [] Z"),
            // Some non-initial value eventually reaches the top layer.
            format!("mu Z . (exists X . {top}(X) & ! X = 'c0') | <> Z"),
            // A middle layer stays inside the initial constants — a
            // disjunctive right-hand side, compiled to a two-disequality
            // bad clause.
            "nu Z . (forall Y . L1(Y) -> Y = 'c0' | Y = 'c1') & [] Z".to_owned(),
        ];
        for p in &props {
            match differential(&dcds, &ts, p, &format!("seed {seed}")) {
                Some(_) => definitive += 1,
                None => inconclusive += 1,
            }
        }
    }
    // The over-approximation may punt occasionally, but a symbolic engine
    // that answers nothing is differentially untested — require a strong
    // majority of definitive verdicts.
    assert!(
        definitive >= 3 * (definitive + inconclusive) / 4,
        "too many inconclusive verdicts: {definitive} definitive vs {inconclusive} inconclusive"
    );
}
