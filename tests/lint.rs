//! End-to-end tests for `dcds lint`, driving the real binary over the
//! `specs/bad/` fixtures and temporary specs that exercise every stable
//! `DCDS0xx` code, in both output formats, with the exit-code contract.

use std::process::Command;

/// Run the binary; returns (exit code, combined stdout+stderr).
fn dcds_code(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dcds"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("not killed by signal"), text)
}

fn spec(name: &str) -> String {
    format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Write `src` to a fresh temp spec named for the calling test and lint it.
fn lint_src(tag: &str, src: &str, extra: &[&str]) -> (i32, String) {
    let path = std::env::temp_dir().join(format!("dcds_lint_{tag}_{}.dcds", std::process::id()));
    std::fs::write(&path, src).expect("temp spec written");
    let path_s = path.to_str().expect("utf-8 temp path").to_owned();
    let mut args = vec!["lint", path_s.as_str()];
    args.extend_from_slice(extra);
    let res = dcds_code(&args);
    let _ = std::fs::remove_file(&path);
    res
}

// ---------------------------------------------------------------- fixtures

#[test]
fn arity_mismatch_fixture() {
    let (code, text) = dcds_code(&["lint", &spec("bad/arity_mismatch.dcds")]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error[DCDS002]"), "{text}");
    assert!(text.contains("error[DCDS001]"), "{text}");
    // Spans point at the offending atoms.
    assert!(text.contains("arity_mismatch.dcds:6:5"), "{text}");
    assert!(text.contains("arity_mismatch.dcds:7:5"), "{text}");
    // Source snippet and caret are rendered.
    assert!(text.contains("P(X, Y) ~> R(X);"), "{text}");
    assert!(text.contains("^"), "{text}");
}

#[test]
fn unbound_param_fixture() {
    let (code, text) = dcds_code(&["lint", &spec("bad/unbound_param.dcds")]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error[DCDS020]"), "{text}");
    assert!(text.contains("error[DCDS021]"), "{text}");
    assert!(text.contains("error[DCDS022]"), "{text}");
    // The head-variable span lands on the variable itself.
    assert!(text.contains("unbound_param.dcds:9:15"), "{text}");
}

#[test]
fn dead_action_fixture() {
    let (code, text) = dcds_code(&["lint", &spec("bad/dead_action.dcds")]);
    // Warnings only: exits 0 without --deny, 1 with it.
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("warning[DCDS040]"), "{text}");
    assert!(text.contains("warning[DCDS041]"), "{text}");
    assert!(text.contains("warning[DCDS042]"), "{text}");

    let (code, text) = dcds_code(&["lint", &spec("bad/dead_action.dcds"), "--deny", "warnings"]);
    assert_eq!(code, 1, "{text}");
}

#[test]
fn nonacyclic_fixture() {
    let (code, text) = dcds_code(&["lint", &spec("bad/nonacyclic.dcds")]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("warning[DCDS061]"), "{text}");
    assert!(text.contains("recall cycle pi3"), "{text}");
    // Every boundedness warning is accompanied by the engine-routing note.
    assert!(text.contains("note[DCDS080]"), "{text}");
    assert!(text.contains("--engine symbolic"), "{text}");
}

#[test]
fn symbolic_fallback_note_on_unbounded_safe() {
    let (code, text) = dcds_code(&["lint", &spec("unbounded_safe.dcds")]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("warning[DCDS060]"), "{text}");
    assert!(text.contains("note[DCDS080]"), "{text}");
    assert!(text.contains("--engine symbolic"), "{text}");
}

// ---------------------------------------------------- remaining DCDS codes

#[test]
fn parse_error_is_dcds000_with_exit_2() {
    let (code, text) = lint_src("parse", "schema { P 1 }\n", &[]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("error[DCDS000]"), "{text}");

    let (code, text) = lint_src("parse_json", "schema { P 1 }\n", &["--format", "json"]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("\"code\":\"DCDS000\""), "{text}");
    assert!(text.contains("\"line\":1"), "{text}");
}

#[test]
fn duplicate_declarations() {
    let (code, text) = lint_src(
        "dups",
        "schema { P 1; P 2; }\n\
         services { f 1 det; f 1 det; }\n\
         init { P(a); }\n\
         action go() { P(X) ~> P(f(X)); }\n\
         action go() { P(X) ~> P(X); }\n\
         rule true => go;\n",
        &[],
    );
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error[DCDS003]"), "{text}");
    assert!(text.contains("error[DCDS006]"), "{text}");
    assert!(text.contains("error[DCDS007]"), "{text}");
}

#[test]
fn service_errors() {
    let (code, text) = lint_src(
        "svc",
        "schema { P 1; }\n\
         services { f 2 det; }\n\
         init { P(a); }\n\
         action go() { P(X) ~> P(g(X)); }\n\
         action go2() { P(X) ~> P(f(X)); }\n\
         rule true => go;\n\
         rule true => go2;\n",
        &[],
    );
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error[DCDS004]"), "{text}");
    assert!(text.contains("error[DCDS005]"), "{text}");
}

#[test]
fn rule_errors() {
    let (code, text) = lint_src(
        "rules",
        "schema { P 1; }\n\
         init { P(a); }\n\
         action go(X) { P(X) ~> P(X); }\n\
         rule P(X) & P(Y) => go;\n\
         rule true => gone;\n",
        &[],
    );
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error[DCDS008]"), "{text}");
    assert!(text.contains("error[DCDS009]"), "{text}");
}

#[test]
fn filter_and_disjunction_errors() {
    let (code, text) = lint_src(
        "filter",
        "schema { P 1; Q 1; }\n\
         init { P(a); }\n\
         action go() { P(X) & !Q(V) ~> P(X); }\n\
         action go2() { P(X) | Q(X) ~> P(X); }\n\
         rule true => go;\n\
         rule true => go2;\n",
        &[],
    );
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error[DCDS023]"), "{text}");
    assert!(text.contains("error[DCDS024]"), "{text}");
}

#[test]
fn unsat_condition_warning() {
    let (code, text) = lint_src(
        "unsat",
        "schema { P 1; }\n\
         init { P(a); }\n\
         action go() { P(X) ~> P(X); }\n\
         rule P(b) & b = c => go;\n",
        &[],
    );
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("warning[DCDS043]"), "{text}");
}

#[test]
fn weak_acyclicity_warning_and_run_bound_note() {
    // Deterministic Example 4.3: not weakly acyclic → DCDS060 with cycle.
    let (code, text) = lint_src(
        "wa",
        "schema { R 1; Q 1; }\n\
         services { f 1 det; }\n\
         init { R(a); }\n\
         action alpha() { R(X) ~> Q(f(X)); Q(X) ~> R(X); }\n\
         rule true => alpha;\n",
        &[],
    );
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("warning[DCDS060]"), "{text}");
    assert!(text.contains("=[special]=>"), "{text}");

    // A weakly acyclic deterministic spec gets the DCDS062 note instead.
    let (code, text) = lint_src(
        "rb",
        "schema { P 1; }\n\
         services { f 1 det; }\n\
         init { P(a); }\n\
         action go() { P(X) ~> P(f(a)); }\n\
         rule true => go;\n",
        &[],
    );
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("note[DCDS062]"), "{text}");
    assert!(text.contains("run_bound"), "{text}");
}

#[test]
fn state_bound_note() {
    let (code, text) = dcds_code(&["lint", &spec("ping_pong.dcds")]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("note[DCDS063]"), "{text}");
}

#[test]
fn lowering_error_catch_all() {
    // Constraint violated by the initial instance: every per-construct pass
    // is happy, but strict lowering still rejects the spec → DCDS099.
    let (code, text) = lint_src(
        "lower",
        "schema { P 1; }\n\
         init { P(a); }\n\
         constraint P(X) -> false;\n\
         action go() { P(X) ~> P(X); }\n\
         rule true => go;\n",
        &[],
    );
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error[DCDS099]"), "{text}");
}

// ----------------------------------------------------------- JSON contract

#[test]
fn json_format_is_one_object_per_line() {
    let (code, text) = dcds_code(&["lint", &spec("bad/arity_mismatch.dcds"), "--format", "json"]);
    assert_eq!(code, 1, "{text}");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 3, "{text}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"code\":\"DCDS0"), "{line}");
        assert!(line.contains("\"severity\":"), "{line}");
        assert!(line.contains("\"payload\":"), "{line}");
    }
    // The arity mismatch carries its machine-readable arity payload.
    assert!(
        text.contains("\"used_arity\":2") && text.contains("\"declared_arity\":1"),
        "{text}"
    );
    // No text-format summary line in JSON mode.
    assert!(!text.contains("error(s)"), "{text}");
}

// ------------------------------------------------------------- round-trip

#[test]
fn shipped_specs_lint_clean() {
    for name in [
        "ping_pong.dcds",
        "accumulator.dcds",
        "travel_request.dcds",
        "unbounded_safe.dcds",
    ] {
        let (code, text) = dcds_code(&["lint", &spec(name)]);
        assert_eq!(code, 0, "{name}: {text}");
        assert!(!text.contains("error["), "{name}: {text}");
        // accumulator is deliberately state-unbounded (Example 5.2): it
        // carries the DCDS061 advisory but stays exit-0 without --deny.
        if name == "accumulator.dcds" {
            assert!(text.contains("warning[DCDS061]"), "{text}");
        }
    }
}

#[test]
fn unreadable_path_is_a_usage_error() {
    let (code, text) = dcds_code(&["lint", "no_such_spec.dcds"]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("cannot read"), "{text}");
}
