//! Observability layer: instrumentation must be invisible to the engines.
//!
//! The contract has three parts:
//!
//! 1. **Tracing changes nothing** — a traced run produces the same
//!    abstraction / extension / counters as the untraced one;
//! 2. **Registry metrics are thread-count deterministic** — counters,
//!    gauges, and the non-`_us` histograms are bit-identical at 1, 2, 4,
//!    and 8 threads (timing histograms are excluded by the `_us` naming
//!    convention);
//! 3. **Exporters are well-formed** — the Chrome trace contains only
//!    complete (`X`) and metadata (`M`) events, and worker spans land on
//!    distinct tids;
//! 4. **Profiling flags change nothing** — `--profile`, `--profile-alloc`,
//!    and `--events` leave every deterministic metric bit-identical, and
//!    the folded-stack export is well-formed (every line `path weight`,
//!    driver self-time summing to the root's inclusive time).

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::Duration;

use dcds_verify::abstraction::{
    det_abstraction_opts, det_abstraction_traced, rcycl_opts, rcycl_traced, AbsOptions,
};
use dcds_verify::bench::{examples, travel};
use dcds_verify::core::par_map_obs;
use dcds_verify::folang::Formula;
use dcds_verify::mucalc::{check_traced, sugar, McOptions, Mu};
use dcds_verify::obs::export::chrome_trace;
use dcds_verify::obs::metrics::MetricsSnapshot;
use dcds_verify::obs::{aggregate, folded, span, EventSink, Obs, ObsConfig, SharedBuf, Weight};

/// Allocation attribution needs the counting allocator installed as the
/// process-global one; it delegates straight to `System` until a session
/// with `track_alloc` opens the gate.
#[global_allocator]
static ALLOC: dcds_verify::obs::alloc::CountingAlloc = dcds_verify::obs::alloc::CountingAlloc;

/// Tests that toggle the process-global allocation gate (`track_alloc`)
/// serialise on this lock so a parallel test cannot flip it mid-span.
static ALLOC_GATE: Mutex<()> = Mutex::new(());

fn alloc_gate() -> std::sync::MutexGuard<'static, ()> {
    ALLOC_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn assert_snapshots_identical(name: &str, snapshots: &[MetricsSnapshot]) {
    let base = &snapshots[0];
    for (snap, threads) in snapshots[1..].iter().zip(&THREADS[1..]) {
        assert_eq!(
            base.counters, snap.counters,
            "{name}: counters differ at {threads} threads"
        );
        assert_eq!(
            base.gauges, snap.gauges,
            "{name}: gauges differ at {threads} threads"
        );
        assert_eq!(
            base.deterministic_histograms(),
            snap.deterministic_histograms(),
            "{name}: non-timing histograms differ at {threads} threads"
        );
    }
}

#[test]
fn det_abstraction_tracing_is_invisible_and_metrics_deterministic() {
    let dcds = travel::audit_system_small();
    let mut snapshots = Vec::new();
    for threads in THREADS {
        let opts = AbsOptions {
            threads,
            ..AbsOptions::default()
        };
        let obs = Obs::enabled(ObsConfig::default());
        let traced = det_abstraction_traced(&dcds, 80, opts, &obs);
        let plain = det_abstraction_opts(&dcds, 80, opts);
        assert_eq!(
            traced.ts, plain.ts,
            "tracing changed the abstraction at {threads} threads"
        );
        assert_eq!(traced.outcome, plain.outcome);
        assert_eq!(traced.counters, plain.counters);
        snapshots.push(obs.finish().unwrap().metrics);
    }
    assert_snapshots_identical("det_abstraction", &snapshots);
    // The run left a real footprint in the registry.
    let m = &snapshots[0];
    assert!(m.counter("abs.states_expanded").unwrap() > 1);
    assert!(m.counter("abs.levels").unwrap() >= 1);
    assert!(m.gauge("abs.max_frontier").unwrap() >= 1);
    assert!(m.histogram("abs.frontier_states").unwrap().count >= 1);
}

#[test]
fn rcycl_tracing_is_invisible_and_metrics_deterministic() {
    let dcds = travel::request_system_small();
    let mut snapshots = Vec::new();
    for threads in THREADS {
        let obs = Obs::enabled(ObsConfig::default());
        let traced = rcycl_traced(&dcds, 150, threads, &obs);
        let plain = rcycl_opts(&dcds, 150, threads);
        assert_eq!(
            traced.ts, plain.ts,
            "tracing changed the pruning at {threads} threads"
        );
        assert_eq!(traced.used_values, plain.used_values);
        assert_eq!(traced.triples_processed, plain.triples_processed);
        assert_eq!(traced.counters, plain.counters);
        snapshots.push(obs.finish().unwrap().metrics);
    }
    assert_snapshots_identical("rcycl", &snapshots);
    let m = &snapshots[0];
    assert!(m.counter("rcycl.triples_processed").unwrap() > 1);
    assert!(m.gauge("rcycl.used_values").unwrap() > 1);
    assert!(m.histogram("rcycl.theta_fanout").unwrap().count >= 1);
}

#[test]
fn model_checker_metrics_are_thread_count_deterministic() {
    // Example 5.1 under RCYCL with the paper's µLP safety property.
    let e51 = examples::example_5_1();
    let pruning = rcycl_opts(&e51, 100, 1);
    assert!(pruning.complete);
    let r = e51.data.schema.rel_id("R").unwrap();
    let q = e51.data.schema.rel_id("Q").unwrap();
    let phi = sugar::ag(Mu::exists(
        "X",
        Mu::live("X").and(
            Mu::Query(Formula::Atom(r, vec![dcds_verify::folang::QTerm::var("X")])).or(Mu::Query(
                Formula::Atom(q, vec![dcds_verify::folang::QTerm::var("X")]),
            )),
        ),
    ));
    let mut snapshots = Vec::new();
    let mut runs = Vec::new();
    for threads in THREADS {
        let obs = Obs::enabled(ObsConfig::default());
        let run = check_traced(&phi, &pruning.ts, McOptions { threads }, &obs).unwrap();
        snapshots.push(obs.finish().unwrap().metrics);
        runs.push(run);
    }
    assert_snapshots_identical("mc", &snapshots);
    for run in &runs[1..] {
        assert_eq!(runs[0].holds, run.holds);
        assert_eq!(runs[0].extension, run.extension);
        assert_eq!(runs[0].counters, run.counters);
    }
    let m = &snapshots[0];
    assert!(m.counter("mc.fixpoint_iterations").unwrap() >= 1);
    assert!(m.counter("mc.query_state_evals").unwrap() >= 1);
}

#[test]
fn worker_spans_land_on_distinct_tids() {
    // 256 items is far above the parallel threshold, so par_map_obs opens
    // one "unit" span per worker thread, each on its own tid.
    let items: Vec<u64> = (0..256).collect();
    let obs = Obs::enabled(ObsConfig::default());
    let doubled = par_map_obs(&items, 4, &obs, "unit", |&x| x * 2);
    assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    let report = obs.finish().unwrap();
    let unit_tids: BTreeSet<u32> = report
        .events
        .iter()
        .filter(|e| e.name == "unit")
        .map(|e| e.tid)
        .collect();
    let unit_count = report.events.iter().filter(|e| e.name == "unit").count();
    assert_eq!(unit_count, 4, "one span per worker");
    assert_eq!(unit_tids.len(), 4, "each worker on its own tid");

    // The Chrome export labels those tids as separate tracks.
    let trace = chrome_trace(&report.events);
    assert!(trace.contains("\"name\":\"thread_name\""));
    assert!(trace.contains("worker-"));
}

#[test]
fn engine_chrome_trace_is_well_formed() {
    let obs = Obs::enabled(ObsConfig::default());
    let _ = det_abstraction_traced(
        &travel::audit_system_small(),
        80,
        AbsOptions {
            threads: 2,
            ..AbsOptions::default()
        },
        &obs,
    );
    let report = obs.finish().unwrap();
    assert!(!report.events.is_empty());

    // Span nesting survives the merge: the overall engine span is
    // top-level, per-level spans are nested under it.
    assert!(report
        .events
        .iter()
        .any(|e| e.name == "det_abstraction" && e.depth == 0));
    assert!(report
        .events
        .iter()
        .any(|e| e.name == "frontier_level" && e.depth == 1));

    // Every event is a complete (X) or metadata (M) record; B/E pairs
    // never appear, so the file cannot be unbalanced.
    let trace = chrome_trace(&report.events);
    assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace.ends_with("]}"));
    let phases = trace.matches("\"ph\":\"").count();
    let complete = trace.matches("\"ph\":\"X\"").count();
    let metadata = trace.matches("\"ph\":\"M\"").count();
    assert_eq!(
        phases,
        complete + metadata,
        "unexpected phase kind: {trace}"
    );
    assert_eq!(complete, report.events.len());
}

#[test]
fn heartbeats_are_rate_limited() {
    // A long interval: the first heartbeat arms the limiter without
    // firing, so a tight burst evaluates no messages at all.
    let obs = Obs::enabled(ObsConfig {
        progress: Some(Duration::from_secs(3600)),
        ..ObsConfig::default()
    });
    let mut evaluated = 0u32;
    for _ in 0..100 {
        obs.heartbeat(|| {
            evaluated += 1;
            String::new()
        });
    }
    assert_eq!(evaluated, 0, "burst within the interval must not fire");

    // A zero interval fires on every call after arming.
    let obs = Obs::enabled(ObsConfig {
        progress: Some(Duration::ZERO),
        ..ObsConfig::default()
    });
    let mut evaluated = 0u32;
    for _ in 0..5 {
        obs.heartbeat(|| {
            evaluated += 1;
            "tick".into()
        });
    }
    assert_eq!(evaluated, 4, "zero interval fires after arming");

    // No progress configured: the closure is never even evaluated.
    let obs = Obs::enabled(ObsConfig::default());
    let mut evaluated = 0u32;
    obs.heartbeat(|| {
        evaluated += 1;
        String::new()
    });
    assert_eq!(evaluated, 0);
}

#[test]
fn profiling_flags_leave_metrics_bit_identical() {
    let _g = alloc_gate();
    let dcds = travel::audit_system_small();
    let mut plain = Vec::new();
    let mut flagged = Vec::new();
    for threads in THREADS {
        let opts = AbsOptions {
            threads,
            ..AbsOptions::default()
        };
        // Flags off.
        let obs = Obs::enabled(ObsConfig::default());
        let _ = det_abstraction_traced(&dcds, 80, opts, &obs);
        plain.push(obs.finish().unwrap().metrics);

        // Every new flag on: allocation attribution plus an event stream.
        let buf = SharedBuf::new();
        let obs = Obs::enabled(ObsConfig {
            track_alloc: true,
            events: Some(EventSink::new(Box::new(buf.clone()))),
            ..ObsConfig::default()
        });
        let _ = det_abstraction_traced(&dcds, 80, opts, &obs);
        flagged.push(obs.finish().unwrap().metrics);
        assert!(
            buf.contents().contains("\"type\":\"level\""),
            "the engine streamed per-level events"
        );
    }
    assert_snapshots_identical("flags-off", &plain);
    assert_snapshots_identical("flags-on", &flagged);
    // The flags did not leak into the registry either: off vs on agree.
    for (threads, (off, on)) in THREADS.iter().zip(plain.iter().zip(&flagged)) {
        assert_eq!(
            off.counters, on.counters,
            "profiling flags changed the counters at {threads} threads"
        );
        assert_eq!(off.gauges, on.gauges);
        assert_eq!(
            off.deterministic_histograms(),
            on.deterministic_histograms()
        );
    }
}

#[test]
fn engine_event_stream_is_typed_and_seq_ordered() {
    let buf = SharedBuf::new();
    let obs = Obs::enabled(ObsConfig {
        events: Some(EventSink::new(Box::new(buf.clone()))),
        ..ObsConfig::default()
    });
    let _ = det_abstraction_traced(
        &travel::audit_system_small(),
        80,
        AbsOptions {
            threads: 2,
            ..AbsOptions::default()
        },
        &obs,
    );
    obs.finish();
    let text = buf.contents();
    let mut last_seq = None;
    for line in text.lines() {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "malformed event line: {line}"
        );
        let seq_field = line
            .split("\"seq\":")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '}'][..]).next())
            .unwrap_or_else(|| panic!("event line without seq: {line}"));
        let seq: u64 = seq_field.parse().expect("seq is an integer");
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq not strictly increasing: {prev} then {seq}");
        }
        last_seq = Some(seq);
    }
    assert!(text.contains("\"type\":\"level\""));
    assert!(text.contains("\"dedup_hits\":"));
}

#[test]
fn folded_profile_is_well_formed_and_root_covers_the_run() {
    let _g = alloc_gate();
    let obs = Obs::enabled(ObsConfig {
        track_alloc: true,
        ..ObsConfig::default()
    });
    {
        let _run = span!(obs, "run", command = "test");
        let _ = det_abstraction_traced(
            &travel::audit_system_small(),
            80,
            AbsOptions {
                threads: 2,
                ..AbsOptions::default()
            },
            &obs,
        );
    }
    let report = obs.finish().unwrap();
    let stats = aggregate(&report.events);

    // Every folded line is `path;seg;... weight` with a parseable weight.
    let folded_time = folded(&stats, Weight::SelfTimeUs);
    for line in folded_time.lines() {
        let (path, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("folded line without a weight column: {line}"));
        assert!(!path.is_empty());
        assert!(
            weight.parse::<u64>().is_ok(),
            "non-numeric weight in: {line}"
        );
    }

    // Driver self time is a partition of the root's inclusive time: the
    // root's folded total accounts for the whole run (the flamegraph sums
    // to the wall clock of the driver thread).
    let root = stats.get("run").expect("root span path present");
    assert_eq!(root.count, 1);
    let driver_self: u64 = stats
        .iter()
        .filter(|(path, _)| !path.starts_with("workers"))
        .map(|(_, s)| s.self_us)
        .sum();
    assert_eq!(
        driver_self, root.incl_us,
        "driver self-time must sum to the root's inclusive time"
    );

    // Allocation attribution landed: the run allocated, and the root's
    // inclusive bytes cover its children.
    assert!(root.alloc_bytes > 0, "the abstraction allocates");
    let folded_alloc = folded(&stats, Weight::SelfAllocBytes);
    assert!(!folded_alloc.is_empty());
}

#[test]
fn disabled_handle_is_a_no_op() {
    let obs = Obs::disabled();
    assert!(!obs.is_enabled());
    {
        let mut g = span!(obs, "ghost", n = 1u64);
        g.set("more", 2u64);
    }
    obs.counter_add("c", 1);
    obs.gauge_max("g", 1);
    obs.histogram("h", 1);
    obs.time_us("t_us", obs.timer());
    assert!(
        obs.timer().is_none(),
        "disabled timer must not read the clock"
    );
    assert!(obs.finish().is_none());
}
