//! Theorem 4.4's pipeline, property-tested: for random µLA formulas over
//! the finite abstractions of the paper's examples, the direct FO
//! µ-calculus evaluator and `PROP(Φ)` + propositional model checking agree
//! on every state (not just the initial one).

// Property tests require the external `proptest` crate, which the offline
// build environment cannot fetch; see the crate manifest for how to enable.
#![cfg(feature = "proptest")]

use dcds_verify::bench::examples;
use dcds_verify::folang::{Formula, QTerm};
use dcds_verify::mucalc::mc::{eval, Valuation};
use dcds_verify::mucalc::prop_mc::eval_prop;
use dcds_verify::mucalc::{propositionalize, Mu, PredVar};
use dcds_verify::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random closed µLA formula over schema {R/1, Q/1} with quantified
/// variables V0..V2 and at most one fixpoint binder.
fn arb_mu_la() -> impl Strategy<Value = Mu> {
    // Depth-bounded recursive strategy.
    let leaf = prop_oneof![
        Just(Mu::Query(Formula::True)),
        Just(Mu::Query(Formula::False)),
        (0usize..2, 0usize..3).prop_map(|(rel, v)| {
            // Relation ids 0/1 exist in both example schemas used below.
            Mu::Query(Formula::Atom(
                dcds_verify::reldata::RelId::from_index(rel),
                vec![QTerm::var(&format!("V{v}"))],
            ))
        }),
        (0usize..3, 0usize..3).prop_map(|(v, w)| Mu::Query(Formula::eq(
            QTerm::var(&format!("V{v}")),
            QTerm::var(&format!("V{w}"))
        ))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            inner.clone().prop_map(|f| f.diamond()),
            inner.clone().prop_map(|f| f.boxed()),
            (0usize..3, inner.clone()).prop_map(|(v, f)| {
                let name = format!("V{v}");
                Mu::exists(name.as_str(), Mu::live(&name).and(f))
            }),
            (0usize..3, inner.clone()).prop_map(|(v, f)| {
                let name = format!("V{v}");
                Mu::forall(name.as_str(), Mu::live(&name).implies(f))
            }),
            inner.clone().prop_map(|f| Mu::lfp(
                "Zp",
                f.diamond()
                    .or(Mu::Pvar(PredVar::new("Zp")).not().not().diamond())
            )),
        ]
    })
}

/// Close a formula by guarded-existentially quantifying its free variables.
fn close(f: Mu) -> Mu {
    let mut out = f;
    for v in out.clone().free_vars() {
        let name = v.name().to_owned();
        out = Mu::exists(name.as_str(), Mu::live(&name).and(out));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn direct_and_prop_agree_on_every_state(f in arb_mu_la()) {
        // Fixpoint sanity: the generated lfp bodies are monotone by
        // construction (Z occurs under even negations).
        let phi = close(f);
        prop_assume!(dcds_verify::mucalc::fragments::check_monotone(
            &phi, &mut BTreeMap::new(), true).is_ok());
        for ts in systems() {
            let direct = eval(&phi, &ts, &mut Valuation::default());
            let prop = propositionalize(&phi, &ts.adom_union()).unwrap();
            let via_prop = eval_prop(&prop, &ts, &mut BTreeMap::new());
            prop_assert_eq!(&direct, &via_prop, "formula {:?}", phi);
        }
    }
}

/// Finite systems to test over: the RCYCL pruning of Example 5.1 and the
/// deterministic abstraction of Example 4.3's weakly-acyclic cousin.
fn systems() -> Vec<Ts> {
    let e51 = examples::example_5_1();
    let pruning = rcycl(&e51, 100);
    assert!(pruning.complete);
    // Note: RelId 0 = R, 1 = Q in example_5_1's schema — matching the
    // generator's atoms.
    vec![pruning.ts]
}
