//! Quickstart: build a DCDS, analyse it statically, construct its finite
//! abstraction, and model-check µ-calculus properties.
//!
//! Run with `cargo run --example quickstart`.

use dcds_verify::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Model: Example 4.3 of the paper, with a nondeterministic service.
    //    One action ping-pongs a value through an external service:
    //        α : { R(x) ⇝ Q(f(x)),  Q(x) ⇝ R(x) }
    // ------------------------------------------------------------------
    let dcds = DcdsBuilder::new()
        .relation("R", 1)
        .relation("Q", 1)
        .service("f", 1, ServiceKind::Nondeterministic)
        .init_fact("R", &["a"])
        .action("alpha", &[], |a| {
            a.effect("R(X)", "Q(f(X))");
            a.effect("Q(X)", "R(X)");
        })
        .rule("true", "alpha")
        .build()
        .expect("well-formed DCDS");
    println!(
        "DCDS built: {} relations, {} actions",
        dcds.data.schema.len(),
        dcds.process.actions.len()
    );

    // ------------------------------------------------------------------
    // 2. Static analysis. The dependency graph has a cycle through a
    //    special edge (not weakly acyclic → run-boundedness not
    //    guaranteed), but the dataflow graph is GR-acyclic, which
    //    guarantees state-boundedness (Theorem 5.6).
    // ------------------------------------------------------------------
    let dg = dependency_graph(&dcds);
    let df = dataflow_graph(&dcds);
    println!("weakly acyclic:  {}", is_weakly_acyclic(&dg));
    println!("GR-acyclic:      {}", is_gr_acyclic(&df));

    // ------------------------------------------------------------------
    // 3. Finite faithful abstraction: Algorithm RCYCL (Theorem 5.4)
    //    terminates because the system is state-bounded, yielding a
    //    pruning persistence-bisimilar to the infinite concrete system.
    // ------------------------------------------------------------------
    let pruning = rcycl(&dcds, 1_000);
    println!(
        "RCYCL: complete = {}, {} states, {} edges, {} values used",
        pruning.complete,
        pruning.ts.num_states(),
        pruning.ts.num_edges(),
        pruning.used_values.len()
    );

    // ------------------------------------------------------------------
    // 4. Model checking µLP properties on the abstraction. The surface
    //    syntax: `live(X)` guards, `<>`/`[]` modalities, `mu`/`nu`
    //    fixpoints.
    // ------------------------------------------------------------------
    let mut schema = dcds.data.schema.clone();
    let mut pool = dcds.data.pool.clone();
    let props = [
        // Invariant: some tuple is always live.
        (
            "always some tuple",
            "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
        ),
        // From every state, an R-state is reachable.
        (
            "AG EF R nonempty",
            "nu Z . (mu Y . (exists X . live(X) & R(X)) | <> Y) & [] Z",
        ),
        // R and Q never hold together (the action replaces the whole state).
        (
            "mutual exclusion",
            "nu Z . !(exists X . live(X) & R(X) & Q(X)) & [] Z",
        ),
    ];
    for (name, src) in props {
        let phi = parse_mu(src, &mut schema, &mut pool).expect("parsable");
        println!(
            "fragment {:?}  |  {name}: {}",
            classify(&phi).unwrap(),
            check(&phi, &pruning.ts).unwrap()
        );
    }

    // ------------------------------------------------------------------
    // 5. Sanity: a bounded concrete prefix agrees with the abstraction on
    //    the witnessed state bound.
    // ------------------------------------------------------------------
    let mut oracle = CommitmentOracle;
    let prefix = explore_nondet(
        &dcds,
        Limits {
            max_states: 200,
            max_depth: 4,
        },
        &mut oracle,
    );
    println!(
        "concrete prefix: {} states, max |adom| = {} (abstraction: {})",
        prefix.ts.num_states(),
        prefix.ts.max_state_adom(),
        pruning.ts.max_state_adom()
    );
}
