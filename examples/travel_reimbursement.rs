//! The Appendix E case study end-to-end: the travel-reimbursement request
//! system (nondeterministic services, GR⁺-acyclic) and the audit system
//! (deterministic services, weakly acyclic), statically analysed,
//! abstracted, and model-checked.
//!
//! Run with `cargo run --release --example travel_reimbursement`.

use dcds_verify::bench::{figures, travel};
use dcds_verify::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Request system: employee files a request, the monitor verifies,
    // reject/update loops until acceptance.
    // ------------------------------------------------------------------
    let request = travel::request_system();
    println!("== request system (faithful, Appendix E) ==");
    println!(
        "{} relations, {} services, {} actions",
        request.data.schema.len(),
        request.process.services.len(),
        request.process.actions.len()
    );
    let df = dataflow_graph(&request);
    println!("GR-acyclic:  {} (paper: no)", is_gr_acyclic(&df));
    println!("GR+-acyclic: {} (paper: yes)", is_gr_plus_acyclic(&df));
    println!("\nFigure 9 dataflow graph (Graphviz):");
    println!("{}", dcds_verify::analysis::dataflow_dot(&df, &request));

    // ------------------------------------------------------------------
    // Audit system: accepted requests re-checked through a deterministic
    // currency-conversion service.
    // ------------------------------------------------------------------
    let audit = travel::audit_system();
    println!("== audit system ==");
    let dg = dependency_graph(&audit);
    println!("weakly acyclic: {} (paper: yes)", is_weakly_acyclic(&dg));
    let abs = det_abstraction(&audit, 5_000);
    println!(
        "deterministic abstraction: {:?}, {} states, {} edges",
        abs.outcome,
        abs.ts.num_states(),
        abs.ts.num_edges()
    );

    // ------------------------------------------------------------------
    // Full verification report (liveness + safety on the reduced request
    // system via RCYCL; the µLA audit property on the abstraction).
    // ------------------------------------------------------------------
    println!("\n{}", figures::travel_verify());
}
