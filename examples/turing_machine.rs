//! The Theorem 4.1 reduction, live: compile Turing machines into DCDSs and
//! watch `G ¬halted` track halting — the executable content of the paper's
//! undecidability results.
//!
//! Run with `cargo run --release --example turing_machine`.

use dcds_verify::mucalc::{check, sugar, Mu};
use dcds_verify::prelude::*;
use dcds_verify::reductions::tm::{busy_beaver_2, halting_machine, looping_machine, TmOutcome};
use dcds_verify::reductions::tm_to_dcds;

fn halted_somewhere(ts: &Ts, dcds: &Dcds) -> bool {
    let halted = dcds.data.schema.rel_id("halted").unwrap();
    ts.state_ids().any(|s| {
        ts.db(s)
            .contains(halted, &dcds_verify::reldata::Tuple::unit())
    })
}

fn main() {
    for (name, tm) in [
        ("halting machine", halting_machine()),
        ("busy beaver 2", busy_beaver_2()),
        ("looping machine", looping_machine()),
    ] {
        println!("== {name} ==");
        let outcome = tm.run(&[], 100);
        match &outcome {
            TmOutcome::Halted { steps, tape } => {
                println!("direct simulation: halts after {steps} steps, tape = {tape:?}")
            }
            TmOutcome::Running => println!("direct simulation: still running after 100 steps"),
        }

        let dcds = tm_to_dcds(&tm, &[]).expect("reduction compiles");
        println!(
            "compiled DCDS: {} relations, {} effects in `step`",
            dcds.data.schema.len(),
            dcds.process.actions[0].effects.len()
        );

        match outcome {
            TmOutcome::Halted { steps, .. } => {
                // Explore one step past the halting depth: `halted` must be
                // raised on the simulating run.
                let mut oracle = CommitmentOracle;
                let prefix = explore_det(
                    &dcds,
                    Limits {
                        max_states: 20_000,
                        max_depth: steps + 1,
                    },
                    &mut oracle,
                );
                println!(
                    "bounded exploration (depth {}): {} states, halted reached = {}",
                    steps + 1,
                    prefix.ts.num_states(),
                    halted_somewhere(&prefix.ts, &dcds)
                );
            }
            TmOutcome::Running => {
                // The looping machine is tape-bounded, hence the DCDS is
                // run-bounded: the abstraction saturates and the µLP safety
                // property G ¬halted is *verified*, not just tested.
                let abs = det_abstraction(&dcds, 5_000);
                let halted = dcds.data.schema.rel_id("halted").unwrap();
                let safe = sugar::ag(Mu::Query(Formula::Atom(halted, vec![])).not());
                println!(
                    "abstraction: {:?} with {} states; G !halted verified = {}",
                    abs.outcome,
                    abs.ts.num_states(),
                    check(&safe, &abs.ts).unwrap()
                );
            }
        }
        println!();
    }
    println!(
        "Halting is undecidable, and the runs of the compiled DCDS mirror the machine's \
         runs one-to-one — hence checking even propositional LTL safety on unrestricted \
         DCDSs is undecidable (Theorems 4.1, 5.1)."
    );
}
