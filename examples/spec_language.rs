//! The textual DCDS specification language: parse a spec, run the static
//! analyses, build the abstraction, and emit Graphviz.
//!
//! Run with `cargo run --example spec_language`.

use dcds_verify::prelude::*;

/// A small order-fulfilment process written in the surface syntax.
const SPEC: &str = r"
    % An order pipeline: orders arrive with external payloads, get picked,
    % then shipped; shipped orders leave the system.
    schema {
        Tru 0;            % the paper's built-in `true` relation
        Queue 1;          % orders waiting
        Picked 1;         % orders being handled
        Shipped 1;        % orders on the truck
    }
    services {
        newOrder 0 nondet;   % the outside world submits order payloads
    }
    init { Tru(); }

    action Receive() {
        Tru() ~> Tru(), Queue(newOrder());
        Picked(X) ~> Picked(X);
        Shipped(X) ~> Shipped(X);
    }
    action Pick() {
        Tru() ~> Tru();
        Queue(X) ~> Picked(X);
        Shipped(X) ~> Shipped(X);
    }
    action Ship() {
        Tru() ~> Tru();
        Picked(X) ~> Shipped(X);
        Queue(X) ~> Queue(X);
    }
    rule true => Receive;
    rule true => Pick;
    rule true => Ship;
";

fn main() {
    let dcds = parse_dcds(SPEC).expect("spec parses and validates");
    println!(
        "parsed: {} relations, {} services, {} actions, {} rules",
        dcds.data.schema.len(),
        dcds.process.services.len(),
        dcds.process.actions.len(),
        dcds.process.rules.len()
    );

    // Static analysis: Receive generates fresh payloads into Queue (special
    // edge from the Tru loop) while Queue/Picked/Shipped values are
    // recalled by OTHER actions — is the accumulation benign?
    let df = dataflow_graph(&dcds);
    println!("GR-acyclic:  {}", is_gr_acyclic(&df));
    println!("GR+-acyclic: {}", is_gr_plus_acyclic(&df));

    // Receive also copies Picked/Shipped, so generation and recall share an
    // action: the system is genuinely state-unbounded (orders accumulate).
    let obs = dcds_verify::abstraction::observe_state_bound(&dcds, 4, 20_000);
    println!(
        "witnessed state bound after 4 steps: {} (growing => unbounded)",
        obs.max_observed
    );

    // RCYCL cannot saturate; budgeted truncation is reported honestly.
    let pruning = rcycl(&dcds, 150);
    println!(
        "RCYCL with 150-state budget: complete = {}, {} states",
        pruning.complete,
        pruning.ts.num_states()
    );

    // A bounded prefix still supports *bounded* model checking: within the
    // horizon, every picked order can be shipped.
    let mut schema = dcds.data.schema.clone();
    let mut pool = dcds.data.pool.clone();
    let phi = parse_mu(
        "nu Z . (forall X . live(X) -> (Picked(X) -> (mu Y . Shipped(X) | <> (live(X) & Y)))) & [] Z",
        &mut schema,
        &mut pool,
    )
    .expect("parses");
    println!(
        "fragment: {:?}; 'every picked order can ship (while it persists)' on the prefix: {}",
        classify(&phi).unwrap(),
        check(&phi, &pruning.ts).unwrap()
    );

    println!(
        "\nGraphviz of the dataflow graph:\n{}",
        dcds_verify::analysis::dataflow_dot(&df, &dcds)
    );
}
