//! The paper's running motif (Examples 3.1–3.3): students enrol and
//! eventually graduate. This example demonstrates the *semantic gap*
//! between the two decidable logics on one concrete system:
//!
//! * the µLA property "every student eventually graduates (along some
//!   evolution)" refers to the student even while she is out of the
//!   database — history preservation;
//! * the µLP variants additionally demand the student *persists* until
//!   graduation (or allow her to be dropped).
//!
//! Run with `cargo run --release --example student_registry`.

use dcds_verify::mucalc::diagnostics;
use dcds_verify::prelude::*;

fn main() {
    // One student slot: enrol brings in a fresh student id; graduation
    // moves her to Grad with an externally-chosen mark; both enrolment and
    // graduation are decided by the environment.
    let dcds = DcdsBuilder::new()
        .relation("Tru", 0)
        .relation("Stud", 1)
        .relation("Grad", 2)
        .service("newStudent", 0, ServiceKind::Nondeterministic)
        .service("mark", 1, ServiceKind::Nondeterministic)
        .init_fact("Tru", &[])
        .action("enrol", &[], |a| {
            a.effect("Tru()", "Tru(), Stud(newStudent())");
        })
        .action("graduate", &[], |a| {
            a.effect("Tru()", "Tru()");
            a.effect("Stud(X)", "Grad(X, mark(X))");
        })
        .action("drop", &[], |a| {
            a.effect("Tru()", "Tru()");
        })
        .rule("true", "enrol")
        .rule("exists X . Stud(X)", "graduate")
        .rule("exists X . Stud(X)", "drop")
        .build()
        .expect("well-formed");

    let df = dataflow_graph(&dcds);
    println!("GR-acyclic: {}", is_gr_acyclic(&df));
    let pruning = rcycl(&dcds, 2_000);
    println!(
        "RCYCL: complete = {}, {} states, {} edges\n",
        pruning.complete,
        pruning.ts.num_states(),
        pruning.ts.num_edges()
    );

    let mut schema = dcds.data.schema.clone();
    let mut pool = pruning.pool.clone();

    // Example 3.2 (µLA): always, every live student has SOME evolution
    // eventually graduating her — the quantified X may even leave the
    // database in between (history preservation).
    let mu_la = parse_mu(
        "nu Z . (forall S . live(S) -> (Stud(S) -> \
           mu Y . ((exists G . live(G) & Grad(S, G)) | <> Y))) & [] Z",
        &mut schema,
        &mut pool,
    )
    .unwrap();
    // Example 3.3 first variant (µLP): the student must PERSIST until
    // graduation along the witnessing evolution.
    let mu_lp_strong = parse_mu(
        "nu Z . (forall S . live(S) -> (Stud(S) -> \
           mu Y . ((exists G . live(G) & Grad(S, G)) | <> (live(S) & Y)))) & [] Z",
        &mut schema,
        &mut pool,
    )
    .unwrap();
    // Example 3.3 second variant (µLP): either the student is dropped, or
    // she eventually graduates.
    let mu_lp_weak = parse_mu(
        "nu Z . (forall S . live(S) -> (Stud(S) -> \
           mu Y . ((exists G . live(G) & Grad(S, G)) | <> (live(S) -> Y)))) & [] Z",
        &mut schema,
        &mut pool,
    )
    .unwrap();

    for (name, phi) in [
        ("Example 3.2 (muLA: eventual graduation)", &mu_la),
        (
            "Example 3.3a (muLP: persist until graduation)",
            &mu_lp_strong,
        ),
        ("Example 3.3b (muLP: dropped or graduates)", &mu_lp_weak),
    ] {
        println!(
            "{name}\n  fragment: {:?}\n  holds: {}",
            classify(phi).unwrap(),
            check(phi, &pruning.ts).unwrap()
        );
    }

    // Diagnostics: a counterexample path for a property that fails —
    // AG (some student is enrolled) fails immediately after graduation.
    let always_stud = parse_mu("exists S . live(S) & Stud(S)", &mut schema, &mut pool).unwrap();
    if let Some(path) = dcds_verify::mucalc::counterexample_ag(&always_stud, &pruning.ts) {
        println!(
            "\ncounterexample to AG(some student enrolled):\n  {}",
            diagnostics::render_path(&path, &pruning.ts, &schema, &pool)
        );
    }
}
