#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test"
cargo test -q

echo "All checks passed."
