#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test"
cargo test -q

echo "== query-plan differential suite"
# Four-way differential (reference / nested-loop / plan-scan / plan+index)
# plus the engine-level thread-count invariance tests. Both are part of
# `cargo test` above; rerunning them by name keeps the gate loud if either
# target is ever renamed or feature-gated away.
cargo test -q -p dcds-folang --test plan_differential
cargo test -q -p dcds-bench --test plan_paths

echo "== symbolic-engine differential suite"
# Regression-based backward reachability vs the naive Kleene evaluator
# and the staged model checker on exact explicit abstractions: bounded
# shipped specs plus seeded-random weakly acyclic layered systems. Part
# of `cargo test` above; named rerun keeps the gate loud if the target
# is ever renamed.
cargo test -q --test symbolic_differential

echo "== compact-store differential suite"
# Arena/delta store vs owned-Instance oracle: materialisation-level
# (reldata) and engine-level (compact vs legacy at 1/2/4/8 threads) —
# abstraction engines (counters included), the store-backed bounded
# explorers, and the collision-heavy keyed-dedup family.
cargo test -q -p dcds-reldata --test store_differential
cargo test -q -p dcds-bench --test compact_differential

echo "== compact-store memory smoke"
# Fixed 50k-state workloads through the compact engines; fails if the
# deterministic bytes-per-state estimate exceeds the pinned ceilings.
cargo run --release -q -p dcds-bench --bin memsmoke

echo "== perf regression smoke gate"
# One-rep run of the abstraction/mucalc/query stages (the heavyweight
# scale stage is skipped) compared against the committed BENCH_*.json
# baselines; writes BENCH_diff.json and fails on a gross regression.
# Thresholds are deliberately loose — smoke is best-of-1 on a shared
# machine — so only order-of-magnitude collapses trip here; the tight
# gates run with the full `perf_report --baseline` on dedicated hardware.
cargo run --release -q -p dcds-bench --bin perf_report -- \
    --smoke --baseline . --max-slowdown 6 --max-growth 2

echo "== cargo doc --no-deps (rustdoc warnings)"
# Intra-doc link breakage and malformed doc fences surface only here.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== cargo bench --no-run (compile check)"
# Criterion benches carry required-features = ["criterion"] (the registry
# is unreachable offline), so this compiles every crate in the bench
# profile and skips the gated harnesses unless the feature is enabled.
cargo bench --no-run

if [[ "${DCDS_PROPTEST:-0}" == "1" ]]; then
    echo "== proptest suites (DCDS_PROPTEST=1)"
    # Requires the `proptest` dev-dependency, which offline builds cannot
    # fetch; opt in from a networked environment.
    cargo test -q -p dcds-folang --features proptest --test eval_agreement
else
    echo "== proptest suites skipped (set DCDS_PROPTEST=1 to enable)"
fi

echo "All checks passed."
