//! # dcds-verify
//!
//! Verification of relational **data-centric dynamic systems** (DCDSs) with
//! external services — a full implementation of Bagheri Hariri, Calvanese,
//! De Giacomo, Deutsch, Montali, PODS 2013 (arXiv:1203.0024).
//!
//! This crate is the facade over the workspace:
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`reldata`] | `dcds-reldata` | constants, schemas, instances, isomorphism |
//! | [`folang`] | `dcds-folang` | FO queries, UCQs, evaluators, constraints, parser |
//! | [`core`] | `dcds-core` | the DCDS model, both service semantics, transition systems |
//! | [`mucalc`] | `dcds-mucalc` | µL / µLA / µLP, fragment checks, model checkers |
//! | [`analysis`] | `dcds-analysis` | weak acyclicity, GR(⁺)-acyclicity, congruence closure, graph exports |
//! | [`abstraction`] | `dcds-abstraction` | deterministic abstraction, Algorithm RCYCL |
//! | [`symbolic`] | `dcds-symbolic` | regression-based backward reachability for AG/EF safety |
//! | [`lint`] | `dcds-lint` | multi-pass spec diagnostics with stable `DCDS0xx` codes |
//! | [`obs`] | `dcds-obs` | spans, metrics registry, Chrome-trace/JSON exporters, heartbeats |
//! | [`bisim`] | `dcds-bisim` | history-/persistence-preserving bisimulation checkers |
//! | [`reductions`] | `dcds-reductions` | TM reduction, det↔nondet rewrites, artifact systems |
//! | [`mod@bench`] | `dcds-bench` | paper examples, travel systems, workloads, figure regeneration |
//!
//! ## Quickstart
//!
//! ```
//! use dcds_verify::prelude::*;
//!
//! // Example 4.3 of the paper under nondeterministic services: the
//! // R/Q ping-pong is state-bounded, so RCYCL builds a finite faithful
//! // abstraction and µLP properties are decidable on it.
//! let dcds = DcdsBuilder::new()
//!     .relation("R", 1)
//!     .relation("Q", 1)
//!     .service("f", 1, ServiceKind::Nondeterministic)
//!     .init_fact("R", &["a"])
//!     .action("alpha", &[], |a| {
//!         a.effect("R(X)", "Q(f(X))");
//!         a.effect("Q(X)", "R(X)");
//!     })
//!     .rule("true", "alpha")
//!     .build()
//!     .unwrap();
//!
//! // Static sufficient condition (Theorem 5.6): GR-acyclic ⇒ state-bounded.
//! let df = dataflow_graph(&dcds);
//! assert!(is_gr_acyclic(&df));
//!
//! // Finite faithful abstraction via Algorithm RCYCL (Theorem 5.4).
//! let pruning = rcycl(&dcds, 1_000);
//! assert!(pruning.complete);
//!
//! // Model-check a µLP property: "always, some tuple is live".
//! let mut schema = dcds.data.schema.clone();
//! let mut pool = dcds.data.pool.clone();
//! let phi = parse_mu(
//!     "nu Z . (exists X . live(X) & (R(X) | Q(X))) & [] Z",
//!     &mut schema,
//!     &mut pool,
//! )
//! .unwrap();
//! assert!(check(&phi, &pruning.ts).unwrap());
//! ```

pub use dcds_abstraction as abstraction;
pub use dcds_analysis as analysis;
pub use dcds_bench as bench;
pub use dcds_bisim as bisim;
pub use dcds_core as core;
pub use dcds_folang as folang;
pub use dcds_lint as lint;
pub use dcds_mucalc as mucalc;
pub use dcds_obs as obs;
pub use dcds_reductions as reductions;
pub use dcds_reldata as reldata;
pub use dcds_symbolic as symbolic;

pub mod cli;

/// The most common imports in one place.
pub mod prelude {
    pub use dcds_abstraction::{det_abstraction, rcycl, AbsOutcome};
    pub use dcds_analysis::gr_acyclicity::{is_gr_acyclic, is_gr_plus_acyclic};
    pub use dcds_analysis::{dataflow_graph, dependency_graph, is_weakly_acyclic};
    pub use dcds_bisim::{history_bisimilar, persistence_bisimilar};
    pub use dcds_core::explore::{explore_det, explore_nondet, CommitmentOracle, Limits};
    pub use dcds_core::{parse_dcds, Dcds, DcdsBuilder, ServiceKind, Ts};
    pub use dcds_folang::{parse_formula, Formula};
    pub use dcds_mucalc::{
        check, check_prop, classify, parse_mu, propositionalize, sugar, Fragment, Mu,
    };
    pub use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};
    pub use dcds_symbolic::{check_safety, SymOptions, SymVerdict};
}
