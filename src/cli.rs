//! Shared command-line helpers for the `dcds` binary.
//!
//! Flag parsing here is deliberately tiny (no external crates): positional
//! scan, `--flag value` pairs, and the observability flag bundle
//! ([`ObsCli`]) shared by `abstract`, `check`, `analyze`, and `lint`.

use dcds_obs::{alloc, event, export, profile, EventSink, Obs, ObsConfig};
use std::str::FromStr;

/// Parse `--flag <value>` anywhere in `args`. `Ok(None)` when absent.
pub fn flag_value<T: FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} needs a number")),
    }
}

/// Parse `--flag <string>` anywhere in `args`. `Ok(None)` when absent.
pub fn string_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

/// Is the bare `--flag` present?
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// `--threads`, shared by `abstract` and `check` and range-checked once:
/// the engines treat the count as a divisor of the work, so 0 is a usage
/// error, not a silent serial fallback. Parsed as `u32` — thread counts
/// beyond four billion are typos, and on 32-bit targets a `usize` parse
/// would accept values the pool cannot spawn anyway.
pub fn threads_flag(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value::<u32>(args, "--threads")? {
        Some(0) => Err("--threads must be at least 1".into()),
        other => Ok(other.map(|n| n as usize)),
    }
}

/// The observability flag bundle shared by the recording commands:
///
/// * `--trace <file>` — Chrome `trace_event` JSON;
/// * `--stats` — human span/metric summary (plus the top-spans table) on
///   stderr;
/// * `--metrics-json <file|->` — metrics snapshot as JSON (`-` = stdout);
/// * `--profile <file>` — collapsed-stack (folded) profile weighted by
///   span self time, consumable by `inferno`/speedscope/`flamegraph.pl`;
/// * `--profile-alloc` — additionally attribute allocated bytes per span
///   path (writes `<file>.alloc` next to the `--profile` output);
/// * `--events <file|->` — live line-JSON event stream (`-` = stdout).
#[derive(Debug, Default)]
pub struct ObsCli {
    /// Chrome-trace output path, if requested.
    pub trace: Option<String>,
    /// Print the text summary to stderr at exit.
    pub stats: bool,
    /// Metrics-snapshot JSON output path (`-` = stdout), if requested.
    pub metrics_json: Option<String>,
    /// Folded-stack profile output path, if requested.
    pub profile: Option<String>,
    /// Attribute allocation bytes/counts per span.
    pub profile_alloc: bool,
    /// Live event-stream output path (`-` = stdout), if requested.
    pub events: Option<String>,
}

impl ObsCli {
    /// Parse the bundle from `args`.
    pub fn parse(args: &[String]) -> Result<ObsCli, String> {
        Ok(ObsCli {
            trace: string_flag(args, "--trace")?,
            stats: has_flag(args, "--stats"),
            metrics_json: string_flag(args, "--metrics-json")?,
            profile: string_flag(args, "--profile")?,
            profile_alloc: has_flag(args, "--profile-alloc"),
            events: string_flag(args, "--events")?,
        })
    }

    /// Does any flag ask for recording?
    pub fn wants_recording(&self) -> bool {
        self.trace.is_some()
            || self.stats
            || self.metrics_json.is_some()
            || self.profile.is_some()
            || self.profile_alloc
            || self.events.is_some()
    }

    /// Build the handle: enabled when any output was requested or when
    /// `DCDS_PROGRESS` asks for heartbeats; the zero-cost disabled handle
    /// otherwise. When an event stream is attached, a `run_start` event
    /// with the command and spec carries the session metadata.
    pub fn session(&self, command: &str, spec: &str) -> Result<Obs, String> {
        let mut config = ObsConfig::from_env();
        if !self.wants_recording() && config.progress.is_none() {
            return Ok(Obs::disabled());
        }
        config.track_alloc = self.profile_alloc;
        if let Some(path) = &self.events {
            let out: Box<dyn std::io::Write + Send> = if path == "-" {
                Box::new(std::io::stdout())
            } else {
                Box::new(
                    std::fs::File::create(path)
                        .map_err(|e| format!("cannot create {path}: {e}"))?,
                )
            };
            config.events = Some(EventSink::new(out));
        }
        let obs = Obs::enabled(config);
        event!(
            obs,
            "run_start",
            command = command.to_string(),
            spec = spec.to_string(),
        );
        Ok(obs)
    }

    /// Backwards-compatible handle without run metadata.
    pub fn handle(&self) -> Obs {
        self.session("", "").unwrap_or_else(|e| {
            eprintln!("warning: {e}");
            Obs::disabled()
        })
    }

    /// Drain the handle and write whatever was requested: a `run_end`
    /// event and final progress flush first, then the Chrome trace,
    /// folded-stack profile(s), metrics JSON, and the text summary (with
    /// the top-spans table) to their sinks.
    pub fn finish(&self, obs: &Obs) -> Result<(), String> {
        event!(obs, "run_end", wall_us = obs.elapsed_us());
        obs.progress_flush(|| format!("run finished in {:.1}s", obs.elapsed_us() as f64 / 1e6));
        let Some(report) = obs.finish() else {
            return Ok(());
        };
        if let Some(path) = &self.trace {
            let trace = export::chrome_trace(&report.events);
            std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "trace: {} events written to {path} (open in Perfetto or chrome://tracing)",
                report.events.len()
            );
        }
        if self.profile.is_some() || self.stats {
            let stats = profile::aggregate(&report.events);
            if let Some(path) = &self.profile {
                let folded = profile::folded(&stats, profile::Weight::SelfTimeUs);
                std::fs::write(path, folded).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!(
                    "profile: folded stacks ({} span paths, µs weights) written to {path}",
                    stats.len()
                );
                if self.profile_alloc {
                    let alloc_path = format!("{path}.alloc");
                    let folded = profile::folded(&stats, profile::Weight::SelfAllocBytes);
                    std::fs::write(&alloc_path, folded)
                        .map_err(|e| format!("cannot write {alloc_path}: {e}"))?;
                    eprintln!("profile: allocation-weighted stacks written to {alloc_path}");
                }
            }
            if self.stats {
                eprint!("{}", profile::top_spans(&stats, 15));
            }
        }
        if let Some(path) = &self.metrics_json {
            let json = report.metrics.to_json();
            if path == "-" {
                println!("{json}");
            } else {
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            }
        }
        if self.stats {
            eprint!("{}", export::text_summary(&report));
        }
        // Belt and braces: `Obs::finish` already clears the gate when the
        // session tracked allocations, but a failed session setup must not
        // leave counting on either.
        if self.profile_alloc {
            alloc::set_counting(false);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn threads_flag_validates() {
        assert_eq!(threads_flag(&argv(&["--threads", "4"])).unwrap(), Some(4));
        assert_eq!(threads_flag(&argv(&["x"])).unwrap(), None);
        assert!(threads_flag(&argv(&["--threads", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(threads_flag(&argv(&["--threads", "many"])).is_err());
        // u32 overflow is a parse error, not a wrap-around.
        assert!(threads_flag(&argv(&["--threads", "99999999999"])).is_err());
    }

    #[test]
    fn obs_cli_parses_bundle() {
        let cli = ObsCli::parse(&argv(&["--trace", "t.json", "--stats"])).unwrap();
        assert_eq!(cli.trace.as_deref(), Some("t.json"));
        assert!(cli.stats);
        assert!(cli.metrics_json.is_none());
        assert!(cli.wants_recording());

        let none = ObsCli::parse(&argv(&["--max-states", "7"])).unwrap();
        assert!(!none.wants_recording());

        // `--trace` directly followed by another flag is a missing value,
        // not a file named like a flag.
        assert!(ObsCli::parse(&argv(&["--trace", "--stats"])).is_err());
    }

    #[test]
    fn obs_cli_parses_profiling_flags() {
        let cli = ObsCli::parse(&argv(&[
            "--profile",
            "p.folded",
            "--profile-alloc",
            "--events",
            "-",
        ]))
        .unwrap();
        assert_eq!(cli.profile.as_deref(), Some("p.folded"));
        assert!(cli.profile_alloc);
        assert_eq!(cli.events.as_deref(), Some("-"));
        assert!(cli.wants_recording());

        // `--profile-alloc` alone still turns recording on (the spans are
        // where the attribution lands).
        let alloc_only = ObsCli::parse(&argv(&["--profile-alloc"])).unwrap();
        assert!(alloc_only.wants_recording());
        assert!(ObsCli::parse(&argv(&["--profile", "--stats"])).is_err());
        assert!(ObsCli::parse(&argv(&["--events", "--stats"])).is_err());
    }
}
