//! Shared command-line helpers for the `dcds` binary.
//!
//! Flag parsing here is deliberately tiny (no external crates): positional
//! scan, `--flag value` pairs, and the observability flag bundle
//! ([`ObsCli`]) shared by `abstract`, `check`, `analyze`, and `lint`.

use dcds_obs::{export, Obs, ObsConfig};
use std::str::FromStr;

/// Parse `--flag <value>` anywhere in `args`. `Ok(None)` when absent.
pub fn flag_value<T: FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} needs a number")),
    }
}

/// Parse `--flag <string>` anywhere in `args`. `Ok(None)` when absent.
pub fn string_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

/// Is the bare `--flag` present?
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// `--threads`, shared by `abstract` and `check` and range-checked once:
/// the engines treat the count as a divisor of the work, so 0 is a usage
/// error, not a silent serial fallback. Parsed as `u32` — thread counts
/// beyond four billion are typos, and on 32-bit targets a `usize` parse
/// would accept values the pool cannot spawn anyway.
pub fn threads_flag(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value::<u32>(args, "--threads")? {
        Some(0) => Err("--threads must be at least 1".into()),
        other => Ok(other.map(|n| n as usize)),
    }
}

/// The observability flag bundle: `--trace <file>` (Chrome `trace_event`
/// JSON), `--stats` (human span/metric summary on stderr), and
/// `--metrics-json <file|->` (metrics snapshot as JSON; `-` = stdout).
#[derive(Debug, Default)]
pub struct ObsCli {
    /// Chrome-trace output path, if requested.
    pub trace: Option<String>,
    /// Print the text summary to stderr at exit.
    pub stats: bool,
    /// Metrics-snapshot JSON output path (`-` = stdout), if requested.
    pub metrics_json: Option<String>,
}

impl ObsCli {
    /// Parse the bundle from `args`.
    pub fn parse(args: &[String]) -> Result<ObsCli, String> {
        Ok(ObsCli {
            trace: string_flag(args, "--trace")?,
            stats: has_flag(args, "--stats"),
            metrics_json: string_flag(args, "--metrics-json")?,
        })
    }

    /// Does any flag ask for recording?
    pub fn wants_recording(&self) -> bool {
        self.trace.is_some() || self.stats || self.metrics_json.is_some()
    }

    /// Build the handle: enabled when any output was requested or when
    /// `DCDS_PROGRESS` asks for heartbeats; the zero-cost disabled handle
    /// otherwise.
    pub fn handle(&self) -> Obs {
        let config = ObsConfig::from_env();
        if self.wants_recording() || config.progress.is_some() {
            Obs::enabled(config)
        } else {
            Obs::disabled()
        }
    }

    /// Drain the handle and write whatever was requested: the Chrome trace
    /// and metrics JSON to their files (metrics `-` = stdout), the text
    /// summary to stderr.
    pub fn finish(&self, obs: &Obs) -> Result<(), String> {
        let Some(report) = obs.finish() else {
            return Ok(());
        };
        if let Some(path) = &self.trace {
            let trace = export::chrome_trace(&report.events);
            std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "trace: {} events written to {path} (open in Perfetto or chrome://tracing)",
                report.events.len()
            );
        }
        if let Some(path) = &self.metrics_json {
            let json = report.metrics.to_json();
            if path == "-" {
                println!("{json}");
            } else {
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            }
        }
        if self.stats {
            eprint!("{}", export::text_summary(&report));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn threads_flag_validates() {
        assert_eq!(threads_flag(&argv(&["--threads", "4"])).unwrap(), Some(4));
        assert_eq!(threads_flag(&argv(&["x"])).unwrap(), None);
        assert!(threads_flag(&argv(&["--threads", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(threads_flag(&argv(&["--threads", "many"])).is_err());
        // u32 overflow is a parse error, not a wrap-around.
        assert!(threads_flag(&argv(&["--threads", "99999999999"])).is_err());
    }

    #[test]
    fn obs_cli_parses_bundle() {
        let cli = ObsCli::parse(&argv(&["--trace", "t.json", "--stats"])).unwrap();
        assert_eq!(cli.trace.as_deref(), Some("t.json"));
        assert!(cli.stats);
        assert!(cli.metrics_json.is_none());
        assert!(cli.wants_recording());

        let none = ObsCli::parse(&argv(&["--max-states", "7"])).unwrap();
        assert!(!none.wants_recording());

        // `--trace` directly followed by another flag is a missing value,
        // not a file named like a flag.
        assert!(ObsCli::parse(&argv(&["--trace", "--stats"])).is_err());
    }
}
