//! `dcds` — command-line front end for the DCDS verification stack.
//!
//! ```text
//! dcds analyze  <spec.dcds> [obs flags]          static analysis verdicts
//! dcds abstract <spec.dcds> [--max-states N] [--threads N] [--dot] [obs flags]
//!                                                build the finite abstraction
//!                                                (threads default to DCDS_THREADS
//!                                                or the machine's parallelism)
//! dcds check    <spec.dcds> <formula> [--engine explicit|symbolic]
//!               [--max-states N] [--threads N] [--witness]
//!               [--max-iters N] [--max-clauses N]
//!               [--format text|json] [obs flags]
//!                                                model-check a µ-calculus property
//! dcds run      <spec.dcds> [--steps N] [--seed S]
//!                                                simulate the system
//! dcds dot      <spec.dcds> [--graph dataflow|depgraph]
//!                                                emit Graphviz
//! dcds fmt      <spec.dcds>                      parse and pretty-print back
//! dcds lint     <spec.dcds> [--deny warnings] [--format text|json] [obs flags]
//!                                                multi-pass spec diagnostics
//! ```
//!
//! The observability flags (`abstract`, `check`, `analyze`, `lint`):
//! `--trace <file>` writes a Chrome `trace_event` JSON openable in Perfetto
//! or `chrome://tracing`; `--stats` prints a span/metric summary plus a
//! top-spans (self-time) table to stderr; `--metrics-json <file|->` writes
//! the metrics snapshot as JSON (`-` = stdout); `--profile <file>` writes a
//! collapsed-stack profile (self-time weights, `inferno`/speedscope
//! format); `--profile-alloc` additionally attributes allocated bytes per
//! span path (and writes `<file>.alloc` next to the `--profile` output);
//! `--events <file|->` streams typed line-JSON run events (`run_start`,
//! per-level `level`/`progress`, `fixpoint`, `sym_iter`, `heartbeat`,
//! `run_end`) with monotonic sequence numbers. `DCDS_PROGRESS=<interval>`
//! (e.g. `1s`, `500ms`) additionally enables rate-limited live heartbeats
//! on stderr, with a final flush line at run end.
//!
//! Specs are in the textual format of `dcds_core::parser`; formulas in the
//! µ-calculus surface syntax of `dcds_mucalc::parser`.
//!
//! ## Output streams
//!
//! Machine-consumable results (verdicts, abstractions, JSON) go to stdout;
//! human-only diagnostics — witnesses, engine statistics, truncation
//! warnings, heartbeats — go to stderr, so `dcds ... > out.txt` captures
//! the result without the commentary.
//!
//! ## Exit codes (`dcds check`)
//!
//! Scripting/CI contract: **0** — the property holds on a complete
//! abstraction; **1** — the property is violated on a complete abstraction;
//! **2** — inconclusive (the state budget was hit, so the abstraction is
//! truncated and the verdict only valid up to the budget). Parse and usage
//! errors keep the ordinary failure path (exit 1 with a message on stderr,
//! distinguishable from a violation verdict by the `error:` prefix).
//!
//! `--engine symbolic` keeps the same contract but decides AG/EF safety
//! properties by regression-based backward reachability, with no
//! boundedness requirement on the system: **0** — the property holds
//! definitively (fixpoint reached, initial instance not covered, or a
//! confirmed witness for EF); **1** — violated with a concrete
//! counterexample trace; **2** — inconclusive (`--max-iters` /
//! `--max-clauses` budget hit, or an over-approximate hit that the bounded
//! concrete search could not confirm).
//!
//! ## Exit codes (`dcds lint`)
//!
//! **0** — no error-severity findings (warnings/notes allowed, unless
//! `--deny warnings`); **1** — errors found (or warnings under
//! `--deny warnings`); **2** — the spec could not be parsed at all (the
//! syntax error itself is reported as a `DCDS000` diagnostic in the
//! selected format).

use dcds_verify::abstraction::{
    det_abstraction_compact_traced, det_abstraction_traced, rcycl_compact_traced, rcycl_traced,
    AbsOptions, AbsOutcome,
};
use dcds_verify::analysis::{
    dataflow_dot, dataflow_graph, dependency_graph, depgraph_dot, gr_acyclicity, is_weakly_acyclic,
    position_ranks, render_dep_cycle, run_bound_estimate, state_bound_estimate, weak_cycle_witness,
};
use dcds_verify::cli::{flag_value, has_flag, threads_flag, ObsCli};
use dcds_verify::core::{configured_threads, EngineCounters};
use dcds_verify::core::{parse_dcds, to_spec, AnswerPolicy, Dcds, Runner, Ts};
use dcds_verify::lint::{codes, lint_spec, render_json, render_text, Diagnostic};
use dcds_verify::mucalc::{check_traced, classify, diagnostics, parse_mu, McOptions, SafetyMode};
use dcds_verify::obs::{export::json_escape, span, Obs};
use dcds_verify::reldata::{ConstantPool, InstanceDisplay, StoreStats};
use dcds_verify::symbolic::{check_safety_traced, render_trace, SymOptions, SymVerdict};
use std::process::ExitCode;

/// Counting allocator so `--profile-alloc` can attribute bytes per span
/// path; a transparent passthrough to the system allocator (one relaxed
/// atomic load per call) unless that flag enables counting.
#[global_allocator]
static ALLOC: dcds_verify::obs::alloc::CountingAlloc = dcds_verify::obs::alloc::CountingAlloc;

/// `dcds check`: property holds (complete abstraction).
const EXIT_HOLDS: u8 = 0;
/// `dcds check`: property violated (complete abstraction).
const EXIT_VIOLATED: u8 = 1;
/// `dcds check`: inconclusive — the abstraction hit the state budget.
const EXIT_INCONCLUSIVE: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dcds analyze  <spec.dcds> [obs flags]
  dcds abstract <spec.dcds> [--max-states N] [--threads N] [--dot] [--compact]
                [obs flags]
  dcds check    <spec.dcds> <formula> [--engine explicit|symbolic]
                [--max-states N] [--threads N] [--witness]
                [--max-iters N] [--max-clauses N]
                [--format text|json] [--compact] [obs flags]
  dcds run      <spec.dcds> [--steps N] [--seed S]
  dcds dot      <spec.dcds> [--graph dataflow|depgraph]
  dcds fmt      <spec.dcds>
  dcds lint     <spec.dcds> [--deny warnings] [--format text|json] [obs flags]

obs flags (analyze, abstract, check, lint):
  --trace FILE          Chrome trace_event JSON (Perfetto, chrome://tracing)
  --stats               span/metric summary + top-spans table on stderr
  --metrics-json FILE|- metrics snapshot as JSON (- = stdout)
  --profile FILE        collapsed-stack profile, self-time-weighted
                        (inferno / speedscope / flamegraph.pl)
  --profile-alloc       also attribute allocated bytes per span path
                        (writes FILE.alloc next to --profile output)
  --events FILE|-       live line-JSON event stream (- = stdout)

`dcds check` exits 0 when the property holds, 1 when it is violated, and
2 when the verdict is inconclusive (state budget hit).
`--engine symbolic` decides AG/EF safety properties by backward
reachability without requiring boundedness; budgets are `--max-iters`
(regression depth) and `--max-clauses` (clause set size).
`--compact` builds the abstraction through the arena/delta state store
(flat per-state memory; bit-identical output) and reports store stats.
`dcds lint` exits 0 when the spec is clean, 1 on errors (or warnings under
--deny warnings), and 2 when the spec cannot be parsed.
Set DCDS_PROGRESS=1s (or 500ms, ...) for live heartbeats on stderr.";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "analyze" => analyze(
            args.get(1).ok_or("missing spec path")?,
            &ObsCli::parse(args)?,
        ),
        "abstract" => do_abstract(
            args.get(1).ok_or("missing spec path")?,
            flag_value(args, "--max-states")?.unwrap_or(10_000),
            threads_flag(args)?.unwrap_or_else(configured_threads),
            has_flag(args, "--dot"),
            has_flag(args, "--compact"),
            &ObsCli::parse(args)?,
        ),
        "check" => {
            let path = args.get(1).ok_or("missing spec path")?;
            let formula = args.get(2).ok_or("missing formula")?;
            return match parse_engine(args)? {
                Engine::Explicit => do_check(
                    path,
                    formula,
                    flag_value(args, "--max-states")?.unwrap_or(10_000),
                    threads_flag(args)?.unwrap_or_else(configured_threads),
                    has_flag(args, "--witness"),
                    parse_format(args)?,
                    has_flag(args, "--compact"),
                    &ObsCli::parse(args)?,
                ),
                Engine::Symbolic => {
                    let defaults = SymOptions::default();
                    do_check_symbolic(
                        path,
                        formula,
                        SymOptions {
                            max_iters: flag_value(args, "--max-iters")?
                                .unwrap_or(defaults.max_iters),
                            max_clauses: flag_value(args, "--max-clauses")?
                                .unwrap_or(defaults.max_clauses),
                            confirm_nodes: flag_value(args, "--confirm-nodes")?
                                .unwrap_or(defaults.confirm_nodes),
                        },
                        has_flag(args, "--witness"),
                        parse_format(args)?,
                        &ObsCli::parse(args)?,
                    )
                }
            };
        }
        "run" => do_run(
            args.get(1).ok_or("missing spec path")?,
            flag_value(args, "--steps")?.unwrap_or(10),
            flag_value::<u64>(args, "--seed")?.unwrap_or(42),
        ),
        "dot" => do_dot(
            args.get(1).ok_or("missing spec path")?,
            args.iter()
                .position(|a| a == "--graph")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("dataflow"),
        ),
        "fmt" => do_fmt(args.get(1).ok_or("missing spec path")?),
        "lint" => {
            return do_lint(
                args.get(1).ok_or("missing spec path")?,
                args.iter()
                    .position(|a| a == "--deny")
                    .map(|i| {
                        args.get(i + 1)
                            .filter(|v| v.as_str() == "warnings")
                            .map(|_| ())
                            .ok_or("--deny takes `warnings`")
                    })
                    .transpose()?
                    .is_some(),
                match parse_format(args)? {
                    OutputFormat::Text => LintFormat::Text,
                    OutputFormat::Json => LintFormat::Json,
                },
                &ObsCli::parse(args)?,
            )
        }
        other => Err(format!("unknown command `{other}`")),
    }
    .map(|()| ExitCode::SUCCESS)
}

/// Output format of `dcds check` (and, mapped onto [`LintFormat`], `lint`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

/// Verification engine of `dcds check`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Build the explicit finite abstraction, then model-check on it.
    Explicit,
    /// Regression-based backward reachability (AG/EF safety fragment only,
    /// no boundedness requirement).
    Symbolic,
}

fn parse_engine(args: &[String]) -> Result<Engine, String> {
    match args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("explicit") => Ok(Engine::Explicit),
        Some("symbolic") => Ok(Engine::Symbolic),
        Some(other) => Err(format!("unknown engine `{other}` (explicit|symbolic)")),
    }
}

fn parse_format(args: &[String]) -> Result<OutputFormat, String> {
    match args
        .iter()
        .position(|a| a == "--format")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("text") => Ok(OutputFormat::Text),
        Some("json") => Ok(OutputFormat::Json),
        Some(other) => Err(format!("unknown format `{other}` (text|json)")),
    }
}

fn load(path: &str) -> Result<Dcds, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_dcds(&src).map_err(|e| format!("{path}: {e}"))
}

fn analyze(path: &str, obs_cli: &ObsCli) -> Result<(), String> {
    let obs = obs_cli.session("analyze", path)?;
    let run_span = span!(obs, "run", command = "analyze");
    let dcds = {
        let _s = span!(obs, "parse_spec");
        load(path)?
    };
    println!(
        "{}: {} relations, {} services ({}), {} actions, {} rules, |I0| = {}",
        path,
        dcds.data.schema.len(),
        dcds.process.services.len(),
        if dcds.is_deterministic() {
            "all deterministic"
        } else if dcds.is_nondeterministic() {
            "all nondeterministic"
        } else {
            "mixed"
        },
        dcds.process.actions.len(),
        dcds.process.rules.len(),
        dcds.data.initial.len(),
    );
    let (dg, wa) = {
        let _s = span!(obs, "weak_acyclicity");
        let dg = dependency_graph(&dcds);
        let wa = is_weakly_acyclic(&dg);
        (dg, wa)
    };
    println!("weakly acyclic: {wa}");
    if !wa {
        if let Some(cycle) = weak_cycle_witness(&dg) {
            // Witness rendering is a human diagnostic: stderr.
            eprintln!(
                "  cycle through a special edge: {}",
                render_dep_cycle(&cycle, &dg, &dcds.data.schema)
            );
        }
    }
    if wa {
        if let Some(ranks) = position_ranks(&dg) {
            println!(
                "  max position rank: {}",
                ranks.iter().copied().max().unwrap_or(0)
            );
        }
        if dcds.is_deterministic() {
            println!("  ⇒ run-bounded (Thm 4.7); µLA decidable (Thm 4.8)");
            if let Some(bound) = run_bound_estimate(&dcds, &dg) {
                println!("  Thm 4.7 run bound (proof artifact): {bound:.3e}");
            }
        } else {
            eprintln!(
                "  (weak acyclicity implies run-boundedness only for deterministic \
                 services — this system has nondeterministic ones; see the GR verdicts)"
            );
        }
    }
    let (df, gr, grp) = {
        let _s = span!(obs, "gr_acyclicity");
        let df = dataflow_graph(&dcds);
        let gr = gr_acyclicity::is_gr_acyclic(&df);
        let grp = gr_acyclicity::is_gr_plus_acyclic(&df);
        (df, gr, grp)
    };
    println!("GR-acyclic: {gr}");
    println!("GR+-acyclic: {grp}");
    if gr {
        if let Some(bound) = state_bound_estimate(&dcds, &df) {
            println!("  Thm 5.6 state bound (proof artifact): {bound:.3e}");
        }
    }
    if grp {
        println!("  ⇒ state-bounded (Thm 5.6); µLP decidable via RCYCL (Thm 5.7)");
    } else if let Some(w) = gr_acyclicity::gr_plus_witness(&df) {
        eprintln!("  unexcused generate→recall pattern:");
        for line in gr_acyclicity::render_witness(&w, &df, &dcds).lines() {
            eprintln!("    {line}");
        }
    }
    obs.counter_add("analyze.relations", dcds.data.schema.len() as u64);
    obs.counter_add("analyze.actions", dcds.process.actions.len() as u64);
    drop(run_span);
    obs_cli.finish(&obs)
}

fn build_abstraction(
    dcds: &Dcds,
    max_states: usize,
    threads: usize,
    compact: bool,
    obs: &Obs,
) -> (
    Ts,
    ConstantPool,
    bool,
    &'static str,
    EngineCounters,
    Option<StoreStats>,
) {
    if compact {
        return build_abstraction_compact(dcds, max_states, threads, obs);
    }
    if dcds.is_deterministic() {
        let abs = det_abstraction_traced(
            dcds,
            max_states,
            AbsOptions {
                threads,
                ..AbsOptions::default()
            },
            obs,
        );
        let complete = abs.outcome == AbsOutcome::Complete;
        (
            abs.ts,
            abs.pool,
            complete,
            "deterministic abstraction (Thm 4.3)",
            abs.counters,
            None,
        )
    } else {
        let res = rcycl_traced(dcds, max_states, threads, obs);
        (
            res.ts,
            res.pool,
            res.complete,
            "RCYCL pruning (Thm 5.4)",
            res.counters,
            None,
        )
    }
}

/// [`build_abstraction`] through the arena/delta state store. The compact
/// engines are bit-identical to the legacy ones; the resulting `CompactTs`
/// is materialised to an owned [`Ts`] once, here, because every downstream
/// consumer (model checker, dot output) takes `&Ts`.
fn build_abstraction_compact(
    dcds: &Dcds,
    max_states: usize,
    threads: usize,
    obs: &Obs,
) -> (
    Ts,
    ConstantPool,
    bool,
    &'static str,
    EngineCounters,
    Option<StoreStats>,
) {
    if dcds.is_deterministic() {
        let abs = det_abstraction_compact_traced(
            dcds,
            max_states,
            AbsOptions {
                threads,
                ..AbsOptions::default()
            },
            obs,
        );
        let complete = abs.outcome == AbsOutcome::Complete;
        let stats = abs.ts.store_stats();
        (
            abs.ts.to_ts(),
            abs.pool,
            complete,
            "deterministic abstraction (Thm 4.3, compact store)",
            abs.counters,
            Some(stats),
        )
    } else {
        let res = rcycl_compact_traced(dcds, max_states, threads, obs);
        let stats = res.ts.store_stats();
        (
            res.ts.to_ts(),
            res.pool,
            res.complete,
            "RCYCL pruning (Thm 5.4, compact store)",
            res.counters,
            Some(stats),
        )
    }
}

/// Human-readable store-stats line (stderr commentary, not a result).
fn report_store_stats(stats: &StoreStats) {
    eprintln!(
        "compact store: {} bytes, {} facts interned, {} delta / {} root states, \
         delta share {:.1}%",
        stats.bytes,
        stats.facts_interned,
        stats.delta_states,
        stats.root_states,
        stats.delta_share() * 100.0
    );
}

fn do_abstract(
    path: &str,
    max_states: usize,
    threads: usize,
    dot: bool,
    compact: bool,
    obs_cli: &ObsCli,
) -> Result<(), String> {
    let obs = obs_cli.session("abstract", path)?;
    let run_span = span!(obs, "run", command = "abstract");
    let dcds = {
        let _s = span!(obs, "parse_spec");
        load(path)?
    };
    let (ts, pool, complete, how, counters, store_stats) =
        build_abstraction(&dcds, max_states, threads, compact, &obs);
    println!(
        "{how}: {} states, {} edges, max |adom(state)| = {}, complete = {complete}",
        ts.num_states(),
        ts.num_edges(),
        ts.max_state_adom()
    );
    println!(
        "engine ({threads} thread{}): {counters}",
        if threads == 1 { "" } else { "s" }
    );
    if let Some(rate) = counters.sig_hit_rate() {
        eprintln!(
            "signature fast path resolved {:.1}% of dedup probes",
            rate * 100.0
        );
    }
    if let Some(stats) = &store_stats {
        report_store_stats(stats);
    }
    if !complete {
        eprintln!(
            "note: budget of {max_states} states hit — the system may be run-/state-unbounded; \
             see `dcds analyze` for the static verdicts"
        );
    }
    if dot {
        println!("{}", ts.to_dot(&dcds.data.schema, &pool));
    }
    drop(run_span);
    obs_cli.finish(&obs)
}

#[allow(clippy::too_many_arguments)]
fn do_check(
    path: &str,
    formula: &str,
    max_states: usize,
    threads: usize,
    witness: bool,
    format: OutputFormat,
    compact: bool,
    obs_cli: &ObsCli,
) -> Result<ExitCode, String> {
    let obs = obs_cli.session("check", path)?;
    let run_span = span!(obs, "run", command = "check");
    let dcds = {
        let _s = span!(obs, "parse_spec");
        load(path)?
    };
    let mut schema = dcds.data.schema.clone();
    let mut pool_for_parse = dcds.data.pool.clone();
    let phi = parse_mu(formula, &mut schema, &mut pool_for_parse).map_err(|e| e.to_string())?;
    let fragment = classify(&phi).map_err(|e| e.to_string())?;
    let (ts, pool, complete, how, counters, store_stats) =
        build_abstraction(&dcds, max_states, threads, compact, &obs);
    if let Some(stats) = &store_stats {
        report_store_stats(stats);
    }
    let run = check_traced(&phi, &ts, McOptions { threads }, &obs).map_err(|e| e.to_string())?;
    let verdict = run.holds;
    match format {
        OutputFormat::Json => {
            // One JSON object: the machine-readable counterpart of the
            // text report, counters included (serde-free `to_json`).
            println!(
                "{{\"fragment\":\"{}\",\"abstraction\":{{\"how\":\"{}\",\"states\":{},\
                 \"edges\":{},\"complete\":{}}},\"engine_counters\":{},\"mc_counters\":{},\
                 \"verdict\":{}}}",
                json_escape(&format!("{fragment:?}")),
                json_escape(how),
                ts.num_states(),
                ts.num_edges(),
                complete,
                counters.to_json(),
                run.counters.to_json(),
                verdict
            );
        }
        OutputFormat::Text => {
            println!("fragment: {fragment:?}");
            println!(
                "abstraction: {how}, {} states, complete = {complete}",
                ts.num_states()
            );
            if !complete {
                eprintln!(
                    "WARNING: the abstraction is truncated; the verdict is only valid \
                     up to the budget"
                );
            }
            eprintln!(
                "mc engine ({threads} thread{}): {}",
                if threads == 1 { "" } else { "s" },
                run.counters
            );
            if let Some(rate) = run.counters.cache_hit_rate() {
                eprintln!(
                    "query-extension cache resolved {:.1}% of extension requests",
                    rate * 100.0
                );
            }
            println!("verdict: {verdict}");
        }
    }
    if witness && !verdict {
        if let Some(path_states) = diagnostics::counterexample_ag(&phi, &ts) {
            eprintln!(
                "shortest path to a violating state:\n  {}",
                diagnostics::render_path(&path_states, &ts, &dcds.data.schema, &pool)
            );
        }
    }
    if witness && verdict {
        if let Some(w) = diagnostics::witness_ef(&phi, &ts) {
            eprintln!(
                "a satisfying state (shortest path):\n  {}",
                diagnostics::render_path(&w, &ts, &dcds.data.schema, &pool)
            );
        }
    }
    drop(run_span);
    obs_cli.finish(&obs)?;
    Ok(ExitCode::from(if !complete {
        EXIT_INCONCLUSIVE
    } else if verdict {
        EXIT_HOLDS
    } else {
        EXIT_VIOLATED
    }))
}

/// `dcds check --engine symbolic`: decide an AG/EF safety property by
/// regression-based backward reachability. Same exit-code and output-stream
/// contract as the explicit engine; no boundedness requirement on the spec.
fn do_check_symbolic(
    path: &str,
    formula: &str,
    opts: SymOptions,
    witness: bool,
    format: OutputFormat,
    obs_cli: &ObsCli,
) -> Result<ExitCode, String> {
    let obs = obs_cli.session("check", path)?;
    let run_span = span!(obs, "run", command = "check");
    let dcds = {
        let _s = span!(obs, "parse_spec");
        load(path)?
    };
    let mut schema = dcds.data.schema.clone();
    let mut pool_for_parse = dcds.data.pool.clone();
    let phi = parse_mu(formula, &mut schema, &mut pool_for_parse).map_err(|e| e.to_string())?;
    let fragment = classify(&phi).map_err(|e| e.to_string())?;
    let run = check_safety_traced(&dcds, &phi, &opts, &obs).map_err(|e| e.to_string())?;
    let mode = match run.mode {
        SafetyMode::AlwaysGood => "AG",
        SafetyMode::EventuallyBad => "EF",
    };
    // Counters are commentary, not a result: stderr.
    let counters_line: Vec<String> = run
        .counters
        .entries()
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    eprintln!("symbolic engine: {}", counters_line.join(" "));
    let (code, trace) = match &run.verdict {
        SymVerdict::Holds(tr) => (EXIT_HOLDS, tr.as_ref()),
        SymVerdict::Violated(tr) => (EXIT_VIOLATED, tr.as_ref()),
        SymVerdict::Inconclusive(_) => (EXIT_INCONCLUSIVE, None),
    };
    match format {
        OutputFormat::Json => {
            let (verdict, reason) = match &run.verdict {
                SymVerdict::Holds(_) => ("true".to_string(), String::new()),
                SymVerdict::Violated(_) => ("false".to_string(), String::new()),
                SymVerdict::Inconclusive(r) => (
                    "null".to_string(),
                    format!(",\"reason\":\"{}\"", json_escape(r)),
                ),
            };
            println!(
                "{{\"fragment\":\"{}\",\"engine\":\"symbolic\",\"mode\":\"{mode}\",\
                 \"sym_counters\":{},\"verdict\":{verdict}{reason}}}",
                json_escape(&format!("{fragment:?}")),
                run.counters.to_json(),
            );
        }
        OutputFormat::Text => {
            println!("fragment: {fragment:?}");
            println!("engine: symbolic backward reachability, mode = {mode}");
            match &run.verdict {
                SymVerdict::Holds(_) => println!("verdict: true"),
                SymVerdict::Violated(_) => println!("verdict: false"),
                SymVerdict::Inconclusive(r) => println!("verdict: inconclusive ({r})"),
            }
        }
    }
    if witness {
        if let Some(tr) = trace {
            let what = match run.mode {
                SafetyMode::AlwaysGood => "counterexample trace",
                SafetyMode::EventuallyBad => "witness trace",
            };
            eprint!("{what}:\n{}", render_trace(tr, &dcds));
        }
    }
    drop(run_span);
    obs_cli.finish(&obs)?;
    Ok(ExitCode::from(code))
}

fn do_run(path: &str, steps: usize, seed: u64) -> Result<(), String> {
    let dcds = load(path)?;
    let schema = dcds.data.schema.clone();
    let mut runner = Runner::new(dcds, AnswerPolicy::Random { seed });
    println!(
        "s0: {}",
        InstanceDisplay::new(runner.current(), &schema, runner.pool())
    );
    for i in 1..=steps {
        let stepped = runner.step_any().map(|r| r.action).map_err(|e| e.clone());
        match stepped {
            Ok(action) => {
                let name = runner.dcds().process.actions[action.index()].name.clone();
                println!(
                    "s{i}: --{name}--> {}",
                    InstanceDisplay::new(runner.current(), &schema, runner.pool())
                );
            }
            Err(e) => {
                println!("s{i}: {e}");
                break;
            }
        }
    }
    Ok(())
}

fn do_dot(path: &str, which: &str) -> Result<(), String> {
    let dcds = load(path)?;
    match which {
        "dataflow" => println!("{}", dataflow_dot(&dataflow_graph(&dcds), &dcds)),
        "depgraph" => println!("{}", depgraph_dot(&dependency_graph(&dcds), &dcds)),
        other => return Err(format!("unknown graph `{other}` (dataflow|depgraph)")),
    }
    Ok(())
}

fn do_fmt(path: &str) -> Result<(), String> {
    let dcds = load(path)?;
    print!("{}", to_spec(&dcds));
    Ok(())
}

/// Output format of `dcds lint`.
enum LintFormat {
    /// rustc-style text with source snippets.
    Text,
    /// One JSON object per line.
    Json,
}

/// `dcds lint`: exit 0 clean, 1 on errors (or warnings under `--deny
/// warnings`), 2 when the spec does not even parse (the syntax error is
/// itself rendered as a `DCDS000` diagnostic).
fn do_lint(
    path: &str,
    deny_warnings: bool,
    format: LintFormat,
    obs_cli: &ObsCli,
) -> Result<ExitCode, String> {
    let obs = obs_cli.session("lint", path)?;
    let run_span = span!(obs, "run", command = "lint");
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let emit = |d: &Diagnostic| match format {
        LintFormat::Text => print!("{}", render_text(d, path, &src)),
        LintFormat::Json => println!("{}", render_json(d, path)),
    };
    let report = {
        let _s = span!(obs, "lint", bytes = src.len());
        match dcds_verify::core::parse_spec(&src) {
            Ok(spec) => lint_spec(&spec),
            Err(e) => {
                let d = Diagnostic::error(codes::PARSE_ERROR, e.message.clone())
                    .at(dcds_verify::folang::Span::new(e.line, e.col));
                emit(&d);
                obs_cli.finish(&obs)?;
                return Ok(ExitCode::from(2));
            }
        }
    };
    for d in &report.diagnostics {
        emit(d);
    }
    obs.counter_add("lint.errors", report.errors() as u64);
    obs.counter_add("lint.warnings", report.warnings() as u64);
    obs.counter_add("lint.notes", report.notes() as u64);
    if matches!(format, LintFormat::Text) {
        let (e, w, n) = (report.errors(), report.warnings(), report.notes());
        println!("{path}: {e} error(s), {w} warning(s), {n} note(s)");
    }
    let failed = report.has_errors() || (deny_warnings && report.warnings() > 0);
    drop(run_span);
    obs_cli.finish(&obs)?;
    Ok(ExitCode::from(if failed { 1 } else { 0 }))
}
