//! Property test: pretty-printing a random formula and re-parsing it yields
//! the same AST (modulo nothing — the printer is exact).

// Property tests require the external `proptest` crate, which the offline
// build environment cannot fetch; see the crate manifest for how to enable.
#![cfg(feature = "proptest")]

use dcds_folang::ast::{Formula, QTerm};
use dcds_folang::parser::parse_formula;
use dcds_folang::pretty::FormulaDisplay;
use dcds_reldata::{ConstantPool, Schema};
use proptest::prelude::*;

fn arb_formula() -> impl Strategy<Value = Formula> {
    let term = prop_oneof![
        (0usize..3).prop_map(|i| QTerm::var(&format!("V{i}"))),
        (0usize..3).prop_map(|i| QTerm::Const(dcds_reldata::Value::from_index(i))),
    ];
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        term.clone()
            .prop_map(|t| Formula::Atom(dcds_reldata::RelId::from_index(0), vec![t])),
        (term.clone(), term.clone())
            .prop_map(|(a, b)| Formula::Atom(dcds_reldata::RelId::from_index(1), vec![a, b])),
        (term.clone(), term.clone()).prop_map(|(a, b)| Formula::Eq(a, b)),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.implies(g)),
            (0usize..3, inner.clone())
                .prop_map(|(v, f)| Formula::exists(format!("V{v}").as_str(), f)),
            (0usize..3, inner.clone())
                .prop_map(|(v, f)| Formula::forall(format!("V{v}").as_str(), f)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn print_then_parse_is_identity(f in arb_formula()) {
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        schema.add_relation("Q", 2).unwrap();
        let mut pool = ConstantPool::new();
        // Materialise the constants the generator refers to by index.
        for name in ["c0", "c1", "c2"] {
            pool.intern(name);
        }
        let printed = FormulaDisplay::new(&f, &schema, &pool).to_string();
        let reparsed = parse_formula(&printed, &mut schema, &mut pool)
            .unwrap_or_else(|e| panic!("`{printed}` failed to reparse: {e}"));
        prop_assert_eq!(normalize(&f), normalize(&reparsed), "printed: {}", printed);
    }
}

/// The printer renders `¬(a = b)` as `a != b`, which parses back to the
/// same AST; everything else is syntax-stable. Normalisation is therefore
/// the identity — kept as a hook should the surface syntax ever diverge.
fn normalize(f: &Formula) -> Formula {
    f.clone()
}
