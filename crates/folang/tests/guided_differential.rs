//! Seeded differential test: atom-guided quantifier-block evaluation
//! against plain active-domain enumeration.
//!
//! The guided path joins the tuples of guard atoms to bind quantifier
//! blocks (including multi-atom guards where no single atom covers the
//! block — the shape of triple-collision constraints like
//! `∀X,Y,Z,V . E(X,V) ∧ E(Y,V) ∧ E(Z,V) → ...`). Semantics must be
//! identical to the unguided `|adom|^k` enumeration on every formula, so
//! random guard-shaped sentences are evaluated both ways and compared.
//!
//! Runs offline: pseudo-randomness is a local SplitMix64, not the `rand`
//! crate, so the exact same formulas replay on every run and platform.

use dcds_folang::{holds_closed, holds_unguided, Assignment, Formula, QTerm};
use dcds_reldata::{ConstantPool, Instance, RelId, Schema, Tuple, Value};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

const NUM_CONSTS: usize = 5;
const VAR_NAMES: [&str; 4] = ["X", "Y", "Z", "V"];

fn setup(rng: &mut SplitMix64) -> (Schema, Vec<Value>, Vec<RelId>, Instance) {
    let mut schema = Schema::new();
    let rels = vec![
        schema.add_relation("P", 1).unwrap(),
        schema.add_relation("Q", 2).unwrap(),
        schema.add_relation("E", 2).unwrap(),
    ];
    let mut pool = ConstantPool::new();
    let consts: Vec<Value> = (0..NUM_CONSTS)
        .map(|i| pool.intern(&format!("c{i}")))
        .collect();
    let mut inst = Instance::new();
    for _ in 0..2 + rng.gen_range(9) {
        let r = rng.gen_range(rels.len());
        let arity = schema.arity(rels[r]);
        let t: Vec<Value> = (0..arity)
            .map(|_| consts[rng.gen_range(consts.len())])
            .collect();
        inst.insert(rels[r], Tuple::new(t));
    }
    (schema, consts, rels, inst)
}

/// A random atom over the given variables (terms are block variables or
/// constants, constants rare so joins stay non-trivial).
fn random_atom(
    rng: &mut SplitMix64,
    schema: &Schema,
    rels: &[RelId],
    consts: &[Value],
    vars: &[&str],
) -> Formula {
    let rel = rels[rng.gen_range(rels.len())];
    let terms: Vec<QTerm> = (0..schema.arity(rel))
        .map(|_| {
            if rng.gen_range(5) == 0 {
                QTerm::Const(consts[rng.gen_range(consts.len())])
            } else {
                QTerm::var(vars[rng.gen_range(vars.len())])
            }
        })
        .collect();
    Formula::Atom(rel, terms)
}

/// A random conclusion / extra conjunct: an equality or an atom.
fn random_leaf(
    rng: &mut SplitMix64,
    schema: &Schema,
    rels: &[RelId],
    consts: &[Value],
    vars: &[&str],
) -> Formula {
    if rng.gen_range(2) == 0 {
        Formula::eq(
            QTerm::var(vars[rng.gen_range(vars.len())]),
            if rng.gen_range(2) == 0 {
                QTerm::var(vars[rng.gen_range(vars.len())])
            } else {
                QTerm::Const(consts[rng.gen_range(consts.len())])
            },
        )
    } else {
        random_atom(rng, schema, rels, consts, vars)
    }
}

#[test]
fn guided_joins_agree_with_enumeration_on_forall_guards() {
    // ∀-blocks with 1–3-atom guards: no single atom need cover the block,
    // which is exactly the case the multi-atom join handles.
    for seed in 0..6u64 {
        let mut rng = SplitMix64(0x9a1_ded ^ seed.wrapping_mul(0x9e37_79b9));
        for _ in 0..60 {
            let (schema, consts, rels, inst) = setup(&mut rng);
            let nvars = 2 + rng.gen_range(3);
            let vars = &VAR_NAMES[..nvars];
            let mut lhs = random_atom(&mut rng, &schema, &rels, &consts, vars);
            for _ in 0..rng.gen_range(3) {
                lhs = lhs.and(random_atom(&mut rng, &schema, &rels, &consts, vars));
            }
            let mut rhs = random_leaf(&mut rng, &schema, &rels, &consts, vars);
            if rng.gen_range(2) == 0 {
                rhs = rhs.or(random_leaf(&mut rng, &schema, &rels, &consts, vars));
            }
            let mut f = lhs.implies(rhs);
            for v in vars.iter().rev() {
                f = Formula::forall(*v, f);
            }
            let guided = holds_closed(&f, &inst).unwrap();
            let unguided = holds_unguided(&f, &inst, &Assignment::new()).unwrap();
            assert_eq!(
                guided, unguided,
                "diverged on {f:?} over {inst:?} (seed {seed})"
            );
        }
    }
}

#[test]
fn guided_joins_agree_with_enumeration_on_exists_conjunctions() {
    for seed in 0..6u64 {
        let mut rng = SplitMix64(0x00e7_1575 ^ seed.wrapping_mul(0x9e37_79b9));
        for _ in 0..60 {
            let (schema, consts, rels, inst) = setup(&mut rng);
            let nvars = 2 + rng.gen_range(3);
            let vars = &VAR_NAMES[..nvars];
            let mut body = random_atom(&mut rng, &schema, &rels, &consts, vars);
            for _ in 0..rng.gen_range(3) {
                body = body.and(random_atom(&mut rng, &schema, &rels, &consts, vars));
            }
            if rng.gen_range(2) == 0 {
                body = body.and(random_leaf(&mut rng, &schema, &rels, &consts, vars));
            }
            let mut f = body;
            for v in vars.iter().rev() {
                f = Formula::exists(*v, f);
            }
            let guided = holds_closed(&f, &inst).unwrap();
            let unguided = holds_unguided(&f, &inst, &Assignment::new()).unwrap();
            assert_eq!(
                guided, unguided,
                "diverged on {f:?} over {inst:?} (seed {seed})"
            );
        }
    }
}

#[test]
fn triple_collision_constraint_shape() {
    // The collision_pairs invariant verbatim: at most two X share a V.
    let mut schema = Schema::new();
    let e = schema.add_relation("E", 2).unwrap();
    let mut pool = ConstantPool::new();
    let a = pool.intern("a");
    let b = pool.intern("b");
    let c = pool.intern("c");
    let v = pool.intern("v");
    let f = Formula::forall(
        "X",
        Formula::forall(
            "Y",
            Formula::forall(
                "Z",
                Formula::forall(
                    "V",
                    Formula::Atom(e, vec![QTerm::var("X"), QTerm::var("V")])
                        .and(Formula::Atom(e, vec![QTerm::var("Y"), QTerm::var("V")]))
                        .and(Formula::Atom(e, vec![QTerm::var("Z"), QTerm::var("V")]))
                        .implies(
                            Formula::eq(QTerm::var("X"), QTerm::var("Y"))
                                .or(Formula::eq(QTerm::var("X"), QTerm::var("Z")))
                                .or(Formula::eq(QTerm::var("Y"), QTerm::var("Z"))),
                        ),
                ),
            ),
        ),
    );
    let pairs = Instance::from_facts([(e, Tuple::from([a, v])), (e, Tuple::from([b, v]))]);
    assert!(holds_closed(&f, &pairs).unwrap());
    assert!(holds_unguided(&f, &pairs, &Assignment::new()).unwrap());
    let triple = Instance::from_facts([
        (e, Tuple::from([a, v])),
        (e, Tuple::from([b, v])),
        (e, Tuple::from([c, v])),
    ]);
    assert!(!holds_closed(&f, &triple).unwrap());
    assert!(!holds_unguided(&f, &triple, &Assignment::new()).unwrap());
}

#[test]
fn inner_block_shadows_outer_binding() {
    // ∃X. P(X) ∧ (∃X,Y. Q(X,Y) ∧ X = 'c1'): the inner block's X must
    // rebind freely — the guard join may not pin it to the outer witness.
    let mut schema = Schema::new();
    let p = schema.add_relation("P", 1).unwrap();
    let q = schema.add_relation("Q", 2).unwrap();
    let mut pool = ConstantPool::new();
    let c0 = pool.intern("c0");
    let c1 = pool.intern("c1");
    let inst = Instance::from_facts([(p, Tuple::from([c0])), (q, Tuple::from([c1, c0]))]);
    let inner = Formula::exists(
        "X",
        Formula::exists(
            "Y",
            Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("Y")])
                .and(Formula::eq(QTerm::var("X"), QTerm::Const(c1))),
        ),
    );
    let f = Formula::exists("X", Formula::Atom(p, vec![QTerm::var("X")]).and(inner));
    // Outer X = c0 (the only P witness); inner X must still find Q(c1, _).
    assert!(holds_closed(&f, &inst).unwrap());
    assert!(holds_unguided(&f, &inst, &Assignment::new()).unwrap());
}
