//! Always-on differential test for the compiled query plans.
//!
//! The proptest suite (`eval_agreement.rs`) is feature-gated because the
//! `proptest` crate is not available in offline builds, so this file
//! carries the differential weight unconditionally: a deterministic
//! SplitMix64 generator produces random schemas, instances, and UCQs
//! (with equalities and parameter bindings), and every case is checked
//! four ways —
//!
//! 1. the reference active-domain evaluator (`answers`),
//! 2. the nested-loop join evaluator (`eval_ucq`),
//! 3. the compiled plan over relation scans,
//! 4. the compiled plan through a prebuilt [`InstanceIndex`] —
//!
//! all of which must return **bit-identical** `BTreeSet<Assignment>`s.

use dcds_folang::{answers, eval_ucq, Assignment, CompiledPlan, EvalCtx, QTerm, Var};
use dcds_folang::{ConjunctiveQuery, Ucq};
use dcds_reldata::{ConstantPool, Instance, InstanceIndex, RelId, Schema, Tuple, Value};
use std::collections::BTreeSet;

/// SplitMix64 (Steele, Lea & Flood) — same generator the bench crate
/// ships; duplicated here because dev-dependencies may not cross crates.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }
}

const ARITIES: [usize; 3] = [1, 2, 2];
const NUM_CONSTS: usize = 6;
const NUM_VARS: usize = 5;

struct Case {
    instance: Instance,
    ucq: Ucq,
    consts: Vec<Value>,
}

fn gen_case(rng: &mut SplitMix64) -> Case {
    let mut schema = Schema::new();
    let rels: Vec<RelId> = ARITIES
        .iter()
        .enumerate()
        .map(|(i, &a)| schema.add_relation(&format!("R{i}"), a).unwrap())
        .collect();
    let mut pool = ConstantPool::new();
    let consts: Vec<Value> = (0..NUM_CONSTS)
        .map(|i| pool.intern(&format!("c{i}")))
        .collect();
    let vars: Vec<Var> = (0..NUM_VARS).map(|i| Var::new(&format!("V{i}"))).collect();

    let mut instance = Instance::new();
    for _ in 0..rng.below(30) {
        let rel_ix = rng.below(rels.len());
        let tuple: Vec<Value> = (0..ARITIES[rel_ix])
            .map(|_| consts[rng.below(NUM_CONSTS)])
            .collect();
        instance.insert(rels[rel_ix], Tuple::from(tuple));
    }

    // Disjuncts with atoms over random vars/consts; equalities drawn from
    // the disjunct's own atom variables (and constants) so every generated
    // query stays inside the compilable range-restricted fragment.
    let num_disjuncts = 1 + rng.below(2);
    let mut raw: Vec<ConjunctiveQuery> = Vec::new();
    for _ in 0..num_disjuncts {
        let mut atoms: Vec<(RelId, Vec<QTerm>)> = Vec::new();
        for _ in 0..1 + rng.below(3) {
            let rel_ix = rng.below(rels.len());
            let terms: Vec<QTerm> = (0..ARITIES[rel_ix])
                .map(|_| {
                    if rng.chance(7, 10) {
                        QTerm::Var(vars[rng.below(NUM_VARS)].clone())
                    } else {
                        QTerm::Const(consts[rng.below(NUM_CONSTS)])
                    }
                })
                .collect();
            atoms.push((rels[rel_ix], terms));
        }
        let avars: Vec<Var> = atoms
            .iter()
            .flat_map(|(_, ts)| ts.iter().filter_map(|t| t.as_var().cloned()))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut equalities = Vec::new();
        if !avars.is_empty() {
            for _ in 0..rng.below(3) {
                let side = |rng: &mut SplitMix64, avars: &[Var], consts: &[Value]| {
                    if rng.chance(6, 10) {
                        QTerm::Var(avars[rng.below(avars.len())].clone())
                    } else {
                        QTerm::Const(consts[rng.below(consts.len())])
                    }
                };
                equalities.push((side(rng, &avars, &consts), side(rng, &avars, &consts)));
            }
        }
        raw.push(ConjunctiveQuery {
            head: avars,
            atoms,
            equalities,
        });
    }
    // Shared head: a random subset of the intersection of the disjuncts'
    // atom variables (UCQ disjuncts must answer over the same head).
    let shared: BTreeSet<Var> = raw
        .iter()
        .map(|cq| cq.head.iter().cloned().collect::<BTreeSet<_>>())
        .reduce(|a, b| a.intersection(&b).cloned().collect())
        .unwrap_or_default();
    let head: Vec<Var> = shared.into_iter().filter(|_| rng.chance(7, 10)).collect();
    let disjuncts = raw
        .into_iter()
        .map(|mut cq| {
            cq.head = head.clone();
            cq
        })
        .collect();
    Case {
        instance,
        ucq: Ucq { disjuncts },
        consts,
    }
}

/// The four evaluators agree bit-for-bit on random parameterless UCQs.
#[test]
fn four_way_agreement_on_random_ucqs() {
    let mut rng = SplitMix64(0xdcd5);
    let mut nonempty = 0usize;
    for case_ix in 0..400 {
        let case = gen_case(&mut rng);
        let reference = answers(&case.ucq.to_formula(), &case.instance);
        let nested = eval_ucq(&case.ucq, &case.instance);
        assert_eq!(nested, reference, "case {case_ix}: eval_ucq vs answers");

        let plan = CompiledPlan::compile(&case.ucq, &BTreeSet::new())
            .unwrap_or_else(|e| panic!("case {case_ix}: expected compilable query: {e}"));
        let scanned = plan.eval(&EvalCtx::scan(&case.instance), &Assignment::new());
        assert_eq!(scanned, reference, "case {case_ix}: plan scan diverged");

        let index = InstanceIndex::build(&case.instance, plan.access_paths());
        let indexed = plan.eval(
            &EvalCtx::with_index(&case.instance, &index),
            &Assignment::new(),
        );
        assert_eq!(indexed, reference, "case {case_ix}: plan+index diverged");
        if !reference.is_empty() {
            nonempty += 1;
        }
    }
    // The generator must not silently degenerate into all-empty answers.
    assert!(nonempty > 40, "only {nonempty}/400 cases had answers");
}

/// Parameterised plans agree with filtering the unparameterised answers:
/// `plan(params = P, seed σ)` must equal `{ρ \ P : ρ ∈ eval_ucq, ρ ⊇ σ}`.
#[test]
fn parameterised_plans_agree_with_filtered_answers() {
    let mut rng = SplitMix64(0xbeef);
    let mut checked = 0usize;
    for case_ix in 0..400 {
        let case = gen_case(&mut rng);
        if case.ucq.disjuncts[0].head.is_empty() {
            continue;
        }
        let head = case.ucq.disjuncts[0].head.clone();
        let params: BTreeSet<Var> = head.iter().filter(|_| rng.chance(1, 2)).cloned().collect();
        if params.is_empty() {
            continue;
        }
        let seed: Assignment = params
            .iter()
            .map(|p| (p.clone(), case.consts[rng.below(case.consts.len())]))
            .collect();
        let plan = match CompiledPlan::compile(&case.ucq, &params) {
            Ok(p) => p,
            Err(e) => panic!("case {case_ix}: expected compilable query: {e}"),
        };
        let full = eval_ucq(&case.ucq, &case.instance);
        let expected: BTreeSet<Assignment> = full
            .into_iter()
            .filter(|row| params.iter().all(|p| row.get(p) == seed.get(p)))
            .map(|row| {
                row.into_iter()
                    .filter(|(v, _)| !params.contains(v))
                    .collect()
            })
            .collect();
        let index = InstanceIndex::build(&case.instance, plan.access_paths());
        for ctx in [
            EvalCtx::scan(&case.instance),
            EvalCtx::with_index(&case.instance, &index),
        ] {
            let got = plan.eval(&ctx, &seed);
            assert_eq!(got, expected, "case {case_ix}: params {params:?}");
            assert_eq!(
                plan.holds(&ctx, &seed),
                !expected.is_empty(),
                "case {case_ix}: holds() disagrees with eval()"
            );
        }
        checked += 1;
    }
    assert!(checked > 100, "only {checked}/400 cases exercised params");
}

/// Evaluation is deterministic and index-independent: repeated runs, with
/// and without the index, return the same `BTreeSet` (the engines rely on
/// this for thread-count-independent output).
#[test]
fn index_on_off_determinism() {
    let mut rng = SplitMix64(0x5eed);
    for _ in 0..100 {
        let case = gen_case(&mut rng);
        let plan = CompiledPlan::compile(&case.ucq, &BTreeSet::new()).unwrap();
        let index = InstanceIndex::build(&case.instance, plan.access_paths());
        let baseline = plan.eval(&EvalCtx::scan(&case.instance), &Assignment::new());
        for _ in 0..3 {
            assert_eq!(
                plan.eval(&EvalCtx::scan(&case.instance), &Assignment::new()),
                baseline
            );
            assert_eq!(
                plan.eval(
                    &EvalCtx::with_index(&case.instance, &index),
                    &Assignment::new()
                ),
                baseline
            );
        }
    }
}
