//! Property test: the join-based UCQ evaluator agrees with the reference
//! active-domain evaluator on random conjunctive queries and instances.

// Property tests require the external `proptest` crate, which the offline
// build environment cannot fetch; see the crate manifest for how to enable.
#![cfg(feature = "proptest")]

use dcds_folang::ast::{QTerm, Var};
use dcds_folang::ucq::{ConjunctiveQuery, Ucq};
use dcds_folang::{answers, eval_ucq, Assignment, CompiledPlan, EvalCtx};
use dcds_reldata::{ConstantPool, Instance, InstanceIndex, RelId, Schema, Tuple};
use proptest::prelude::*;
use std::collections::BTreeSet;

const NUM_CONSTS: usize = 4;
const NUM_VARS: usize = 4;

#[derive(Debug, Clone)]
struct Setup {
    schema: Schema,
    instance: Instance,
    ucq: Ucq,
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    // Relations: R0/1, R1/2, R2/2.
    let arities = [1usize, 2, 2];
    let fact = (0usize..3, prop::collection::vec(0usize..NUM_CONSTS, 2));
    let atom_term = prop_oneof![
        (0usize..NUM_VARS).prop_map(Ok::<usize, usize>),
        (0usize..NUM_CONSTS).prop_map(Err::<usize, usize>),
    ];
    let atom = (0usize..3, prop::collection::vec(atom_term, 2));
    let cq = (
        prop::collection::vec(atom, 1..4),
        prop::collection::vec(0usize..NUM_VARS, 0..3),
    );
    (
        prop::collection::vec(fact, 0..10),
        prop::collection::vec(cq, 1..3),
    )
        .prop_map(move |(facts, cqs)| {
            let mut schema = Schema::new();
            let rels: Vec<RelId> = arities
                .iter()
                .enumerate()
                .map(|(i, &a)| schema.add_relation(&format!("R{i}"), a).unwrap())
                .collect();
            let mut pool = ConstantPool::new();
            let consts: Vec<_> = (0..NUM_CONSTS)
                .map(|i| pool.intern(&format!("c{i}")))
                .collect();
            let vars: Vec<Var> = (0..NUM_VARS).map(|i| Var::new(&format!("V{i}"))).collect();
            let mut instance = Instance::new();
            for (rel_ix, comps) in facts {
                let arity = arities[rel_ix];
                let t: Vec<_> = comps[..arity].iter().map(|&c| consts[c]).collect();
                instance.insert(rels[rel_ix], Tuple::from(t));
            }
            let disjuncts: Vec<ConjunctiveQuery> = cqs
                .into_iter()
                .map(|(atoms, head_ixs)| {
                    let atoms: Vec<(RelId, Vec<QTerm>)> = atoms
                        .into_iter()
                        .map(|(rel_ix, terms)| {
                            let arity = arities[rel_ix];
                            let terms: Vec<QTerm> = terms[..arity]
                                .iter()
                                .map(|t| match t {
                                    Ok(v) => QTerm::Var(vars[*v].clone()),
                                    Err(c) => QTerm::Const(consts[*c]),
                                })
                                .collect();
                            (rels[rel_ix], terms)
                        })
                        .collect();
                    // Head: requested vars that actually occur in the atoms.
                    let avars: BTreeSet<Var> = atoms
                        .iter()
                        .flat_map(|(_, ts)| ts.iter().filter_map(|t| t.as_var().cloned()))
                        .collect();
                    let mut head: Vec<Var> = head_ixs
                        .into_iter()
                        .map(|i| vars[i].clone())
                        .filter(|v| avars.contains(v))
                        .collect();
                    head.sort();
                    head.dedup();
                    ConjunctiveQuery {
                        head,
                        atoms,
                        equalities: vec![],
                    }
                })
                .collect();
            // Force all disjuncts to share the head of the first one by
            // intersecting heads.
            let shared: Vec<Var> = disjuncts
                .iter()
                .map(|cq| cq.head.iter().cloned().collect::<BTreeSet<_>>())
                .reduce(|a, b| a.intersection(&b).cloned().collect())
                .unwrap_or_default()
                .into_iter()
                .collect();
            let disjuncts = disjuncts
                .into_iter()
                .map(|mut cq| {
                    cq.head = shared.clone();
                    cq
                })
                .collect();
            Setup {
                schema,
                instance,
                ucq: Ucq { disjuncts },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn join_evaluator_agrees_with_reference(setup in arb_setup()) {
        prop_assume!(setup.ucq.validate(&setup.schema).is_ok());
        let via_join = eval_ucq(&setup.ucq, &setup.instance);
        let formula = setup.ucq.to_formula();
        let via_reference = answers(&formula, &setup.instance);
        prop_assert_eq!(via_join, via_reference);
    }

    #[test]
    fn guided_and_unguided_evaluation_agree(setup in arb_setup()) {
        // The UCQ formulas are existential blocks over atoms — exactly the
        // shape the guided path optimises; closed via boolean check on the
        // existential closure.
        let formula = setup.ucq.to_formula();
        let mut closed = formula.clone();
        for v in formula.free_vars() {
            closed = dcds_folang::Formula::Exists(v, Box::new(closed));
        }
        let guided = dcds_folang::holds_closed(&closed, &setup.instance).unwrap();
        let unguided = dcds_folang::holds_unguided(
            &closed,
            &setup.instance,
            &dcds_folang::Assignment::new(),
        )
        .unwrap();
        prop_assert_eq!(guided, unguided);
    }

    /// Three-way differential: the compiled plan (with and without a
    /// relation index) agrees with both the nested-loop join evaluator and
    /// the reference active-domain evaluator, including on queries with
    /// variable equalities. Equality sides are drawn from each disjunct's
    /// own atom variables so the query stays range-restricted (i.e.
    /// compilable); non-compilable shapes are covered by the fallback
    /// tests in `plan_differential.rs` and the unit tests in `plan.rs`.
    #[test]
    fn compiled_plan_agrees_with_both_evaluators(
        setup in arb_setup(),
        eq_ixs in prop::collection::vec((0usize..8, 0usize..8), 0..3),
    ) {
        let mut ucq = setup.ucq.clone();
        for cq in &mut ucq.disjuncts {
            let avars: Vec<Var> = cq
                .atoms
                .iter()
                .flat_map(|(_, ts)| ts.iter().filter_map(|t| t.as_var().cloned()))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            if avars.is_empty() {
                continue;
            }
            for &(a, b) in &eq_ixs {
                cq.equalities.push((
                    QTerm::Var(avars[a % avars.len()].clone()),
                    QTerm::Var(avars[b % avars.len()].clone()),
                ));
            }
        }
        let reference = answers(&ucq.to_formula(), &setup.instance);
        let nested = eval_ucq(&ucq, &setup.instance);
        prop_assert_eq!(&nested, &reference);

        let plan = CompiledPlan::compile(&ucq, &BTreeSet::new()).expect("range-restricted UCQs compile");
        let scanned = plan.eval(&EvalCtx::scan(&setup.instance), &Assignment::new());
        prop_assert_eq!(&scanned, &reference);

        let index = InstanceIndex::build(&setup.instance, plan.access_paths());
        let indexed = plan.eval(&EvalCtx::with_index(&setup.instance, &index), &Assignment::new());
        prop_assert_eq!(&indexed, &reference);
    }
}
