//! Equality constraints and FO integrity constraints.
//!
//! The data layer of a DCDS carries a finite set of *equality constraints*
//! (Section 2.1): each has the form
//!
//! ```text
//!     Q_i  ->  /\_{j} z_ij = y_ij
//! ```
//!
//! where `Q_i` is a domain-independent FO query with free variables `~x`, and
//! each `z_ij`, `y_ij` is a variable of `~x` or a constant of `ADOM(I_0)`.
//! An instance satisfies the constraint when every answer θ of `Q_i`
//! satisfies all the equalities. Keys (the `right`/`succ` tricks of Theorems
//! 4.1 and 6.2) and the Section-6 encoding of arbitrary FO integrity
//! constraints are expressed this way.

use crate::ast::{Formula, QTerm};
use crate::eval::{answers, holds_closed};
use crate::QueryError;
use dcds_reldata::{Instance, RelId, Schema, Value};

/// An equality constraint `Q -> /\ z_j = y_j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqualityConstraint {
    /// The premise query; its free variables scope the equalities.
    pub query: Formula,
    /// Conjunction of required equalities over the query's free variables
    /// and constants.
    pub equalities: Vec<(QTerm, QTerm)>,
}

impl EqualityConstraint {
    /// Build a constraint, checking the equality terms only use free
    /// variables of the premise (or constants).
    pub fn new(query: Formula, equalities: Vec<(QTerm, QTerm)>) -> Result<Self, QueryError> {
        let free = query.free_vars();
        for (t1, t2) in &equalities {
            for t in [t1, t2] {
                if let QTerm::Var(v) = t {
                    if !free.contains(v) {
                        return Err(QueryError::UnboundVariable(v.name().to_owned()));
                    }
                }
            }
        }
        Ok(EqualityConstraint { query, equalities })
    }

    /// A *key constraint* on relation `rel`: the positions in `key` determine
    /// the rest. E.g. the paper's "second component of `right` is a key"
    /// (proof of Theorem 4.1) is `key = [1]` over `right/2`.
    pub fn key(schema: &Schema, rel: RelId, key: &[usize]) -> Self {
        let arity = schema.arity(rel);
        let xs: Vec<QTerm> = (0..arity).map(|i| QTerm::var(&format!("X{i}"))).collect();
        let ys: Vec<QTerm> = (0..arity)
            .map(|i| {
                if key.contains(&i) {
                    xs[i].clone()
                } else {
                    QTerm::var(&format!("Y{i}"))
                }
            })
            .collect();
        let query = Formula::Atom(rel, xs.clone()).and(Formula::Atom(rel, ys.clone()));
        let equalities = (0..arity)
            .filter(|i| !key.contains(i))
            .map(|i| (xs[i].clone(), ys[i].clone()))
            .collect();
        EqualityConstraint { query, equalities }
    }

    /// Does the instance satisfy the constraint? For each answer θ of the
    /// premise, every equality must hold under θ.
    pub fn satisfied(&self, inst: &Instance) -> bool {
        for theta in answers(&self.query, inst) {
            for (t1, t2) in &self.equalities {
                let v1 = resolve(t1, &theta);
                let v2 = resolve(t2, &theta);
                if v1 != v2 {
                    return false;
                }
            }
        }
        true
    }
}

fn resolve(t: &QTerm, theta: &crate::ast::Assignment) -> Option<Value> {
    match t {
        QTerm::Const(c) => Some(*c),
        QTerm::Var(v) => theta.get(v).copied(),
    }
}

/// An arbitrary FO sentence used as an integrity constraint under the
/// active-domain semantics (Section 6, "Support for arbitrary integrity
/// constraints"). The paper shows these reduce to equality constraints; we
/// also support them natively, and `dcds-reductions::fo_constraints`
/// implements the paper's reduction for cross-validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoConstraint {
    /// The closed formula that must hold in every state.
    pub sentence: Formula,
}

impl FoConstraint {
    /// Build from a closed formula.
    pub fn new(sentence: Formula) -> Result<Self, QueryError> {
        if let Some(v) = sentence.free_vars().into_iter().next() {
            return Err(QueryError::UnboundVariable(v.name().to_owned()));
        }
        Ok(FoConstraint { sentence })
    }

    /// Does the instance satisfy the sentence?
    pub fn satisfied(&self, inst: &Instance) -> bool {
        holds_closed(&self.sentence, inst).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use dcds_reldata::{ConstantPool, Schema, Tuple};

    #[test]
    fn example_4_2_constraint() {
        // E = { P(x) ∧ Q(y,z) → x = y } from Example 4.2.
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 2).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let premise = parse_formula("P(X) & Q(Y, Z)", &mut schema, &mut pool).unwrap();
        let ec =
            EqualityConstraint::new(premise, vec![(QTerm::var("X"), QTerm::var("Y"))]).unwrap();
        // {P(a), Q(a,a)} satisfies; {P(a), Q(b,a)} does not.
        let ok = Instance::from_facts([(p, Tuple::from([a])), (q, Tuple::from([a, a]))]);
        assert!(ec.satisfied(&ok));
        let bad = Instance::from_facts([(p, Tuple::from([a])), (q, Tuple::from([b, a]))]);
        assert!(!ec.satisfied(&bad));
    }

    #[test]
    fn vacuous_premise_is_satisfied() {
        let mut schema = Schema::new();
        let _p = schema.add_relation("P", 1).unwrap();
        schema.add_relation("Q", 2).unwrap();
        let mut pool = ConstantPool::new();
        let premise = parse_formula("P(X) & Q(X, Y)", &mut schema, &mut pool).unwrap();
        let ec =
            EqualityConstraint::new(premise, vec![(QTerm::var("X"), QTerm::var("Y"))]).unwrap();
        assert!(ec.satisfied(&Instance::new()));
    }

    #[test]
    fn equality_terms_must_use_premise_vars() {
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let premise = parse_formula("P(X)", &mut schema, &mut pool).unwrap();
        assert!(
            EqualityConstraint::new(premise, vec![(QTerm::var("Z"), QTerm::var("X"))]).is_err()
        );
    }

    #[test]
    fn key_constraint_detects_violations() {
        let mut schema = Schema::new();
        let right = schema.add_relation("right", 2).unwrap();
        let mut pool = ConstantPool::new();
        let c0 = pool.intern("0");
        let c1 = pool.intern("1");
        let c2 = pool.intern("2");
        // Second component is a key (as in the Theorem 4.1 reduction).
        let ec = EqualityConstraint::key(&schema, right, &[1]);
        let ok = Instance::from_facts([
            (right, Tuple::from([c0, c1])),
            (right, Tuple::from([c1, c2])),
        ]);
        assert!(ec.satisfied(&ok));
        // Two predecessors for c2: violation.
        let bad = Instance::from_facts([
            (right, Tuple::from([c0, c2])),
            (right, Tuple::from([c1, c2])),
        ]);
        assert!(!ec.satisfied(&bad));
    }

    #[test]
    fn fo_constraint_closed_only() {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let open = parse_formula("P(X)", &mut schema, &mut pool).unwrap();
        assert!(FoConstraint::new(open).is_err());
        let closed = parse_formula("forall X . P(X) -> P(X)", &mut schema, &mut pool).unwrap();
        let ic = FoConstraint::new(closed).unwrap();
        let a = pool.intern("a");
        let inst = Instance::from_facts([(p, Tuple::from([a]))]);
        assert!(ic.satisfied(&inst));
    }
}
