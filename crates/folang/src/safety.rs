//! Safe-range (range-restriction) analysis.
//!
//! The paper requires equality-constraint queries to be *domain independent*
//! (Section 2.1). Domain independence is undecidable for full FO, so — as is
//! classical — we implement the *safe-range* syntactic criterion (Abiteboul,
//! Hull, Vianu, "Foundations of Databases", ch. 5): a formula is safe-range
//! when every free and quantified variable is *range restricted*, i.e.
//! grounded by a positive relational atom (or an equality chain to one or to
//! a constant).
//!
//! Our evaluators use the active-domain semantics and are total regardless;
//! this module is a lint used when *constructing* DCDS data layers so that
//! specifications stay within the paper's assumptions.

use crate::ast::{Formula, QTerm, Var};
use std::collections::BTreeSet;

/// Why a formula failed the safe-range check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyError {
    /// The variable that is not range restricted.
    pub variable: String,
}

impl std::fmt::Display for SafetyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variable {} is not range restricted", self.variable)
    }
}

impl std::error::Error for SafetyError {}

/// Check whether the formula is safe-range. Returns the first offending
/// variable on failure.
pub fn is_safe_range(f: &Formula) -> Result<(), SafetyError> {
    check(f).map(|_| ())
}

/// Compute the range-restricted variables of `f`, erroring when a quantified
/// variable is not restricted in its scope.
///
/// This is the standard `rr` computation on (a light form of) safe-range
/// normal form. `rr(f)` is the set of free variables guaranteed to be bound
/// to the active domain by the structure of `f`.
fn check(f: &Formula) -> Result<BTreeSet<Var>, SafetyError> {
    match f {
        Formula::True | Formula::False => Ok(BTreeSet::new()),
        Formula::Atom(_, terms) => Ok(terms.iter().filter_map(|t| t.as_var().cloned()).collect()),
        Formula::Eq(t1, t2) => {
            // x = c restricts x; x = y restricts neither on its own.
            match (t1, t2) {
                (QTerm::Var(v), QTerm::Const(_)) | (QTerm::Const(_), QTerm::Var(v)) => {
                    Ok([v.clone()].into_iter().collect())
                }
                _ => Ok(BTreeSet::new()),
            }
        }
        Formula::Not(inner) => {
            // Negation restricts nothing, but its body must still be checked
            // for quantifier safety.
            check(inner)?;
            Ok(BTreeSet::new())
        }
        Formula::And(g, h) => {
            let rg = check(g)?;
            let rh = check(h)?;
            let mut out: BTreeSet<Var> = rg.union(&rh).cloned().collect();
            // Equality propagation: x = y with one side restricted restricts
            // the other. One propagation round per conjunction level.
            propagate_equalities(f, &mut out);
            Ok(out)
        }
        Formula::Or(g, h) => {
            let rg = check(g)?;
            let rh = check(h)?;
            Ok(rg.intersection(&rh).cloned().collect())
        }
        Formula::Implies(g, h) => {
            // g -> h ≡ !g | h: restricts nothing (but check subformulas).
            check(g)?;
            check(h)?;
            Ok(BTreeSet::new())
        }
        Formula::Exists(v, body) | Formula::Forall(v, body) => {
            let rb = check(body)?;
            // For exists, the bound variable must be restricted in the body.
            // For forall x. φ ≡ !exists x. !φ — the classical criterion
            // requires x restricted in ¬φ's context; we accept the common
            // idiom `forall x. ψ -> χ` where ψ restricts x.
            let restricted_in_body = rb.contains(v) || restricted_by_guard(body, v);
            if !restricted_in_body {
                return Err(SafetyError {
                    variable: v.name().to_owned(),
                });
            }
            let mut out = rb;
            out.remove(v);
            Ok(out)
        }
    }
}

/// `forall X . guard -> body` (or `exists X. guard & ...` handled by `check`)
/// counts as restricting X when the guard restricts it positively.
fn restricted_by_guard(body: &Formula, v: &Var) -> bool {
    match body {
        Formula::Implies(g, _) => check(g).map(|r| r.contains(v)).unwrap_or(false),
        _ => false,
    }
}

/// Collect top-level conjunct equalities and propagate restriction across
/// them to a fixpoint.
fn propagate_equalities(f: &Formula, restricted: &mut BTreeSet<Var>) {
    let mut eqs: Vec<(&Var, &Var)> = Vec::new();
    collect_conjunct_eqs(f, &mut eqs);
    let mut changed = true;
    while changed {
        changed = false;
        for (a, b) in &eqs {
            if restricted.contains(*a) && !restricted.contains(*b) {
                restricted.insert((*b).clone());
                changed = true;
            }
            if restricted.contains(*b) && !restricted.contains(*a) {
                restricted.insert((*a).clone());
                changed = true;
            }
        }
    }
}

fn collect_conjunct_eqs<'a>(f: &'a Formula, out: &mut Vec<(&'a Var, &'a Var)>) {
    match f {
        Formula::And(g, h) => {
            collect_conjunct_eqs(g, out);
            collect_conjunct_eqs(h, out);
        }
        Formula::Eq(QTerm::Var(a), QTerm::Var(b)) => out.push((a, b)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use dcds_reldata::{ConstantPool, Schema};

    fn f(src: &str) -> Formula {
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        schema.add_relation("Q", 2).unwrap();
        let mut pool = ConstantPool::new();
        parse_formula(src, &mut schema, &mut pool).unwrap()
    }

    #[test]
    fn atoms_are_safe() {
        assert!(is_safe_range(&f("P(X)")).is_ok());
        assert!(is_safe_range(&f("Q(X, Y) & P(X)")).is_ok());
    }

    #[test]
    fn pure_negation_of_free_var_is_unsafe_when_quantified() {
        // exists X. !P(X) — X ranges over the complement: not safe-range.
        assert!(is_safe_range(&f("exists X . !P(X)")).is_err());
    }

    #[test]
    fn guarded_negation_is_safe() {
        assert!(is_safe_range(&f("exists X . P(X) & !Q(X, X)")).is_ok());
    }

    #[test]
    fn equality_to_constant_restricts() {
        assert!(is_safe_range(&f("exists X . X = a")).is_ok());
        assert!(is_safe_range(&f("exists X . X = Y")).is_err());
    }

    #[test]
    fn equality_propagation_within_conjunction() {
        assert!(is_safe_range(&f("exists X, Y . P(X) & X = Y")).is_ok());
    }

    #[test]
    fn disjunction_requires_both_branches() {
        assert!(is_safe_range(&f("exists X . P(X) | Q(X, X)")).is_ok());
        assert!(is_safe_range(&f("exists X . P(X) | X = X")).is_err());
    }

    #[test]
    fn guarded_forall_is_safe() {
        assert!(is_safe_range(&f("forall X . P(X) -> Q(X, X)")).is_ok());
        assert!(is_safe_range(&f("forall X . Q(X, X)")).is_ok());
        assert!(is_safe_range(&f("forall X . X = X")).is_err());
    }
}
