//! Recursive-descent parser for first-order formulas.
//!
//! Surface syntax (datalog-flavoured):
//!
//! ```text
//! formula := iff
//! iff     := impl ( "<->" impl )*
//! impl    := or ( "->" impl )?              // right associative
//! or      := and ( ("|" | "or") and )*
//! and     := unary ( ("&" | "and") unary )*
//! unary   := ("!" | "not") unary
//!          | ("exists" | "forall") Var ("," Var)* "." unary
//!          | primary
//! primary := "(" formula ")" | "true" | "false"
//!          | Rel "(" term ("," term)* ")" | Rel      // nullary atom
//!          | term ("=" | "!=") term
//! term    := UppercaseIdent        // variable
//!          | lowercaseIdent        // constant
//!          | 'quoted ident'        // constant
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` denote variables;
//! all other identifiers and quoted strings denote constants. Relation names
//! are recognised positionally (an identifier immediately followed by `(`,
//! or a bare identifier naming a known relation is a nullary atom).

use crate::ast::{Formula, QTerm, Var};
use crate::lexer::{tokenize, Span, Token, TokenKind};
use dcds_reldata::{ConstantPool, RelId, Schema};
use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Resolves relation and constant names during parsing.
pub struct Resolver<'a> {
    /// Schema to resolve relation names against.
    pub schema: &'a mut Schema,
    /// Pool interning constants.
    pub pool: &'a mut ConstantPool,
    /// If true, unknown relations are added to the schema with the observed
    /// arity; if false, unknown relations are a parse error.
    pub extend_schema: bool,
}

impl Resolver<'_> {
    fn relation(&mut self, name: &str, arity: usize) -> Result<RelId, String> {
        if self.extend_schema {
            self.schema
                .add_or_get(name, arity)
                .map_err(|e| e.to_string())
        } else {
            let id = self
                .schema
                .rel_id(name)
                .ok_or_else(|| format!("unknown relation {name}"))?;
            if self.schema.arity(id) != arity {
                return Err(format!(
                    "relation {name} has arity {}, atom has {arity} arguments",
                    self.schema.arity(id)
                ));
            }
            Ok(id)
        }
    }
}

/// One syntactic occurrence of a relation atom, recorded when the parser
/// runs in tolerant mode (see [`Parser::record_atom_uses`]). Lint passes
/// re-check every use against the declared schema and point diagnostics at
/// `span`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelUse {
    /// The relation name as written.
    pub name: String,
    /// The number of argument terms at this use site.
    pub arity: usize,
    /// The relation id the atom resolved to (a scratch relation named
    /// `name/arity` when the use did not match a declared relation).
    pub rel: RelId,
    /// Where the atom's name appears in the source.
    pub span: Span,
}

/// Is this identifier a variable (uppercase or `_` start)?
pub fn is_variable_name(name: &str) -> bool {
    name.chars()
        .next()
        .is_some_and(|c| c.is_ascii_uppercase() || c == '_')
}

/// Maximum recursion depth the recursive-descent parsers accept. Deeply
/// nested input (`((((…`, `!!!!…`, long `->` chains) otherwise overflows
/// the stack and aborts the process instead of reporting a parse error.
/// The bound is far above any formula a human or generator writes, and far
/// below what overflows even a 2 MiB test-thread stack.
pub const MAX_PARSE_DEPTH: usize = 256;

/// Token-stream cursor shared by the formula parser and the downstream
/// µ-calculus / DCDS-spec parsers.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
    /// When `Some`, atom resolution is *tolerant*: uses that do not match a
    /// declared relation resolve to a scratch relation instead of erroring,
    /// and every use is recorded here for later re-checking.
    uses: Option<Vec<RelUse>>,
}

impl Parser {
    /// Build a parser over a source string.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
            depth: 0,
            uses: None,
        })
    }

    /// Switch atom resolution to tolerant mode: unknown relations and arity
    /// mismatches no longer abort the parse; instead each atom resolves to a
    /// scratch relation (internally named `name/arity` — `/` cannot appear
    /// in an identifier, so scratch names never collide with declared ones)
    /// and is recorded as a [`RelUse`]. Drain the record per formula with
    /// [`Parser::take_atom_uses`].
    pub fn record_atom_uses(&mut self) {
        self.uses = Some(Vec::new());
    }

    /// Take the atom uses recorded since the last call (empty when not in
    /// tolerant mode).
    pub fn take_atom_uses(&mut self) -> Vec<RelUse> {
        match &mut self.uses {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// The source position of the current token.
    pub fn peek_span(&self) -> Span {
        Span::of(self.peek())
    }

    /// Resolve an atom of `name` with `arity` arguments: strictly via the
    /// resolver by default, tolerantly (recording the use) after
    /// [`Parser::record_atom_uses`].
    fn resolve_atom(
        &mut self,
        name: &str,
        arity: usize,
        span: Span,
        r: &mut Resolver<'_>,
    ) -> Result<RelId, ParseError> {
        let rel = if self.uses.is_some() {
            match r.schema.rel_id(name) {
                Some(id) if r.schema.arity(id) == arity => id,
                _ => r
                    .schema
                    .add_or_get(&format!("{name}/{arity}"), arity)
                    .expect("scratch relation names are unique per arity"),
            }
        } else {
            r.relation(name, arity).map_err(|m| ParseError {
                message: m,
                line: span.line,
                col: span.col,
            })?
        };
        if let Some(uses) = &mut self.uses {
            uses.push(RelUse {
                name: name.to_owned(),
                arity,
                rel,
                span,
            });
        }
        Ok(rel)
    }

    /// Enter one level of grammar recursion; errors past
    /// [`MAX_PARSE_DEPTH`]. Every caller must pair it with [`ascend`]
    /// (also on the error path — the µ-calculus parser shares this cursor,
    /// so a leaked level would shrink the budget of sibling branches).
    ///
    /// [`ascend`]: Parser::ascend
    pub fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(self.error(&format!(
                "formula nesting deeper than {MAX_PARSE_DEPTH} levels"
            )))
        } else {
            Ok(())
        }
    }

    /// Leave one level of grammar recursion.
    pub fn ascend(&mut self) {
        self.depth -= 1;
    }

    /// The current token.
    pub fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    /// The current token kind.
    pub fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    /// Look ahead `n` tokens (0 = current).
    pub fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    /// Advance and return the consumed token.
    pub fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Consume a specific token kind or error.
    pub fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == kind {
            Ok(self.advance())
        } else {
            Err(self.error(&format!("expected {kind}, found {}", self.peek_kind())))
        }
    }

    /// Consume the token if it matches; report whether it did.
    pub fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consume an identifier equal to `kw` (case-sensitive keyword).
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek_kind() {
            if s == kw {
                self.advance();
                return true;
            }
        }
        false
    }

    /// Is the current token the identifier `kw`?
    pub fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == kw)
    }

    /// Consume any identifier.
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error(&format!("expected identifier, found {other}"))),
        }
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    /// Build a parse error at the current position.
    pub fn error(&self, message: &str) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.to_owned(),
            line: t.line,
            col: t.col,
        }
    }

    // ----- formula grammar -----

    /// Parse a full formula (must consume all input unless `partial`).
    pub fn parse_formula_all(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        let f = self.parse_formula(r)?;
        if !self.at_eof() {
            return Err(self.error(&format!("unexpected {}", self.peek_kind())));
        }
        Ok(f)
    }

    /// Parse a formula, stopping at the first token that cannot continue it.
    pub fn parse_formula(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        self.parse_iff(r)
    }

    fn parse_iff(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_impl(r)?;
        while self.eat(&TokenKind::Equiv) {
            let rhs = self.parse_impl(r)?;
            lhs = lhs.clone().implies(rhs.clone()).and(rhs.implies(lhs));
        }
        Ok(lhs)
    }

    fn parse_impl(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        // `->` is right-recursive: guard the depth so `a -> a -> …` chains
        // error out instead of overflowing the stack.
        self.descend()?;
        let out = self.parse_impl_inner(r);
        self.ascend();
        out
    }

    fn parse_impl_inner(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        let lhs = self.parse_or(r)?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.parse_impl(r)?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_and(r)?;
        while self.eat(&TokenKind::Pipe) || self.eat_keyword("or") {
            let rhs = self.parse_and(r)?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_unary(r)?;
        while self.eat(&TokenKind::Amp) || self.eat_keyword("and") {
            let rhs = self.parse_unary(r)?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        // Every grammar cycle (`(…)`, `!…`, quantifier bodies) passes
        // through here: one guard bounds them all.
        self.descend()?;
        let out = self.parse_unary_inner(r);
        self.ascend();
        out
    }

    fn parse_unary_inner(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        if self.eat(&TokenKind::Bang) || self.eat_keyword("not") {
            return Ok(self.parse_unary(r)?.not());
        }
        if self.at_keyword("exists") || self.at_keyword("forall") {
            let is_exists = self.at_keyword("exists");
            self.advance();
            let vars = self.parse_var_list()?;
            self.expect(&TokenKind::Dot)?;
            // Quantifier bodies extend as far to the right as possible.
            let mut body = self.parse_formula(r)?;
            for v in vars.into_iter().rev() {
                body = if is_exists {
                    Formula::Exists(v, Box::new(body))
                } else {
                    Formula::Forall(v, Box::new(body))
                };
            }
            return Ok(body);
        }
        self.parse_primary(r)
    }

    /// Parse a comma-separated list of variable names (uppercase idents).
    pub fn parse_var_list(&mut self) -> Result<Vec<Var>, ParseError> {
        let mut vars = Vec::new();
        loop {
            let name = self.expect_ident()?;
            if !is_variable_name(&name) {
                return Err(self.error(&format!(
                    "quantified name `{name}` must start with an uppercase letter or `_`"
                )));
            }
            vars.push(Var::new(&name));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(vars)
    }

    fn parse_primary(&mut self, r: &mut Resolver<'_>) -> Result<Formula, ParseError> {
        if self.eat(&TokenKind::LParen) {
            let f = self.parse_formula(r)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(f);
        }
        if self.eat_keyword("true") {
            return Ok(Formula::True);
        }
        if self.eat_keyword("false") {
            return Ok(Formula::False);
        }
        // Atom `R(...)`, nullary atom `R`, or comparison `term (=|!=) term`.
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                if matches!(self.peek_ahead(1), TokenKind::LParen) {
                    self.advance();
                    return self.parse_atom_at(&name, span, r);
                }
                // A bare identifier is a nullary atom when it names a known
                // nullary relation and is not the lhs of a comparison;
                // otherwise it is a term. (New nullary relations must be
                // introduced as `R()`.)
                let followed_by_cmp = matches!(self.peek_ahead(1), TokenKind::Eq | TokenKind::Neq);
                let known_nullary = r
                    .schema
                    .rel_id(&name)
                    .is_some_and(|id| r.schema.arity(id) == 0);
                if known_nullary && !followed_by_cmp {
                    self.advance();
                    let rel = self.resolve_atom(&name, 0, span, r)?;
                    return Ok(Formula::Atom(rel, Vec::new()));
                }
                let t1 = self.parse_term(r)?;
                self.finish_comparison(t1, r)
            }
            TokenKind::Quoted(_) => {
                let t1 = self.parse_term(r)?;
                self.finish_comparison(t1, r)
            }
            other => Err(self.error(&format!("expected formula, found {other}"))),
        }
    }

    fn finish_comparison(
        &mut self,
        t1: QTerm,
        r: &mut Resolver<'_>,
    ) -> Result<Formula, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Eq => {
                self.advance();
                let t2 = self.parse_term(r)?;
                Ok(Formula::Eq(t1, t2))
            }
            TokenKind::Neq => {
                self.advance();
                let t2 = self.parse_term(r)?;
                Ok(Formula::neq(t1, t2))
            }
            other => Err(self.error(&format!("expected `=` or `!=`, found {other}"))),
        }
    }

    /// Parse an atom given that `name` was consumed and `(` is next.
    pub fn parse_atom_tail(
        &mut self,
        name: &str,
        r: &mut Resolver<'_>,
    ) -> Result<Formula, ParseError> {
        let span = self.peek_span();
        self.parse_atom_at(name, span, r)
    }

    /// Like [`Parser::parse_atom_tail`] but with the atom name's own span
    /// (the caller consumed the name token and remembered its position).
    pub fn parse_atom_at(
        &mut self,
        name: &str,
        span: Span,
        r: &mut Resolver<'_>,
    ) -> Result<Formula, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut terms = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                terms.push(self.parse_term(r)?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let rel = self.resolve_atom(name, terms.len(), span, r)?;
        Ok(Formula::Atom(rel, terms))
    }

    /// Parse a term: variable (uppercase ident) or constant (other ident /
    /// quoted string).
    pub fn parse_term(&mut self, r: &mut Resolver<'_>) -> Result<QTerm, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                if is_variable_name(&name) {
                    Ok(QTerm::Var(Var::new(&name)))
                } else {
                    Ok(QTerm::Const(r.pool.intern(&name)))
                }
            }
            TokenKind::Quoted(name) => {
                self.advance();
                Ok(QTerm::Const(r.pool.intern(&name)))
            }
            other => Err(self.error(&format!("expected term, found {other}"))),
        }
    }
}

/// Parse a formula from source text against a schema and constant pool.
///
/// ```
/// use dcds_folang::{parse_formula};
/// use dcds_reldata::{ConstantPool, Schema};
/// let mut schema = Schema::new();
/// schema.add_relation("Stud", 1).unwrap();
/// schema.add_relation("Grad", 2).unwrap();
/// let mut pool = ConstantPool::new();
/// let f = parse_formula(
///     "forall X . Stud(X) -> exists Y . Grad(X, Y) & Y != failed",
///     &mut schema,
///     &mut pool,
/// ).unwrap();
/// assert_eq!(f.free_vars().len(), 0);
/// ```
pub fn parse_formula(
    src: &str,
    schema: &mut Schema,
    pool: &mut ConstantPool,
) -> Result<Formula, ParseError> {
    let mut parser = Parser::new(src)?;
    let mut resolver = Resolver {
        schema,
        pool,
        extend_schema: false,
    };
    parser.parse_formula_all(&mut resolver)
}

/// Like [`parse_formula`] but unknown relations are added to the schema.
pub fn parse_formula_extending(
    src: &str,
    schema: &mut Schema,
    pool: &mut ConstantPool,
) -> Result<Formula, ParseError> {
    let mut parser = Parser::new(src)?;
    let mut resolver = Resolver {
        schema,
        pool,
        extend_schema: true,
    };
    parser.parse_formula_all(&mut resolver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;
    use dcds_reldata::{ConstantPool, Schema};

    fn setup() -> (Schema, ConstantPool) {
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        schema.add_relation("Q", 2).unwrap();
        schema.add_relation("halted", 0).unwrap();
        (schema, ConstantPool::new())
    }

    #[test]
    fn parses_atoms_and_constants() {
        let (mut s, mut pool) = setup();
        let f = parse_formula("Q(a, X)", &mut s, &mut pool).unwrap();
        let a = pool.get("a").unwrap();
        assert_eq!(
            f,
            Formula::Atom(
                s.rel_id("Q").unwrap(),
                vec![QTerm::Const(a), QTerm::var("X")]
            )
        );
    }

    #[test]
    fn quoted_constants() {
        let (mut s, mut pool) = setup();
        let f = parse_formula("P('ready To Go')", &mut s, &mut pool).unwrap();
        assert!(pool.get("ready To Go").is_some());
        assert!(matches!(f, Formula::Atom(_, _)));
    }

    #[test]
    fn nullary_atom_bare_and_with_parens() {
        let (mut s, mut pool) = setup();
        let f1 = parse_formula("halted", &mut s, &mut pool).unwrap();
        let f2 = parse_formula("halted()", &mut s, &mut pool).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn precedence_not_and_or_implies() {
        let (mut s, mut pool) = setup();
        let f = parse_formula("!P(X) & P(Y) | P(Z) -> P(W)", &mut s, &mut pool).unwrap();
        // Expect: ((!P(X) & P(Y)) | P(Z)) -> P(W)
        let p = s.rel_id("P").unwrap();
        let px = Formula::Atom(p, vec![QTerm::var("X")]);
        let py = Formula::Atom(p, vec![QTerm::var("Y")]);
        let pz = Formula::Atom(p, vec![QTerm::var("Z")]);
        let pw = Formula::Atom(p, vec![QTerm::var("W")]);
        let expected = px.not().and(py).or(pz).implies(pw);
        assert_eq!(f, expected);
    }

    #[test]
    fn implication_is_right_associative() {
        let (mut s, mut pool) = setup();
        let f = parse_formula("P(X) -> P(Y) -> P(Z)", &mut s, &mut pool).unwrap();
        let p = s.rel_id("P").unwrap();
        let px = Formula::Atom(p, vec![QTerm::var("X")]);
        let py = Formula::Atom(p, vec![QTerm::var("Y")]);
        let pz = Formula::Atom(p, vec![QTerm::var("Z")]);
        assert_eq!(f, px.implies(py.implies(pz)));
    }

    #[test]
    fn quantifiers_with_lists() {
        let (mut s, mut pool) = setup();
        let f = parse_formula("exists X, Y . Q(X, Y)", &mut s, &mut pool).unwrap();
        assert!(f.free_vars().is_empty());
        let g = parse_formula("forall X . exists Y . Q(X, Y)", &mut s, &mut pool).unwrap();
        assert!(g.free_vars().is_empty());
    }

    #[test]
    fn equality_and_inequality() {
        let (mut s, mut pool) = setup();
        let f = parse_formula("X = a & Y != b", &mut s, &mut pool).unwrap();
        assert_eq!(f.free_vars().len(), 2);
    }

    #[test]
    fn unknown_relation_is_error_in_strict_mode() {
        let (mut s, mut pool) = setup();
        assert!(parse_formula("Nope(X)", &mut s, &mut pool).is_err());
        let f = parse_formula_extending("Nope(X)", &mut s, &mut pool);
        assert!(f.is_ok());
        assert!(s.rel_id("Nope").is_some());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let (mut s, mut pool) = setup();
        assert!(parse_formula("P(X, Y)", &mut s, &mut pool).is_err());
    }

    #[test]
    fn lowercase_quantified_var_rejected() {
        let (mut s, mut pool) = setup();
        assert!(parse_formula("exists x . P(x)", &mut s, &mut pool).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (mut s, mut pool) = setup();
        assert!(parse_formula("P(X) P(Y)", &mut s, &mut pool).is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let (mut s, mut pool) = setup();
        for src in [
            format!("{}true{}", "(".repeat(20_000), ")".repeat(20_000)),
            format!("{}P(X)", "!".repeat(20_000)),
            format!("{}true", "true -> ".repeat(20_000)),
            format!("{}P(X)", "exists X . ".repeat(20_000)),
        ] {
            let err = parse_formula(&src, &mut s, &mut pool).unwrap_err();
            assert!(err.message.contains("nesting"), "{err}");
        }
    }

    #[test]
    fn depth_budget_is_per_branch_not_cumulative() {
        let (mut s, mut pool) = setup();
        // Many shallow conjuncts must NOT trip the depth guard: the budget
        // is released when each branch completes.
        let src = (0..2_000).map(|_| "(P(X))").collect::<Vec<_>>().join(" & ");
        assert!(parse_formula(&src, &mut s, &mut pool).is_ok());
    }

    #[test]
    fn tolerant_mode_records_uses_instead_of_erroring() {
        let (mut s, mut pool) = setup();
        let mut p = Parser::new("P(X, Y) & Nope(Z) & P(W)").unwrap();
        p.record_atom_uses();
        let mut r = Resolver {
            schema: &mut s,
            pool: &mut pool,
            extend_schema: false,
        };
        p.parse_formula_all(&mut r).unwrap();
        let uses = p.take_atom_uses();
        assert_eq!(uses.len(), 3);
        assert_eq!((uses[0].name.as_str(), uses[0].arity), ("P", 2));
        assert_eq!(uses[0].span, Span::new(1, 1));
        assert_eq!((uses[1].name.as_str(), uses[1].arity), ("Nope", 1));
        assert_eq!(uses[1].span, Span::new(1, 11));
        // The matching use resolves to the declared relation; the two
        // mismatches land on scratch relations.
        assert_eq!(uses[2].rel, s.rel_id("P").unwrap());
        assert!(s.rel_id("P/2").is_some());
        assert!(s.rel_id("Nope/1").is_some());
        // The record is drained.
        assert!(p.take_atom_uses().is_empty());
    }

    #[test]
    fn keyword_connectives() {
        let (mut s, mut pool) = setup();
        let f1 = parse_formula("P(X) and not P(Y) or P(Z)", &mut s, &mut pool).unwrap();
        let f2 = parse_formula("P(X) & !P(Y) | P(Z)", &mut s, &mut pool).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn biconditional_desugars() {
        let (mut s, mut pool) = setup();
        let f = parse_formula("P(X) <-> P(Y)", &mut s, &mut pool).unwrap();
        let p = s.rel_id("P").unwrap();
        let px = Formula::Atom(p, vec![QTerm::var("X")]);
        let py = Formula::Atom(p, vec![QTerm::var("Y")]);
        assert_eq!(f, px.clone().implies(py.clone()).and(py.implies(px)));
    }
}
