//! Join-based evaluation of (unions of) conjunctive queries.
//!
//! The reference evaluator in [`crate::eval`] enumerates assignments over the
//! active domain, which is exponential in the number of variables. For the
//! positive parts `q+` of effect specifications — evaluated at every
//! transition of the concrete and abstract transition systems — we instead
//! join atom by atom, which is the standard worst-case-adequate strategy for
//! CQs. Property tests in `tests/eval_agreement.rs` check the two evaluators
//! agree on random UCQs.

use crate::ast::{Assignment, QTerm, Var};
use crate::ucq::{ConjunctiveQuery, Ucq};
use dcds_reldata::{Instance, Value};
use std::collections::BTreeSet;

/// Evaluate a conjunctive query, returning assignments over its head
/// variables.
pub fn eval_cq(cq: &ConjunctiveQuery, inst: &Instance) -> BTreeSet<Assignment> {
    // Start with the single empty partial assignment; extend through atoms.
    let mut partials: Vec<Assignment> = vec![Assignment::new()];
    // Join atoms in an order that maximises early bound variables: greedy
    // selection of the atom sharing the most variables with those bound.
    let order = join_order(cq);
    for &atom_ix in &order {
        let (rel, terms) = &cq.atoms[atom_ix];
        let mut next: Vec<Assignment> = Vec::new();
        for asg in &partials {
            for tuple in inst.tuples(*rel) {
                if let Some(extended) = unify(terms, tuple.values(), asg) {
                    next.push(extended);
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return BTreeSet::new();
        }
    }
    // Apply equality side conditions, then project to the head. The number
    // of distinct head variables is loop-invariant: compute it once, not
    // once per result row.
    let distinct_head = cq.head.iter().collect::<BTreeSet<_>>().len();
    let mut out = BTreeSet::new();
    'outer: for asg in partials {
        for (t1, t2) in &cq.equalities {
            let v1 = term_val(t1, &asg);
            let v2 = term_val(t2, &asg);
            match (v1, v2) {
                (Some(a), Some(b)) if a == b => {}
                _ => continue 'outer,
            }
        }
        let projected: Assignment = cq
            .head
            .iter()
            .filter_map(|v| asg.get(v).map(|&c| (v.clone(), c)))
            .collect();
        if projected.len() == distinct_head {
            out.insert(projected);
        }
    }
    out
}

/// Evaluate a union of conjunctive queries (set union of disjunct answers).
pub fn eval_ucq(ucq: &Ucq, inst: &Instance) -> BTreeSet<Assignment> {
    let mut out = BTreeSet::new();
    for cq in &ucq.disjuncts {
        out.extend(eval_cq(cq, inst));
    }
    out
}

/// Greedy join order: repeatedly pick the atom sharing the most variables
/// with the already-bound set (ties broken by original position).
fn join_order(cq: &ConjunctiveQuery) -> Vec<usize> {
    let n = cq.atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &ix)| {
                let vars = atom_vars(&cq.atoms[ix].1);
                let shared = vars.intersection(&bound).count();
                // Prefer atoms with more shared vars, then more constants.
                let consts = cq.atoms[ix]
                    .1
                    .iter()
                    .filter(|t| matches!(t, QTerm::Const(_)))
                    .count();
                (shared, consts, usize::MAX - ix)
            })
            .expect("remaining nonempty");
        order.push(best);
        bound.extend(atom_vars(&cq.atoms[best].1));
        remaining.remove(pos);
    }
    order
}

fn atom_vars(terms: &[QTerm]) -> BTreeSet<Var> {
    terms.iter().filter_map(|t| t.as_var().cloned()).collect()
}

fn term_val(t: &QTerm, asg: &Assignment) -> Option<Value> {
    match t {
        QTerm::Const(c) => Some(*c),
        QTerm::Var(v) => asg.get(v).copied(),
    }
}

/// Try to extend `asg` so that `terms` matches `tuple` componentwise.
fn unify(terms: &[QTerm], tuple: &[Value], asg: &Assignment) -> Option<Assignment> {
    debug_assert_eq!(terms.len(), tuple.len());
    let mut out = asg.clone();
    for (t, &v) in terms.iter().zip(tuple) {
        match t {
            QTerm::Const(c) => {
                if *c != v {
                    return None;
                }
            }
            QTerm::Var(x) => match out.get(x) {
                Some(&bound) if bound != v => return None,
                Some(_) => {}
                None => {
                    out.insert(x.clone(), v);
                }
            },
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, RelId, Schema, Tuple};

    fn setup() -> (ConstantPool, Schema, RelId, RelId, Instance) {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 2).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let inst = Instance::from_facts([
            (p, Tuple::from([a])),
            (p, Tuple::from([b])),
            (q, Tuple::from([a, b])),
            (q, Tuple::from([b, c])),
        ]);
        (pool, schema, p, q, inst)
    }

    #[test]
    fn single_atom_scan() {
        let (_, _, p, _, inst) = setup();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![],
        };
        assert_eq!(eval_cq(&cq, &inst).len(), 2);
    }

    #[test]
    fn join_two_atoms() {
        let (pool, _, p, q, inst) = setup();
        let b = pool.get("b").unwrap();
        // X : P(X), Q(X, Y), P(Y) — only X=a gives Y=b in P.
        let cq = ConjunctiveQuery {
            head: vec![Var::new("Y")],
            atoms: vec![
                (p, vec![QTerm::var("X")]),
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                (p, vec![QTerm::var("Y")]),
            ],
            equalities: vec![],
        };
        let ans = eval_cq(&cq, &inst);
        assert_eq!(ans.len(), 1);
        let only = ans.into_iter().next().unwrap();
        assert_eq!(only.get(&Var::new("Y")), Some(&b));
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let (_, _, _, q, inst) = setup();
        // Q(X, X) — no such tuple.
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![(q, vec![QTerm::var("X"), QTerm::var("X")])],
            equalities: vec![],
        };
        assert!(eval_cq(&cq, &inst).is_empty());
    }

    #[test]
    fn constants_filter_tuples() {
        let (pool, _, _, q, inst) = setup();
        let a = pool.get("a").unwrap();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("Y")],
            atoms: vec![(q, vec![QTerm::Const(a), QTerm::var("Y")])],
            equalities: vec![],
        };
        assert_eq!(eval_cq(&cq, &inst).len(), 1);
    }

    #[test]
    fn equality_side_conditions() {
        let (pool, _, _, q, inst) = setup();
        let b = pool.get("b").unwrap();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![(q, vec![QTerm::var("X"), QTerm::var("Y")])],
            equalities: vec![(QTerm::var("Y"), QTerm::Const(b))],
        };
        let ans = eval_cq(&cq, &inst);
        assert_eq!(ans.len(), 1);
        assert_eq!(
            ans.into_iter().next().unwrap().get(&Var::new("X")),
            Some(&pool.get("a").unwrap())
        );
    }

    #[test]
    fn projection_deduplicates() {
        let (_, _, _, q, inst) = setup();
        // Head X only; Y projected away — both Q tuples give distinct X here,
        // so add a boolean version: head empty.
        let cq = ConjunctiveQuery {
            head: vec![],
            atoms: vec![(q, vec![QTerm::var("X"), QTerm::var("Y")])],
            equalities: vec![],
        };
        let ans = eval_cq(&cq, &inst);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Assignment::new()));
    }

    #[test]
    fn truth_query_yields_empty_assignment() {
        let inst = Instance::new();
        let ans = eval_cq(&ConjunctiveQuery::truth(), &inst);
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn ucq_unions_disjuncts() {
        let (_, _, p, q, inst) = setup();
        let cq1 = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![],
        };
        let cq2 = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![(q, vec![QTerm::var("Y"), QTerm::var("X")])],
            equalities: vec![],
        };
        let ucq = Ucq {
            disjuncts: vec![cq1, cq2],
        };
        // P gives {a, b}; Q second column gives {b, c}; union {a, b, c}.
        assert_eq!(eval_ucq(&ucq, &inst).len(), 3);
    }
}
