//! Pretty-printing of formulas back to the surface syntax.

use crate::ast::{Formula, QTerm};
use dcds_reldata::{ConstantPool, Schema};
use std::fmt;

/// Wraps a formula for display. The output re-parses to an equivalent
/// formula (tested in `tests/parse_roundtrip.rs`).
pub struct FormulaDisplay<'a> {
    formula: &'a Formula,
    schema: &'a Schema,
    pool: &'a ConstantPool,
}

impl<'a> FormulaDisplay<'a> {
    /// Wrap a formula for display.
    pub fn new(formula: &'a Formula, schema: &'a Schema, pool: &'a ConstantPool) -> Self {
        Self {
            formula,
            schema,
            pool,
        }
    }

    fn term(&self, t: &QTerm, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match t {
            QTerm::Var(v) => write!(f, "{}", v.name()),
            QTerm::Const(c) => {
                let name = self.pool.name(*c);
                if name
                    .chars()
                    .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
                    && name
                        .chars()
                        .next()
                        .is_some_and(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit())
                {
                    write!(f, "{name}")
                } else {
                    write!(f, "'{name}'")
                }
            }
        }
    }

    /// Precedence levels: higher binds tighter.
    fn prec(formula: &Formula) -> u8 {
        match formula {
            Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => 5,
            Formula::Not(inner) => {
                // `!(t1 = t2)` prints as `t1 != t2`, which is atomic.
                if matches!(**inner, Formula::Eq(_, _)) {
                    5
                } else {
                    4
                }
            }
            Formula::And(_, _) => 3,
            Formula::Or(_, _) => 2,
            Formula::Implies(_, _) => 1,
            Formula::Exists(_, _) | Formula::Forall(_, _) => 0,
        }
    }

    fn rec(&self, formula: &Formula, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let my_prec = Self::prec(formula);
        let need_parens = my_prec < parent_prec;
        if need_parens {
            write!(f, "(")?;
        }
        match formula {
            Formula::True => write!(f, "true")?,
            Formula::False => write!(f, "false")?,
            Formula::Atom(rel, terms) => {
                write!(f, "{}", self.schema.name(*rel))?;
                write!(f, "(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    self.term(t, f)?;
                }
                write!(f, ")")?;
            }
            Formula::Eq(t1, t2) => {
                self.term(t1, f)?;
                write!(f, " = ")?;
                self.term(t2, f)?;
            }
            Formula::Not(inner) => {
                if let Formula::Eq(t1, t2) = &**inner {
                    self.term(t1, f)?;
                    write!(f, " != ")?;
                    self.term(t2, f)?;
                } else {
                    write!(f, "!")?;
                    self.rec(inner, 5, f)?;
                }
            }
            Formula::And(g, h) => {
                self.rec(g, 3, f)?;
                write!(f, " & ")?;
                self.rec(h, 4, f)?;
            }
            Formula::Or(g, h) => {
                self.rec(g, 2, f)?;
                write!(f, " | ")?;
                self.rec(h, 3, f)?;
            }
            Formula::Implies(g, h) => {
                self.rec(g, 2, f)?;
                write!(f, " -> ")?;
                self.rec(h, 1, f)?;
            }
            Formula::Exists(v, body) => {
                write!(f, "exists {} . ", v.name())?;
                self.rec(body, 0, f)?;
            }
            Formula::Forall(v, body) => {
                write!(f, "forall {} . ", v.name())?;
                self.rec(body, 0, f)?;
            }
        }
        if need_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.rec(self.formula, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use dcds_reldata::{ConstantPool, Schema};

    fn roundtrip(src: &str) {
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        schema.add_relation("Q", 2).unwrap();
        let mut pool = ConstantPool::new();
        let f = parse_formula(src, &mut schema, &mut pool).unwrap();
        let printed = FormulaDisplay::new(&f, &schema, &pool).to_string();
        let f2 = parse_formula(&printed, &mut schema, &mut pool)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(f, f2, "printed as `{printed}`");
    }

    #[test]
    fn roundtrips() {
        roundtrip("P(X)");
        roundtrip("Q(a, X) & P(X)");
        roundtrip("!P(X) | P(Y) -> P(Z)");
        roundtrip("exists X . forall Y . Q(X, Y) & X != Y");
        roundtrip("P(X) -> (P(Y) -> P(Z))");
        roundtrip("(P(X) | P(Y)) & P(Z)");
        roundtrip("X = a & !(P(X) & P(Y))");
    }
}
