//! Compiled evaluation plans for (unions of) conjunctive queries.
//!
//! [`crate::eval_cq`] re-derives a greedy join order on every call, scans
//! whole relations with nested loops, and threads `BTreeMap` assignments
//! that are cloned per extension. The positive parts `q+` of effect
//! specifications are evaluated at *every* transition of the concrete and
//! abstract systems, against a query that never changes — so we compile each
//! (U)CQ once into a [`CompiledPlan`]:
//!
//! * variables are numbered **slots** and partial assignments become a flat
//!   `Vec<Option<Value>>` register file (no tree maps, no per-extension
//!   clones — bindings are written and undone in place during backtracking);
//! * the greedy join order is fixed at **compile time**, with action
//!   parameters treated as pre-bound inputs;
//! * every atom position is classified up front as constant, bound, or free,
//!   yielding the bound-position mask a [`dcds_reldata::InstanceIndex`]
//!   probe needs — atom extension becomes a hash lookup instead of a scan;
//! * equality side-conditions are **hoisted** to the earliest join step at
//!   which both sides are bound (input-only equalities are checked once per
//!   evaluation, before any join);
//! * steps whose newly-bound slots are never read again (not by later steps,
//!   later equalities, or the head) are *existential*: the first tuple that
//!   passes suffices and the remaining candidates are skipped — the
//!   dead-variable projection that makes boolean sub-joins cheap.
//!
//! Compilation is gated on range restriction: every head and equality
//! variable must occur in an atom or be a declared parameter, which is
//! exactly the condition under which the natural join semantics below, the
//! nested-loop [`crate::eval_cq::eval_ucq`], and the active-domain
//! [`crate::eval::answers`] coincide. Queries outside the fragment are
//! rejected at compile time ([`PlanError`]) and callers fall back to the
//! legacy evaluators. Evaluation visits candidate tuples in instance
//! iteration order (indexes are order-normalised), so outputs are
//! bit-identical with `eval_ucq` at every thread count.

use crate::ast::{Assignment, QTerm, Var};
use crate::ucq::{ConjunctiveQuery, Ucq};
use dcds_reldata::{AccessPath, Instance, InstanceIndex, RelId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a query cannot be compiled (and the caller should use the legacy
/// evaluators instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A head variable occurs in no atom and is not a parameter.
    UnboundHeadVar(String),
    /// An equality variable occurs in no atom and is not a parameter.
    UnboundEqualityVar(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnboundHeadVar(v) => {
                write!(
                    f,
                    "head variable {v} occurs in no atom and is not a parameter"
                )
            }
            PlanError::UnboundEqualityVar(v) => {
                write!(
                    f,
                    "equality variable {v} occurs in no atom and is not a parameter"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Evaluation counters, shared across threads. Totals are a function of the
/// evaluated work only, so they are identical at every thread count.
#[derive(Debug, Default)]
pub struct PlanStats {
    /// Compiled-plan evaluations ([`CompiledPlan::eval`] / [`CompiledPlan::holds`]).
    pub plan_evals: AtomicU64,
    /// Join steps answered by an index probe.
    pub index_probes: AtomicU64,
    /// Join steps answered by a relation scan (no index, or no bound position).
    pub relation_scans: AtomicU64,
    /// Evaluations that bypassed the plan layer (query outside the
    /// compilable fragment, or a non-standard parameter assignment).
    pub fallback_evals: AtomicU64,
}

impl PlanStats {
    /// Current values as `(name, value)` pairs, for publishing into an
    /// observability registry.
    pub fn snapshot(&self) -> [(&'static str, u64); 4] {
        [
            ("plan_evals", self.plan_evals.load(Ordering::Relaxed)),
            ("index_probes", self.index_probes.load(Ordering::Relaxed)),
            (
                "relation_scans",
                self.relation_scans.load(Ordering::Relaxed),
            ),
            (
                "fallback_evals",
                self.fallback_evals.load(Ordering::Relaxed),
            ),
        ]
    }
}

/// Where an evaluation reads its tuples: always an instance, optionally an
/// [`InstanceIndex`] over it, optionally a [`PlanStats`] to count into.
#[derive(Clone, Copy)]
pub struct EvalCtx<'a> {
    inst: &'a Instance,
    index: Option<&'a InstanceIndex>,
    stats: Option<&'a PlanStats>,
}

impl<'a> EvalCtx<'a> {
    /// Evaluate by scanning relations.
    pub fn scan(inst: &'a Instance) -> Self {
        EvalCtx {
            inst,
            index: None,
            stats: None,
        }
    }

    /// Evaluate through a prebuilt index (falling back to scans for access
    /// paths the index does not cover).
    pub fn with_index(inst: &'a Instance, index: &'a InstanceIndex) -> Self {
        EvalCtx {
            inst,
            index: Some(index),
            stats: None,
        }
    }

    /// Attach an evaluation-counter sink.
    pub fn stats(mut self, stats: &'a PlanStats) -> Self {
        self.stats = Some(stats);
        self
    }

    fn count(&self, f: impl FnOnce(&PlanStats) -> &AtomicU64) {
        if let Some(stats) = self.stats {
            f(stats).fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A value source known at compile time: a constant or a register slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Const(Value),
    Slot(usize),
}

impl Src {
    fn value(self, regs: &[Option<Value>]) -> Value {
        match self {
            Src::Const(c) => c,
            Src::Slot(s) => regs[s].expect("slot read before bound"),
        }
    }
}

/// An equality check with both sides bound by the time it runs.
#[derive(Debug, Clone, Copy)]
struct EqCheck {
    a: Src,
    b: Src,
}

impl EqCheck {
    fn holds(self, regs: &[Option<Value>]) -> bool {
        self.a.value(regs) == self.b.value(regs)
    }
}

/// Compile-time classification of one atom position.
#[derive(Debug, Clone, Copy)]
enum PosTerm {
    /// The position must carry this constant.
    Const(Value),
    /// The position must equal the (already bound) slot.
    Bound(usize),
    /// The position binds the slot (or re-checks it, on a repeated variable
    /// within the same atom).
    Free(usize),
}

/// One join step: extend the register file through the tuples of a relation.
#[derive(Debug, Clone)]
struct Step {
    rel: RelId,
    terms: Vec<PosTerm>,
    /// Positions bound before the step runs (ascending) — the index access
    /// path — and how to compute the probe key for each.
    key_positions: Vec<usize>,
    key_srcs: Vec<Src>,
    /// Equalities hoisted to this step (both sides bound once it binds).
    eq_checks: Vec<EqCheck>,
    /// No slot bound here is read later: the first passing tuple suffices.
    existential: bool,
}

/// A compiled conjunctive query.
#[derive(Debug, Clone)]
struct CompiledCq {
    nslots: usize,
    /// Parameter variables and their slots, seeded from the input assignment.
    param_slots: Vec<(Var, usize)>,
    /// Output variables (head minus parameters) and their slots.
    out_vars: Vec<(Var, usize)>,
    /// Equalities over constants and parameters only: checked once per
    /// evaluation, before any join step.
    pre_checks: Vec<EqCheck>,
    steps: Vec<Step>,
}

/// A compiled union of conjunctive queries. Evaluation returns assignments
/// over the head variables that are not parameters — exactly what
/// `eval_ucq` returns after substituting the parameters as constants.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    cqs: Vec<CompiledCq>,
}

impl CompiledPlan {
    /// Compile a UCQ, treating `params` as pre-bound input variables.
    ///
    /// Fails iff some disjunct is not range-restricted modulo `params`
    /// (a head or equality variable in no atom); callers should fall back
    /// to the legacy evaluators in that case.
    pub fn compile(ucq: &Ucq, params: &BTreeSet<Var>) -> Result<CompiledPlan, PlanError> {
        let cqs = ucq
            .disjuncts
            .iter()
            .map(|cq| compile_cq(cq, params))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledPlan { cqs })
    }

    /// The access paths the plan's steps probe — the set to build an
    /// [`InstanceIndex`] over. Deduplicated and deterministic.
    pub fn access_paths(&self) -> Vec<AccessPath> {
        let mut out: BTreeSet<AccessPath> = BTreeSet::new();
        for cq in &self.cqs {
            for step in &cq.steps {
                if !step.key_positions.is_empty() {
                    out.insert((step.rel, step.key_positions.clone()));
                }
            }
        }
        out.into_iter().collect()
    }

    /// Evaluate, seeding the parameter slots from `seed`. Returns the set
    /// of assignments over the non-parameter head variables; bit-identical
    /// with `eval_ucq` on the parameter-substituted query.
    ///
    /// Panics if `seed` misses a parameter that occurs in the query.
    pub fn eval(&self, ctx: &EvalCtx<'_>, seed: &Assignment) -> BTreeSet<Assignment> {
        ctx.count(|s| &s.plan_evals);
        let mut out = BTreeSet::new();
        for cq in &self.cqs {
            cq.run(ctx, seed, &mut out, false);
        }
        out
    }

    /// Boolean evaluation: is the answer set non-empty? Stops at the first
    /// produced row.
    pub fn holds(&self, ctx: &EvalCtx<'_>, seed: &Assignment) -> bool {
        ctx.count(|s| &s.plan_evals);
        let mut scratch = BTreeSet::new();
        self.cqs
            .iter()
            .any(|cq| cq.run(ctx, seed, &mut scratch, true))
    }
}

fn src_of(t: &QTerm, slot_of: &BTreeMap<Var, usize>) -> Option<Src> {
    match t {
        QTerm::Const(c) => Some(Src::Const(*c)),
        QTerm::Var(v) => slot_of.get(v).map(|&s| Src::Slot(s)),
    }
}

fn compile_cq(cq: &ConjunctiveQuery, params: &BTreeSet<Var>) -> Result<CompiledCq, PlanError> {
    // Slots: every atom variable, plus parameters referenced by equalities
    // (parameters referenced only by the head need no slot — the caller's
    // seed assignment supplies their values directly).
    let mut slot_vars: BTreeSet<Var> = cq.atom_vars();
    for (t1, t2) in &cq.equalities {
        for t in [t1, t2] {
            if let QTerm::Var(v) = t {
                if params.contains(v) {
                    slot_vars.insert(v.clone());
                }
            }
        }
    }
    let slot_of: BTreeMap<Var, usize> = slot_vars
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let nslots = slot_of.len();
    let param_slots: Vec<(Var, usize)> = slot_of
        .iter()
        .filter(|(v, _)| params.contains(v))
        .map(|(v, &s)| (v.clone(), s))
        .collect();

    // Range restriction modulo parameters.
    let avars = cq.atom_vars();
    let mut out_vars: Vec<(Var, usize)> = Vec::new();
    let mut seen_head: BTreeSet<&Var> = BTreeSet::new();
    for v in &cq.head {
        if params.contains(v) {
            continue; // supplied by the seed, as after parameter substitution
        }
        if !avars.contains(v) {
            return Err(PlanError::UnboundHeadVar(v.name().to_owned()));
        }
        if seen_head.insert(v) {
            out_vars.push((v.clone(), slot_of[v]));
        }
    }
    for (t1, t2) in &cq.equalities {
        for t in [t1, t2] {
            if let QTerm::Var(v) = t {
                if !avars.contains(v) && !params.contains(v) {
                    return Err(PlanError::UnboundEqualityVar(v.name().to_owned()));
                }
            }
        }
    }

    // Join order fixed at compile time: the greedy heuristic of
    // `eval_cq::join_order`, with parameter slots counting as bound from
    // the start. (The answer set is order-independent; the order only
    // shapes how much gets pruned early.)
    let order = {
        let mut remaining: Vec<usize> = (0..cq.atoms.len()).collect();
        let mut bound_vars: BTreeSet<Var> = param_slots.iter().map(|(v, _)| v.clone()).collect();
        let mut order = Vec::with_capacity(cq.atoms.len());
        while !remaining.is_empty() {
            let (pos, &best) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &ix)| {
                    let terms = &cq.atoms[ix].1;
                    let shared = terms
                        .iter()
                        .filter_map(QTerm::as_var)
                        .collect::<BTreeSet<_>>()
                        .iter()
                        .filter(|v| bound_vars.contains(**v))
                        .count();
                    let consts = terms.iter().filter(|t| t.as_const().is_some()).count();
                    (shared, consts, usize::MAX - ix)
                })
                .expect("remaining nonempty");
            order.push(best);
            bound_vars.extend(cq.atoms[best].1.iter().filter_map(|t| t.as_var().cloned()));
            remaining.remove(pos);
        }
        order
    };

    // Build the steps, tracking which slot each step binds first.
    let mut bound: Vec<bool> = vec![false; nslots];
    for (_, s) in &param_slots {
        bound[*s] = true;
    }
    let mut first_bound_at: Vec<Option<usize>> = vec![None; nslots]; // None = param
    let mut steps: Vec<Step> = Vec::with_capacity(order.len());
    for (six, &atom_ix) in order.iter().enumerate() {
        let (rel, terms) = &cq.atoms[atom_ix];
        let mut pos_terms = Vec::with_capacity(terms.len());
        let mut key_positions = Vec::new();
        let mut key_srcs = Vec::new();
        let mut newly: Vec<usize> = Vec::new();
        for (pos, t) in terms.iter().enumerate() {
            match t {
                QTerm::Const(c) => {
                    pos_terms.push(PosTerm::Const(*c));
                    key_positions.push(pos);
                    key_srcs.push(Src::Const(*c));
                }
                QTerm::Var(v) => {
                    let s = slot_of[v];
                    if bound[s] {
                        pos_terms.push(PosTerm::Bound(s));
                        key_positions.push(pos);
                        key_srcs.push(Src::Slot(s));
                    } else {
                        // First occurrence binds; a repeat within the same
                        // atom re-checks against the fresh binding at eval
                        // time (it is not bound *before* the step, so it
                        // cannot be part of the probe key).
                        pos_terms.push(PosTerm::Free(s));
                        if !newly.contains(&s) {
                            newly.push(s);
                        }
                    }
                }
            }
        }
        for &s in &newly {
            bound[s] = true;
            first_bound_at[s] = Some(six);
        }
        steps.push(Step {
            rel: *rel,
            terms: pos_terms,
            key_positions,
            key_srcs,
            eq_checks: Vec::new(),
            existential: false,
        });
    }

    // Hoist each equality to the earliest step after which both sides are
    // bound; equalities over constants and parameters only become
    // pre-checks, run once per evaluation.
    let mut pre_checks = Vec::new();
    for (t1, t2) in &cq.equalities {
        let a = src_of(t1, &slot_of).expect("equality var has a slot (validated above)");
        let b = src_of(t2, &slot_of).expect("equality var has a slot (validated above)");
        let ready = |s: Src| match s {
            Src::Const(_) => None,
            Src::Slot(slot) => first_bound_at[slot],
        };
        match ready(a).max(ready(b)) {
            None => pre_checks.push(EqCheck { a, b }),
            Some(six) => steps[six].eq_checks.push(EqCheck { a, b }),
        }
    }

    // Dead-variable projection: a step none of whose fresh slots is read by
    // a later step, a later equality, or the head is purely existential.
    let out_slots: BTreeSet<usize> = out_vars.iter().map(|(_, s)| *s).collect();
    for six in 0..steps.len() {
        let newly: BTreeSet<usize> = (0..nslots)
            .filter(|&s| first_bound_at[s] == Some(six))
            .collect();
        let used_later = steps[six + 1..].iter().any(|later| {
            later.terms.iter().any(|t| match t {
                PosTerm::Bound(s) | PosTerm::Free(s) => newly.contains(s),
                PosTerm::Const(_) => false,
            }) || later.eq_checks.iter().any(|eq| {
                [eq.a, eq.b]
                    .into_iter()
                    .any(|src| matches!(src, Src::Slot(s) if newly.contains(&s)))
            })
        });
        steps[six].existential = !used_later && newly.is_disjoint(&out_slots);
    }

    Ok(CompiledCq {
        nslots,
        param_slots,
        out_vars,
        pre_checks,
        steps,
    })
}

impl CompiledCq {
    /// Run the plan, inserting result rows into `out`. With `stop` set,
    /// returns `true` as soon as the first row is produced.
    fn run(
        &self,
        ctx: &EvalCtx<'_>,
        seed: &Assignment,
        out: &mut BTreeSet<Assignment>,
        stop: bool,
    ) -> bool {
        let mut regs: Vec<Option<Value>> = vec![None; self.nslots];
        for (v, s) in &self.param_slots {
            let val = seed.get(v).unwrap_or_else(|| {
                panic!("compiled plan evaluated without a binding for parameter {v}")
            });
            regs[*s] = Some(*val);
        }
        if self.pre_checks.iter().any(|eq| !eq.holds(&regs)) {
            return false;
        }
        self.dfs(0, &mut regs, ctx, out, stop)
    }

    fn dfs(
        &self,
        depth: usize,
        regs: &mut Vec<Option<Value>>,
        ctx: &EvalCtx<'_>,
        out: &mut BTreeSet<Assignment>,
        stop: bool,
    ) -> bool {
        let Some(step) = self.steps.get(depth) else {
            let row: Assignment = self
                .out_vars
                .iter()
                .map(|(v, s)| {
                    (
                        v.clone(),
                        regs[*s].expect("head slot bound after all steps"),
                    )
                })
                .collect();
            out.insert(row);
            return stop;
        };
        // Candidate tuples: a hash probe when an index covers the step's
        // access path, otherwise a scan in instance iteration order. Index
        // buckets preserve that order, so both sources enumerate the same
        // matching tuples in the same sequence.
        if !step.key_positions.is_empty() {
            if let Some(index) = ctx.index {
                let key: Vec<Value> = step.key_srcs.iter().map(|s| s.value(regs)).collect();
                if let Some(bucket) = index.probe(step.rel, &step.key_positions, &key) {
                    ctx.count(|s| &s.index_probes);
                    return self.extend(step, depth, bucket.iter(), regs, ctx, out, stop);
                }
            }
        }
        ctx.count(|s| &s.relation_scans);
        let tuples: Vec<&dcds_reldata::Tuple> = ctx.inst.tuples(step.rel).collect();
        self.extend(step, depth, tuples.into_iter(), regs, ctx, out, stop)
    }

    #[allow(clippy::too_many_arguments)]
    fn extend<'t>(
        &self,
        step: &Step,
        depth: usize,
        tuples: impl Iterator<Item = &'t dcds_reldata::Tuple>,
        regs: &mut Vec<Option<Value>>,
        ctx: &EvalCtx<'_>,
        out: &mut BTreeSet<Assignment>,
        stop: bool,
    ) -> bool {
        let mut written: Vec<usize> = Vec::new();
        for tuple in tuples {
            let vals = tuple.values();
            if vals.len() != step.terms.len() {
                continue; // cannot match an atom of different arity
            }
            written.clear();
            let mut ok = true;
            for (pos, pt) in step.terms.iter().enumerate() {
                match pt {
                    PosTerm::Const(c) => {
                        if vals[pos] != *c {
                            ok = false;
                            break;
                        }
                    }
                    PosTerm::Bound(s) => {
                        if regs[*s] != Some(vals[pos]) {
                            ok = false;
                            break;
                        }
                    }
                    PosTerm::Free(s) => match regs[*s] {
                        Some(b) => {
                            if b != vals[pos] {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            regs[*s] = Some(vals[pos]);
                            written.push(*s);
                        }
                    },
                }
            }
            if ok && step.eq_checks.iter().any(|eq| !eq.holds(regs)) {
                ok = false;
            }
            if ok {
                let found = self.dfs(depth + 1, regs, ctx, out, stop);
                for &s in &written {
                    regs[s] = None;
                }
                if found {
                    return true;
                }
                if step.existential {
                    // Nothing bound here is read again: every further
                    // candidate reaches the same sub-search, producing only
                    // duplicate rows. One passing tuple is enough.
                    return false;
                }
            } else {
                for &s in &written {
                    regs[s] = None;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_cq::eval_ucq;
    use dcds_reldata::{ConstantPool, Schema, Tuple};

    fn setup() -> (ConstantPool, Schema, RelId, RelId, Instance) {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 2).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let inst = Instance::from_facts([
            (p, Tuple::from([a])),
            (p, Tuple::from([b])),
            (q, Tuple::from([a, b])),
            (q, Tuple::from([b, c])),
        ]);
        (pool, schema, p, q, inst)
    }

    fn check_agreement(ucq: &Ucq, inst: &Instance) {
        let plan = CompiledPlan::compile(ucq, &BTreeSet::new()).unwrap();
        let legacy = eval_ucq(ucq, inst);
        assert_eq!(plan.eval(&EvalCtx::scan(inst), &Assignment::new()), legacy);
        let index = InstanceIndex::build(inst, plan.access_paths());
        assert_eq!(
            plan.eval(&EvalCtx::with_index(inst, &index), &Assignment::new()),
            legacy
        );
        assert_eq!(
            plan.holds(&EvalCtx::scan(inst), &Assignment::new()),
            !legacy.is_empty()
        );
    }

    #[test]
    fn agrees_on_joins_constants_and_repeats() {
        let (pool, _, p, q, inst) = setup();
        let a = pool.get("a").unwrap();
        let cases = vec![
            ConjunctiveQuery {
                head: vec![Var::new("Y")],
                atoms: vec![
                    (p, vec![QTerm::var("X")]),
                    (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                    (p, vec![QTerm::var("Y")]),
                ],
                equalities: vec![],
            },
            ConjunctiveQuery {
                head: vec![Var::new("X")],
                atoms: vec![(q, vec![QTerm::var("X"), QTerm::var("X")])],
                equalities: vec![],
            },
            ConjunctiveQuery {
                head: vec![Var::new("Y")],
                atoms: vec![(q, vec![QTerm::Const(a), QTerm::var("Y")])],
                equalities: vec![],
            },
            ConjunctiveQuery {
                head: vec![],
                atoms: vec![(q, vec![QTerm::var("X"), QTerm::var("Y")])],
                equalities: vec![],
            },
            ConjunctiveQuery::truth(),
        ];
        for cq in cases {
            check_agreement(&Ucq::single(cq), &inst);
        }
    }

    #[test]
    fn equalities_are_hoisted_and_agree() {
        let (pool, _, p, q, inst) = setup();
        let b = pool.get("b").unwrap();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                (p, vec![QTerm::var("X")]),
            ],
            equalities: vec![(QTerm::var("Y"), QTerm::Const(b))],
        };
        let plan = CompiledPlan::compile(&Ucq::single(cq.clone()), &BTreeSet::new()).unwrap();
        // The equality runs at the step that binds Y, not at the end.
        let hoisted: usize = plan.cqs[0].steps.iter().map(|s| s.eq_checks.len()).sum();
        assert_eq!(hoisted + plan.cqs[0].pre_checks.len(), 1);
        check_agreement(&Ucq::single(cq), &inst);
    }

    #[test]
    fn params_match_substitution_semantics() {
        let (pool, _, _, q, inst) = setup();
        let a = pool.get("a").unwrap();
        // q+ = Q(p, Y) with parameter p; σ = {p ↦ a} must give the same
        // rows as substituting p := a and evaluating.
        let param = Var::new("p");
        let cq = ConjunctiveQuery {
            head: vec![param.clone(), Var::new("Y")],
            atoms: vec![(q, vec![QTerm::Var(param.clone()), QTerm::var("Y")])],
            equalities: vec![],
        };
        let params: BTreeSet<Var> = [param.clone()].into_iter().collect();
        let plan = CompiledPlan::compile(&Ucq::single(cq.clone()), &params).unwrap();
        let sigma: Assignment = [(param, a)].into_iter().collect();
        let rows = plan.eval(&EvalCtx::scan(&inst), &sigma);
        let substituted = ConjunctiveQuery {
            head: vec![Var::new("Y")],
            atoms: vec![(q, vec![QTerm::Const(a), QTerm::var("Y")])],
            equalities: vec![],
        };
        assert_eq!(rows, eval_ucq(&Ucq::single(substituted), &inst));
    }

    #[test]
    fn existential_steps_are_detected() {
        let (_, _, p, q, _) = setup();
        // head X: Q(X, Y), P(Z) — Z is dead, Y is projected away but the
        // step binding (X, Y) feeds the head via X.
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                (p, vec![QTerm::var("Z")]),
            ],
            equalities: vec![],
        };
        let plan = CompiledPlan::compile(&Ucq::single(cq), &BTreeSet::new()).unwrap();
        let steps = &plan.cqs[0].steps;
        let p_step = steps.iter().find(|s| s.rel == p).unwrap();
        let q_step = steps.iter().find(|s| s.rel == q).unwrap();
        assert!(p_step.existential);
        assert!(!q_step.existential);
    }

    #[test]
    fn rejects_unbound_head_and_equality_vars() {
        let (_, _, p, _, _) = setup();
        let bad_head = ConjunctiveQuery {
            head: vec![Var::new("Z")],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![],
        };
        assert!(matches!(
            CompiledPlan::compile(&Ucq::single(bad_head), &BTreeSet::new()),
            Err(PlanError::UnboundHeadVar(_))
        ));
        let bad_eq = ConjunctiveQuery {
            head: vec![],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![(QTerm::var("W"), QTerm::var("X"))],
        };
        assert!(matches!(
            CompiledPlan::compile(&Ucq::single(bad_eq), &BTreeSet::new()),
            Err(PlanError::UnboundEqualityVar(_))
        ));
    }

    #[test]
    fn stats_count_probes_and_scans() {
        let (_, _, p, q, inst) = setup();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("Y")],
            atoms: vec![
                (p, vec![QTerm::var("X")]),
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
            ],
            equalities: vec![],
        };
        let ucq = Ucq::single(cq);
        let plan = CompiledPlan::compile(&ucq, &BTreeSet::new()).unwrap();
        let stats = PlanStats::default();
        let index = InstanceIndex::build(&inst, plan.access_paths());
        plan.eval(
            &EvalCtx::with_index(&inst, &index).stats(&stats),
            &Assignment::new(),
        );
        let snap: std::collections::BTreeMap<_, _> = stats.snapshot().into_iter().collect();
        assert_eq!(snap["plan_evals"], 1);
        assert!(snap["index_probes"] > 0, "{snap:?}");
        // The unbound first step (P scan) cannot probe.
        assert!(snap["relation_scans"] > 0, "{snap:?}");
    }

    #[test]
    fn pre_checks_filter_before_joining() {
        let (pool, _, p, _, inst) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let cq = ConjunctiveQuery {
            head: vec![],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![(QTerm::Const(a), QTerm::Const(b))],
        };
        let plan = CompiledPlan::compile(&Ucq::single(cq.clone()), &BTreeSet::new()).unwrap();
        assert_eq!(plan.cqs[0].pre_checks.len(), 1);
        assert!(plan
            .eval(&EvalCtx::scan(&inst), &Assignment::new())
            .is_empty());
        assert_eq!(
            plan.eval(&EvalCtx::scan(&inst), &Assignment::new()),
            eval_ucq(&Ucq::single(cq), &inst)
        );
    }
}
