//! # dcds-folang
//!
//! First-order queries over relational instances, as used throughout the
//! DCDS framework (Bagheri Hariri et al., PODS 2013, Section 2):
//!
//! * the formula AST with variables, constants, atoms, equality, boolean
//!   connectives and quantifiers ([`ast`]);
//! * conjunctive queries and unions of conjunctive queries, the shape
//!   required of the positive part `q+` of effect specifications ([`ucq`]);
//! * a reference evaluator under the **active-domain semantics** the paper
//!   adopts (answers are assignments of free variables to the active domain
//!   of the instance) ([`eval`]);
//! * a join-based evaluator for (U)CQs, cross-checked against the reference
//!   evaluator by property tests ([`eval_cq`]);
//! * compiled evaluation plans for (U)CQs — numbered variable slots, join
//!   orders fixed at compile time, hoisted equality checks, and hash-index
//!   probing via [`dcds_reldata::InstanceIndex`] ([`plan`]);
//! * equality constraints `Q -> /\ z_i = y_i` and arbitrary FO sentences as
//!   integrity constraints ([`constraints`]);
//! * a safe-range (range-restriction) analyzer, the classical syntactic
//!   criterion for domain independence ([`safety`]);
//! * a lexer and parser for a datalog-flavoured surface syntax (uppercase
//!   identifiers are variables, lowercase or quoted identifiers are
//!   constants) ([`lexer`], [`parser`]);
//! * pretty printing ([`pretty`]).

pub mod ast;
pub mod constraints;
pub mod eval;
pub mod eval_cq;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod pretty;
pub mod safety;
pub mod ucq;

pub use ast::{Assignment, Formula, QTerm, Var};
pub use constraints::{EqualityConstraint, FoConstraint};
pub use eval::{answers, answers_over, holds, holds_closed, holds_unguided};
pub use eval_cq::eval_ucq;
pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::{parse_formula, ParseError, Parser, RelUse};
pub use plan::{CompiledPlan, EvalCtx, PlanError, PlanStats};
pub use safety::{is_safe_range, SafetyError};
pub use ucq::{ConjunctiveQuery, Ucq};

/// Errors produced when constructing or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An atom's argument count does not match the relation arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments in the atom.
        got: usize,
    },
    /// A free variable was not bound by the supplied assignment.
    UnboundVariable(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "atom over {relation} has {got} arguments but the relation has arity {expected}"
            ),
            QueryError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
        }
    }
}

impl std::error::Error for QueryError {}
