//! Lexer for the surface syntax shared by the query, µ-calculus, and DCDS
//! specification parsers.
//!
//! The token set is deliberately generous: downstream crates (`dcds-mucalc`,
//! `dcds-core`) reuse this lexer for their own grammars.

use std::fmt;

/// Kinds of tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (relation name, variable, constant, or keyword).
    Ident(String),
    /// A single-quoted identifier, always a constant (e.g. `'readyToVerify'`).
    Quoted(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `!`
    Bang,
    /// `->`
    Arrow,
    /// `<->`
    Equiv,
    /// `=>`
    FatArrow,
    /// `~>`
    Squiggle,
    /// `<>` (µ-calculus diamond)
    Diamond,
    /// `[]` (µ-calculus box)
    Box,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Quoted(s) => write!(f, "constant `'{s}'`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Neq => write!(f, "`!=`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Equiv => write!(f, "`<->`"),
            TokenKind::FatArrow => write!(f, "`=>`"),
            TokenKind::Squiggle => write!(f, "`~>`"),
            TokenKind::Diamond => write!(f, "`<>`"),
            TokenKind::Box => write!(f, "`[]`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

/// A source position (1-based line and column) carried on AST items and
/// diagnostics so tools can point at `file:line:col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Line (1-based; 0 only in [`Span::default`], meaning "no position").
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl Span {
    /// Build a span from a line/column pair.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// The position of a token.
    pub fn of(tok: &Token) -> Self {
        Span {
            line: tok.line,
            col: tok.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// The lexer. Comments run from `//` or `%` to end of line.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over a source string.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the entire input (the final token is always [`TokenKind::Eof`]).
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = match c {
                b'(' => self.simple(TokenKind::LParen),
                b')' => self.simple(TokenKind::RParen),
                b'{' => self.simple(TokenKind::LBrace),
                b'}' => self.simple(TokenKind::RBrace),
                b'[' => {
                    self.bump();
                    if self.peek() == Some(b']') {
                        self.bump();
                        TokenKind::Box
                    } else {
                        TokenKind::LBracket
                    }
                }
                b']' => self.simple(TokenKind::RBracket),
                b',' => self.simple(TokenKind::Comma),
                b'.' => self.simple(TokenKind::Dot),
                b':' => self.simple(TokenKind::Colon),
                b';' => self.simple(TokenKind::Semicolon),
                b'&' => self.simple(TokenKind::Amp),
                b'|' => self.simple(TokenKind::Pipe),
                b'*' => self.simple(TokenKind::Star),
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::FatArrow
                    } else {
                        TokenKind::Eq
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Neq
                    } else {
                        TokenKind::Bang
                    }
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Arrow
                    } else {
                        TokenKind::Minus
                    }
                }
                b'~' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Squiggle
                    } else {
                        return Err(self.error("expected `>` after `~`"));
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'>') => {
                            self.bump();
                            TokenKind::Diamond
                        }
                        Some(b'-') => {
                            // `<->` or `<-` (the latter is an error).
                            self.bump();
                            if self.peek() == Some(b'>') {
                                self.bump();
                                TokenKind::Equiv
                            } else {
                                return Err(self.error("expected `>` after `<-`"));
                            }
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => self.simple(TokenKind::Gt),
                b'\'' => {
                    self.bump();
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'\'' {
                            break;
                        }
                        self.bump();
                    }
                    if self.peek() != Some(b'\'') {
                        return Err(self.error("unterminated quoted constant"));
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.bump();
                    TokenKind::Quoted(text)
                }
                c if c.is_ascii_alphabetic() || c == b'_' || c.is_ascii_digit() => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    TokenKind::Ident(text)
                }
                other => {
                    return Err(self.error(&format!("unexpected character `{}`", other as char)))
                }
            };
            out.push(Token { kind, line, col });
        }
    }

    fn simple(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn error(&self, message: &str) -> LexError {
        LexError {
            message: message.to_owned(),
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.bump(),
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }
}

/// Convenience: tokenize a string.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_symbols() {
        assert_eq!(
            kinds("( ) { } [ ] , . : ; = != & | ! -> => ~> <-> <> [] < > - *"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Colon,
                TokenKind::Semicolon,
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Amp,
                TokenKind::Pipe,
                TokenKind::Bang,
                TokenKind::Arrow,
                TokenKind::FatArrow,
                TokenKind::Squiggle,
                TokenKind::Equiv,
                TokenKind::Diamond,
                TokenKind::Box,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn idents_and_quoted() {
        assert_eq!(
            kinds("Stud x 'readyToVerify' _tmp1"),
            vec![
                TokenKind::Ident("Stud".to_owned()),
                TokenKind::Ident("x".to_owned()),
                TokenKind::Quoted("readyToVerify".to_owned()),
                TokenKind::Ident("_tmp1".to_owned()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\nb % also comment\nc"),
            vec![
                TokenKind::Ident("a".to_owned()),
                TokenKind::Ident("b".to_owned()),
                TokenKind::Ident("c".to_owned()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn angle_disambiguation() {
        assert_eq!(
            kinds("<> <-> < -"),
            vec![
                TokenKind::Diamond,
                TokenKind::Equiv,
                TokenKind::Lt,
                TokenKind::Minus,
                TokenKind::Eof
            ]
        );
    }
}
