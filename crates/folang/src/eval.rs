//! Reference evaluator for first-order queries under the active-domain
//! semantics.
//!
//! Following the paper (footnote 3, Section 2.1): given a FO query `Q` and an
//! instance `I`, `ans(Q, I)` is the set of assignments θ from the free
//! variables of `Q` to the *active domain* of `I` such that `I |= Qθ`.
//! Quantifiers likewise range over `ADOM(I)`. This makes every formula
//! domain-independent by construction; [`crate::safety`] offers the classical
//! syntactic range-restriction check for callers who want to lint that their
//! queries would also be domain-independent under the natural semantics.

use crate::ast::{Assignment, Formula, QTerm, Var};
use crate::QueryError;
use dcds_reldata::{Instance, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Does the (boolean) formula hold in the instance under the assignment?
///
/// All free variables of `f` must be bound by `asg`; otherwise an
/// [`QueryError::UnboundVariable`] is returned.
pub fn holds(f: &Formula, inst: &Instance, asg: &Assignment) -> Result<bool, QueryError> {
    let adom = inst.active_domain();
    let mut env: BTreeMap<Var, Value> = asg.clone();
    eval(f, inst, &adom, &mut env)
}

/// Like [`holds`] but for closed formulas.
pub fn holds_closed(f: &Formula, inst: &Instance) -> Result<bool, QueryError> {
    holds(f, inst, &Assignment::new())
}

/// ABLATION ENTRY POINT: evaluate with atom-guided quantifier blocks
/// disabled — plain `|adom|^k` enumeration, the behaviour before the
/// guided-evaluation optimisation. Exists so the benchmark suite can
/// quantify what the optimisation buys; semantics are identical (asserted
/// by tests).
pub fn holds_unguided(f: &Formula, inst: &Instance, asg: &Assignment) -> Result<bool, QueryError> {
    let adom = inst.active_domain();
    let mut env: BTreeMap<Var, Value> = asg.clone();
    GUIDANCE_DISABLED.with(|flag| flag.set(true));
    let out = eval(f, inst, &adom, &mut env);
    GUIDANCE_DISABLED.with(|flag| flag.set(false));
    out
}

thread_local! {
    static GUIDANCE_DISABLED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn guidance_disabled() -> bool {
    GUIDANCE_DISABLED.with(|flag| flag.get())
}

/// The answers `ans(Q, I)`: all assignments of the free variables of `f` to
/// the active domain of `inst` under which `f` holds.
pub fn answers(f: &Formula, inst: &Instance) -> BTreeSet<Assignment> {
    let adom: Vec<Value> = inst.active_domain().into_iter().collect();
    answers_over(f, inst, &adom)
}

/// Answers with the free variables ranging over an explicit domain instead of
/// the active domain. (Quantifiers still range over the active domain, per
/// the paper's semantics.)
pub fn answers_over(f: &Formula, inst: &Instance, domain: &[Value]) -> BTreeSet<Assignment> {
    let free: Vec<Var> = f.free_vars().into_iter().collect();
    let adom = inst.active_domain();
    let mut out = BTreeSet::new();
    let mut env: BTreeMap<Var, Value> = BTreeMap::new();
    enumerate(f, inst, &adom, domain, &free, 0, &mut env, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    f: &Formula,
    inst: &Instance,
    adom: &BTreeSet<Value>,
    domain: &[Value],
    free: &[Var],
    k: usize,
    env: &mut BTreeMap<Var, Value>,
    out: &mut BTreeSet<Assignment>,
) {
    if k == free.len() {
        if eval(f, inst, adom, env).unwrap_or(false) {
            out.insert(env.clone());
        }
        return;
    }
    for &v in domain {
        env.insert(free[k].clone(), v);
        enumerate(f, inst, adom, domain, free, k + 1, env, out);
    }
    env.remove(&free[k]);
}

fn term_value(t: &QTerm, env: &BTreeMap<Var, Value>) -> Result<Value, QueryError> {
    match t {
        QTerm::Const(c) => Ok(*c),
        QTerm::Var(v) => env
            .get(v)
            .copied()
            .ok_or_else(|| QueryError::UnboundVariable(v.name().to_owned())),
    }
}

fn eval(
    f: &Formula,
    inst: &Instance,
    adom: &BTreeSet<Value>,
    env: &mut BTreeMap<Var, Value>,
) -> Result<bool, QueryError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Atom(rel, terms) => {
            let mut vals = Vec::with_capacity(terms.len());
            for t in terms {
                vals.push(term_value(t, env)?);
            }
            Ok(inst.contains(*rel, &dcds_reldata::Tuple::from(vals)))
        }
        Formula::Eq(t1, t2) => Ok(term_value(t1, env)? == term_value(t2, env)?),
        Formula::Not(g) => Ok(!eval(g, inst, adom, env)?),
        Formula::And(g, h) => Ok(eval(g, inst, adom, env)? && eval(h, inst, adom, env)?),
        Formula::Or(g, h) => Ok(eval(g, inst, adom, env)? || eval(h, inst, adom, env)?),
        Formula::Implies(g, h) => Ok(!eval(g, inst, adom, env)? || eval(h, inst, adom, env)?),
        Formula::Exists(_, _) => eval_exists_block(f, inst, adom, env),
        Formula::Forall(_, _) => eval_forall_block(f, inst, adom, env),
    }
}

/// Evaluate a maximal `∃x₁...∃xₖ. body` block. When the body is a
/// conjunction of atoms (and other conjuncts), a witnessing assignment
/// must make every conjunct atom true, so it suffices to join the atoms'
/// *tuples* — binding block variables guard by guard — instead of
/// enumerating `|adom|^k` assignments. Block variables no guard atom
/// mentions still range over the active domain. This is the guided
/// evaluation that makes the paper's guard-shaped constraints
/// (`∀~x. R(~x) → ...`, `∃~x. R(~x) ∧ ...`) tractable; it subsumes the
/// earlier single-covering-atom special case, which could not handle
/// multi-atom guards like `E(X,V) ∧ E(Y,V) ∧ E(Z,V)`.
fn eval_exists_block(
    f: &Formula,
    inst: &Instance,
    adom: &BTreeSet<Value>,
    env: &mut BTreeMap<Var, Value>,
) -> Result<bool, QueryError> {
    let mut block: Vec<&Var> = Vec::new();
    let mut body = f;
    while let Formula::Exists(v, g) = body {
        block.push(v);
        body = g;
    }
    if !guidance_disabled() {
        let guards = guard_chain(body, &block, collect_conjunct_atoms);
        if !guards.is_empty() {
            return guided(inst, adom, env, &block, &guards, body, true);
        }
    }
    enumerate_block(inst, adom, env, &block, body, true)
}

/// Evaluate a maximal `∀x₁...∀xₖ. body` block; when the body is
/// `guard → ψ`, only assignments satisfying every conjunct atom of the
/// guard can falsify it, so the same atom join drives the search for a
/// counterexample.
fn eval_forall_block(
    f: &Formula,
    inst: &Instance,
    adom: &BTreeSet<Value>,
    env: &mut BTreeMap<Var, Value>,
) -> Result<bool, QueryError> {
    let mut block: Vec<&Var> = Vec::new();
    let mut body = f;
    while let Formula::Forall(v, g) = body {
        block.push(v);
        body = g;
    }
    if !guidance_disabled() {
        if let Formula::Implies(lhs, _) = body {
            let guards = guard_chain(lhs, &block, collect_conjunct_atoms);
            if !guards.is_empty() {
                return guided(inst, adom, env, &block, &guards, body, false);
            }
        }
    }
    enumerate_block(inst, adom, env, &block, body, false)
}

/// Greedily select a join sequence from the conjunct atoms produced by
/// `atoms_of`: each picked atom must bind at least one block variable no
/// earlier pick binds (most new variables first, ties broken by conjunct
/// order). Selection stops when no atom adds coverage; variables left
/// uncovered fall back to active-domain enumeration inside [`guided`].
/// Returns an empty vector when no atom binds any block variable.
fn guard_chain<'a>(
    body: &'a Formula,
    block: &[&Var],
    atoms_of: impl Fn(&'a Formula) -> Vec<&'a Formula>,
) -> Vec<&'a Formula> {
    let atoms = atoms_of(body);
    fn block_vars_of<'a>(a: &'a Formula, block: &[&Var]) -> Vec<&'a Var> {
        let Formula::Atom(_, terms) = a else {
            return Vec::new();
        };
        let mut vs: Vec<&Var> = Vec::new();
        for t in terms {
            if let QTerm::Var(v) = t {
                if block.contains(&v) && !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        vs
    }
    let mut chain: Vec<&Formula> = Vec::new();
    let mut covered: Vec<&Var> = Vec::new();
    loop {
        let mut best: Option<(usize, usize)> = None; // (new vars, atom index)
        for (i, a) in atoms.iter().enumerate() {
            if chain.iter().any(|c| std::ptr::eq(*c, *a)) {
                continue;
            }
            let fresh = block_vars_of(a, block)
                .iter()
                .filter(|v| !covered.contains(*v))
                .count();
            if fresh > 0 && best.is_none_or(|(n, _)| fresh > n) {
                best = Some((fresh, i));
            }
        }
        let Some((_, i)) = best else { break };
        for v in block_vars_of(atoms[i], block) {
            if !covered.contains(&v) {
                covered.push(v);
            }
        }
        chain.push(atoms[i]);
        if covered.len() == block.len() {
            break;
        }
    }
    chain
}

/// Top-level conjunct atoms of a formula.
fn collect_conjunct_atoms(f: &Formula) -> Vec<&Formula> {
    match f {
        Formula::And(g, h) => {
            let mut out = collect_conjunct_atoms(g);
            out.extend(collect_conjunct_atoms(h));
            out
        }
        Formula::Atom(_, _) => vec![f],
        _ => Vec::new(),
    }
}

/// Guided evaluation: join the guard atoms' tuples to bind the block,
/// enumerating any block variables the guards leave uncovered over the
/// active domain. `existential`: true for ∃-blocks (return true on a
/// witnessing assignment), false for ∀-blocks (return false on a
/// falsifying one). The verdict is a pure boolean, so join order cannot
/// change the result — only how fast it is reached.
fn guided(
    inst: &Instance,
    adom: &BTreeSet<Value>,
    env: &mut BTreeMap<Var, Value>,
    block: &[&Var],
    guards: &[&Formula],
    body: &Formula,
    existential: bool,
) -> Result<bool, QueryError> {
    // The block's quantifiers shadow any outer bindings of the same
    // names: strip them for the duration of the join, so an env entry for
    // a block variable always means "bound by an earlier guard".
    let saved: Vec<(Var, Option<Value>)> = block
        .iter()
        .map(|v| ((*v).clone(), env.remove(*v)))
        .collect();
    let out = guided_join(inst, adom, env, block, guards, body, existential);
    for (v, old) in saved {
        restore(env, &v, old);
    }
    out
}

/// The recursive join behind [`guided`]; see there. Expects block
/// variables in `env` to be exactly those bound by earlier guards.
fn guided_join(
    inst: &Instance,
    adom: &BTreeSet<Value>,
    env: &mut BTreeMap<Var, Value>,
    block: &[&Var],
    guards: &[&Formula],
    body: &Formula,
    existential: bool,
) -> Result<bool, QueryError> {
    let Some((guard, rest_guards)) = guards.split_first() else {
        // Every guard consumed: enumerate whatever block variables the
        // chain left unbound, then evaluate the body.
        let uncovered: Vec<&Var> = block
            .iter()
            .copied()
            .filter(|v| !env.contains_key(*v))
            .collect();
        return enumerate_block(inst, adom, env, &uncovered, body, existential);
    };
    let Formula::Atom(rel, terms) = guard else {
        unreachable!("guard_chain returns atoms");
    };
    let mut decided = None;
    'tuples: for tuple in inst.tuples(*rel) {
        // Unify the atom against the tuple (respecting already-bound vars
        // from outer scopes, earlier guards, and earlier positions).
        let mut local: BTreeMap<Var, Value> = BTreeMap::new();
        for (t, &val) in terms.iter().zip(tuple.values()) {
            match t {
                QTerm::Const(c) => {
                    if *c != val {
                        continue 'tuples;
                    }
                }
                QTerm::Var(v) => {
                    match local.get(v).copied().or_else(|| env.get(v).copied()) {
                        Some(b) if b != val => continue 'tuples,
                        Some(_) => {}
                        None => {
                            if block.contains(&v) {
                                local.insert(v.clone(), val);
                            } else {
                                // A free variable of the atom that the
                                // caller left unbound: error like the
                                // naive path would.
                                return Err(QueryError::UnboundVariable(v.name().to_owned()));
                            }
                        }
                    }
                }
            }
        }
        for (v, val) in &local {
            env.insert(v.clone(), *val);
        }
        let verdict = guided_join(inst, adom, env, block, rest_guards, body, existential)?;
        // Undo this tuple's bindings so the next tuple unifies freshly.
        for v in local.keys() {
            env.remove(v);
        }
        if verdict == existential {
            decided = Some(existential);
            break;
        }
    }
    Ok(decided.unwrap_or(!existential))
}

/// Fallback: plain enumeration of the block over the active domain.
fn enumerate_block(
    inst: &Instance,
    adom: &BTreeSet<Value>,
    env: &mut BTreeMap<Var, Value>,
    block: &[&Var],
    body: &Formula,
    existential: bool,
) -> Result<bool, QueryError> {
    fn rec(
        inst: &Instance,
        adom: &BTreeSet<Value>,
        env: &mut BTreeMap<Var, Value>,
        block: &[&Var],
        body: &Formula,
        existential: bool,
    ) -> Result<bool, QueryError> {
        let Some((first, rest)) = block.split_first() else {
            return eval(body, inst, adom, env);
        };
        let v: &Var = first;
        let saved = env.get(v).copied();
        let mut decided = None;
        for &d in adom.iter() {
            env.insert(v.clone(), d);
            let verdict = rec(inst, adom, env, rest, body, existential)?;
            if verdict == existential {
                decided = Some(existential);
                break;
            }
        }
        restore(env, v, saved);
        Ok(decided.unwrap_or(!existential))
    }
    rec(inst, adom, env, block, body, existential)
}

fn restore(env: &mut BTreeMap<Var, Value>, v: &Var, saved: Option<Value>) {
    match saved {
        Some(old) => {
            env.insert(v.clone(), old);
        }
        None => {
            env.remove(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, RelId, Schema, Tuple};

    fn setup() -> (ConstantPool, Schema, RelId, RelId, Instance) {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 2).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let inst = Instance::from_facts([
            (p, Tuple::from([a])),
            (q, Tuple::from([a, b])),
            (q, Tuple::from([b, b])),
        ]);
        (pool, schema, p, q, inst)
    }

    #[test]
    fn atoms_and_equality() {
        let (pool, _, p, _, inst) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        assert!(holds_closed(&Formula::Atom(p, vec![QTerm::Const(a)]), &inst).unwrap());
        assert!(!holds_closed(&Formula::Atom(p, vec![QTerm::Const(b)]), &inst).unwrap());
        assert!(holds_closed(&Formula::eq(QTerm::Const(a), QTerm::Const(a)), &inst).unwrap());
        assert!(!holds_closed(&Formula::eq(QTerm::Const(a), QTerm::Const(b)), &inst).unwrap());
    }

    #[test]
    fn quantifiers_range_over_adom() {
        let (_, _, p, _, inst) = setup();
        // exists X. P(X)
        let f = Formula::exists("X", Formula::Atom(p, vec![QTerm::var("X")]));
        assert!(holds_closed(&f, &inst).unwrap());
        // forall X. P(X) — false, b is in adom but not in P.
        let g = Formula::forall("X", Formula::Atom(p, vec![QTerm::var("X")]));
        assert!(!holds_closed(&g, &inst).unwrap());
    }

    #[test]
    fn answers_enumerate_free_vars() {
        let (pool, _, _, q, inst) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        // Q(X, Y)
        let f = Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("Y")]);
        let ans = answers(&f, &inst);
        assert_eq!(ans.len(), 2);
        let mut expected1 = Assignment::new();
        expected1.insert(Var::new("X"), a);
        expected1.insert(Var::new("Y"), b);
        assert!(ans.contains(&expected1));
        let mut expected2 = Assignment::new();
        expected2.insert(Var::new("X"), b);
        expected2.insert(Var::new("Y"), b);
        assert!(ans.contains(&expected2));
    }

    #[test]
    fn negation_is_wrt_active_domain() {
        let (pool, _, p, _, inst) = setup();
        let b = pool.get("b").unwrap();
        // !P(X): answers are adom values not in P, i.e. {b}.
        let f = Formula::Atom(p, vec![QTerm::var("X")]).not();
        let ans = answers(&f, &inst);
        assert_eq!(ans.len(), 1);
        let mut expected = Assignment::new();
        expected.insert(Var::new("X"), b);
        assert!(ans.contains(&expected));
    }

    #[test]
    fn implication_and_joins() {
        let (_, _, p, q, inst) = setup();
        // forall X. P(X) -> exists Y. Q(X, Y)
        let f = Formula::forall(
            "X",
            Formula::Atom(p, vec![QTerm::var("X")]).implies(Formula::exists(
                "Y",
                Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("Y")]),
            )),
        );
        assert!(holds_closed(&f, &inst).unwrap());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let (_, _, p, _, inst) = setup();
        let f = Formula::Atom(p, vec![QTerm::var("X")]);
        assert_eq!(
            holds_closed(&f, &inst),
            Err(QueryError::UnboundVariable("X".to_owned()))
        );
    }

    #[test]
    fn true_query_has_one_empty_answer() {
        let (_, _, _, _, inst) = setup();
        let ans = answers(&Formula::True, &inst);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Assignment::new()));
    }

    #[test]
    fn guided_blocks_agree_with_enumeration() {
        // ∀-block with a covering guard atom: the guided path must agree
        // with plain enumeration on satisfied and violated instances.
        let (pool, _, p, q, inst) = setup();
        let a = pool.get("a").unwrap();
        // ∀X,Y. Q(X,Y) → P(X): Q = {(a,b),(b,b)}, P = {a} → fails at (b,b).
        let f = Formula::forall(
            "X",
            Formula::forall(
                "Y",
                Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("Y")])
                    .implies(Formula::Atom(p, vec![QTerm::var("X")])),
            ),
        );
        assert!(!holds_closed(&f, &inst).unwrap());
        // ∀X,Y. Q(X,Y) → Y = b: holds.
        let b = pool.get("b").unwrap();
        let g = Formula::forall(
            "X",
            Formula::forall(
                "Y",
                Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("Y")])
                    .implies(Formula::eq(QTerm::var("Y"), QTerm::Const(b))),
            ),
        );
        assert!(holds_closed(&g, &inst).unwrap());
        // ∃-block guided by an atom with a constant: ∃Y. Q(a, Y) ∧ Y = b.
        let h = Formula::exists(
            "Y",
            Formula::Atom(q, vec![QTerm::Const(a), QTerm::var("Y")])
                .and(Formula::eq(QTerm::var("Y"), QTerm::Const(b))),
        );
        assert!(holds_closed(&h, &inst).unwrap());
        // Guard with a repeated variable: ∃X. Q(X, X) — only (b,b).
        let r = Formula::exists(
            "X",
            Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("X")]),
        );
        assert!(holds_closed(&r, &inst).unwrap());
        // Same but over P(b)... Q(a,a) absent: ∃X. Q(X,X) ∧ P(X) fails
        // (only b satisfies Q(X,X), and P(b) is false).
        let s = Formula::exists(
            "X",
            Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("X")])
                .and(Formula::Atom(p, vec![QTerm::var("X")])),
        );
        assert!(!holds_closed(&s, &inst).unwrap());
    }

    #[test]
    fn guided_block_respects_outer_bindings() {
        // X bound by an outer quantifier; the inner guided block's guard
        // mentions X: unification must respect the outer binding.
        let (pool, _, p, q, inst) = setup();
        let _ = pool;
        // ∃X. P(X) ∧ (∀Y. Q(X, Y) → Y = Y): X = a works.
        let f = Formula::exists(
            "X",
            Formula::Atom(p, vec![QTerm::var("X")]).and(Formula::forall(
                "Y",
                Formula::Atom(q, vec![QTerm::var("X"), QTerm::var("Y")])
                    .implies(Formula::eq(QTerm::var("Y"), QTerm::var("Y"))),
            )),
        );
        assert!(holds_closed(&f, &inst).unwrap());
    }

    #[test]
    fn empty_instance_quantifiers() {
        let inst = Instance::new();
        // exists X. X = X is false over an empty adom; forall X. false is true.
        let f = Formula::exists("X", Formula::eq(QTerm::var("X"), QTerm::var("X")));
        assert!(!holds_closed(&f, &inst).unwrap());
        let g = Formula::forall("X", Formula::False);
        assert!(holds_closed(&g, &inst).unwrap());
    }
}
