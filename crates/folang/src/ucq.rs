//! Conjunctive queries and unions of conjunctive queries.
//!
//! Effect specifications in a DCDS are of the form `q+ ∧ Q- ⇝ E` where `q+`
//! is a UCQ (Section 2.2). This module provides first-class (U)CQs with a
//! conversion to general [`Formula`]s and validation.

use crate::ast::{Formula, QTerm, Var};
use crate::QueryError;
use dcds_reldata::{RelId, Schema};
use std::collections::BTreeSet;

/// A conjunctive query: `head(~x) :- atoms, equalities` where the head
/// variables are the free (distinguished) variables and every other variable
/// is existentially quantified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Distinguished (free) variables.
    pub head: Vec<Var>,
    /// Relational atoms.
    pub atoms: Vec<(RelId, Vec<QTerm>)>,
    /// Equality side-conditions, evaluated after the join.
    pub equalities: Vec<(QTerm, QTerm)>,
}

impl ConjunctiveQuery {
    /// The boolean query `true` (no head, no atoms).
    pub fn truth() -> Self {
        ConjunctiveQuery {
            head: Vec::new(),
            atoms: Vec::new(),
            equalities: Vec::new(),
        }
    }

    /// All variables appearing in the atoms.
    pub fn atom_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for (_, terms) in &self.atoms {
            for t in terms {
                if let QTerm::Var(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        out
    }

    /// Validate the query: arities match the schema, and every head and
    /// equality variable occurs in some atom (the *range restriction* that
    /// makes CQ evaluation domain-independent).
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        for (rel, terms) in &self.atoms {
            let expected = schema.arity(*rel);
            if terms.len() != expected {
                return Err(QueryError::ArityMismatch {
                    relation: schema.name(*rel).to_owned(),
                    expected,
                    got: terms.len(),
                });
            }
        }
        let avars = self.atom_vars();
        for v in &self.head {
            if !avars.contains(v) {
                return Err(QueryError::UnboundVariable(v.name().to_owned()));
            }
        }
        for (t1, t2) in &self.equalities {
            for t in [t1, t2] {
                if let QTerm::Var(v) = t {
                    if !avars.contains(v) {
                        return Err(QueryError::UnboundVariable(v.name().to_owned()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Convert to a general formula: `∃ (atom_vars \ head). /\atoms /\ eqs`.
    pub fn to_formula(&self) -> Formula {
        let mut body = Formula::conj(
            self.atoms
                .iter()
                .map(|(rel, terms)| Formula::Atom(*rel, terms.clone()))
                .chain(
                    self.equalities
                        .iter()
                        .map(|(t1, t2)| Formula::Eq(t1.clone(), t2.clone())),
                ),
        );
        let head: BTreeSet<&Var> = self.head.iter().collect();
        // Quantify the non-distinguished variables (in reverse deterministic
        // order so the outermost quantifier binds the least variable).
        let existential: Vec<Var> = self
            .atom_vars()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect();
        for v in existential.into_iter().rev() {
            body = Formula::Exists(v, Box::new(body));
        }
        body
    }
}

/// A union of conjunctive queries. All disjuncts must share the same head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucq {
    /// Disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// A UCQ with a single disjunct.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        Ucq {
            disjuncts: vec![cq],
        }
    }

    /// The boolean query `true`.
    pub fn truth() -> Self {
        Ucq::single(ConjunctiveQuery::truth())
    }

    /// The shared head (empty for a boolean query).
    pub fn head(&self) -> &[Var] {
        self.disjuncts.first().map_or(&[], |cq| &cq.head)
    }

    /// Validate each disjunct and the head agreement.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        let head: Option<BTreeSet<&Var>> =
            self.disjuncts.first().map(|cq| cq.head.iter().collect());
        for cq in &self.disjuncts {
            cq.validate(schema)?;
            let this: BTreeSet<&Var> = cq.head.iter().collect();
            if Some(&this) != head.as_ref() {
                return Err(QueryError::UnboundVariable(
                    "UCQ disjuncts disagree on head variables".to_owned(),
                ));
            }
        }
        Ok(())
    }

    /// Convert to a general formula (disjunction of the disjunct formulas).
    pub fn to_formula(&self) -> Formula {
        Formula::disj(self.disjuncts.iter().map(ConjunctiveQuery::to_formula))
    }

    /// Recognise a formula as a UCQ, the gate for compiling it into an
    /// evaluation plan ([`crate::plan`]).
    ///
    /// Accepted shape: a top-level disjunction whose disjuncts are
    /// existential blocks over conjunctions of atoms, equalities, and
    /// `true`. Returns `None` outside that fragment, and — conservatively —
    /// whenever the equivalence between the converted query's natural
    /// semantics and the formula's active-domain semantics would be in
    /// doubt:
    ///
    /// * a disjunct whose free variables differ from the whole formula's
    ///   (the active-domain evaluator pads the missing variables over the
    ///   domain; a UCQ head cannot),
    /// * a vacuous or shadowing quantifier (`∃v` with `v` not free in the
    ///   body, or rebinding an outer variable).
    ///
    /// The returned query is *not* guaranteed range-restricted; plan
    /// compilation re-checks that separately.
    pub fn from_formula(f: &Formula) -> Option<Ucq> {
        let free: BTreeSet<Var> = f.free_vars();
        let mut head: Vec<Var> = free.iter().cloned().collect();
        head.sort();
        let mut flat = Vec::new();
        flatten_or(f, &mut flat);
        let mut disjuncts = Vec::new();
        for g in flat {
            if matches!(g, Formula::False) {
                continue; // a false disjunct contributes no answers
            }
            if g.free_vars() != free {
                return None;
            }
            disjuncts.push(disjunct_to_cq(g, head.clone())?);
        }
        Some(Ucq { disjuncts })
    }
}

/// Flatten nested `Or` into a disjunct list.
fn flatten_or<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
    match f {
        Formula::Or(g, h) => {
            flatten_or(g, out);
            flatten_or(h, out);
        }
        _ => out.push(f),
    }
}

/// Convert one disjunct `∃x₁...∃xₖ. conj` into a CQ with the given head.
fn disjunct_to_cq(mut f: &Formula, head: Vec<Var>) -> Option<ConjunctiveQuery> {
    let mut scope: BTreeSet<&Var> = head.iter().collect();
    while let Formula::Exists(v, body) = f {
        // Reject shadowing (substitution semantics would differ) and
        // vacuous quantification (∃v over an empty active domain is false
        // even when the body is satisfiable, unlike dropping v).
        if !scope.insert(v) || !body.free_vars().contains(v) {
            return None;
        }
        f = body;
    }
    let mut atoms = Vec::new();
    let mut equalities = Vec::new();
    collect_conjuncts(f, &mut atoms, &mut equalities)?;
    Some(ConjunctiveQuery {
        head,
        atoms,
        equalities,
    })
}

/// Collect a conjunction of atoms / equalities / `true` leaves.
fn collect_conjuncts(
    f: &Formula,
    atoms: &mut Vec<(RelId, Vec<QTerm>)>,
    equalities: &mut Vec<(QTerm, QTerm)>,
) -> Option<()> {
    match f {
        Formula::True => Some(()),
        Formula::Atom(rel, terms) => {
            atoms.push((*rel, terms.clone()));
            Some(())
        }
        Formula::Eq(t1, t2) => {
            equalities.push((t1.clone(), t2.clone()));
            Some(())
        }
        Formula::And(g, h) => {
            collect_conjuncts(g, atoms, equalities)?;
            collect_conjuncts(h, atoms, equalities)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::Schema;

    fn schema() -> (Schema, RelId, RelId) {
        let mut s = Schema::new();
        let p = s.add_relation("P", 1).unwrap();
        let q = s.add_relation("Q", 2).unwrap();
        (s, p, q)
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (s, p, q) = schema();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                (p, vec![QTerm::var("Y")]),
            ],
            equalities: vec![],
        };
        assert!(cq.validate(&s).is_ok());
    }

    #[test]
    fn validate_rejects_unbound_head() {
        let (s, p, _) = schema();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("Z")],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![],
        };
        assert!(cq.validate(&s).is_err());
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let (s, p, _) = schema();
        let cq = ConjunctiveQuery {
            head: vec![],
            atoms: vec![(p, vec![QTerm::var("X"), QTerm::var("Y")])],
            equalities: vec![],
        };
        assert!(cq.validate(&s).is_err());
    }

    #[test]
    fn to_formula_quantifies_nondistinguished() {
        let (_, p, q) = schema();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                (p, vec![QTerm::var("Y")]),
            ],
            equalities: vec![],
        };
        let f = cq.to_formula();
        assert_eq!(f.free_vars(), [Var::new("X")].into_iter().collect());
    }

    #[test]
    fn ucq_head_agreement() {
        let (s, p, q) = schema();
        let cq1 = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![],
        };
        let cq2 = ConjunctiveQuery {
            head: vec![Var::new("Y")],
            atoms: vec![(q, vec![QTerm::var("Y"), QTerm::var("Y")])],
            equalities: vec![],
        };
        let bad = Ucq {
            disjuncts: vec![cq1.clone(), cq2],
        };
        assert!(bad.validate(&s).is_err());
        let good = Ucq {
            disjuncts: vec![cq1.clone(), cq1],
        };
        assert!(good.validate(&s).is_ok());
    }

    #[test]
    fn truth_is_closed_and_valid() {
        let (s, _, _) = schema();
        let t = Ucq::truth();
        assert!(t.validate(&s).is_ok());
        assert_eq!(t.to_formula().free_vars().len(), 0);
    }
}
