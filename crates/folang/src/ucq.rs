//! Conjunctive queries and unions of conjunctive queries.
//!
//! Effect specifications in a DCDS are of the form `q+ ∧ Q- ⇝ E` where `q+`
//! is a UCQ (Section 2.2). This module provides first-class (U)CQs with a
//! conversion to general [`Formula`]s and validation.

use crate::ast::{Formula, QTerm, Var};
use crate::QueryError;
use dcds_reldata::{RelId, Schema};
use std::collections::BTreeSet;

/// A conjunctive query: `head(~x) :- atoms, equalities` where the head
/// variables are the free (distinguished) variables and every other variable
/// is existentially quantified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Distinguished (free) variables.
    pub head: Vec<Var>,
    /// Relational atoms.
    pub atoms: Vec<(RelId, Vec<QTerm>)>,
    /// Equality side-conditions, evaluated after the join.
    pub equalities: Vec<(QTerm, QTerm)>,
}

impl ConjunctiveQuery {
    /// The boolean query `true` (no head, no atoms).
    pub fn truth() -> Self {
        ConjunctiveQuery {
            head: Vec::new(),
            atoms: Vec::new(),
            equalities: Vec::new(),
        }
    }

    /// All variables appearing in the atoms.
    pub fn atom_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for (_, terms) in &self.atoms {
            for t in terms {
                if let QTerm::Var(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        out
    }

    /// Validate the query: arities match the schema, and every head and
    /// equality variable occurs in some atom (the *range restriction* that
    /// makes CQ evaluation domain-independent).
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        for (rel, terms) in &self.atoms {
            let expected = schema.arity(*rel);
            if terms.len() != expected {
                return Err(QueryError::ArityMismatch {
                    relation: schema.name(*rel).to_owned(),
                    expected,
                    got: terms.len(),
                });
            }
        }
        let avars = self.atom_vars();
        for v in &self.head {
            if !avars.contains(v) {
                return Err(QueryError::UnboundVariable(v.name().to_owned()));
            }
        }
        for (t1, t2) in &self.equalities {
            for t in [t1, t2] {
                if let QTerm::Var(v) = t {
                    if !avars.contains(v) {
                        return Err(QueryError::UnboundVariable(v.name().to_owned()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Convert to a general formula: `∃ (atom_vars \ head). /\atoms /\ eqs`.
    pub fn to_formula(&self) -> Formula {
        let mut body = Formula::conj(
            self.atoms
                .iter()
                .map(|(rel, terms)| Formula::Atom(*rel, terms.clone()))
                .chain(
                    self.equalities
                        .iter()
                        .map(|(t1, t2)| Formula::Eq(t1.clone(), t2.clone())),
                ),
        );
        let head: BTreeSet<&Var> = self.head.iter().collect();
        // Quantify the non-distinguished variables (in reverse deterministic
        // order so the outermost quantifier binds the least variable).
        let existential: Vec<Var> = self
            .atom_vars()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect();
        for v in existential.into_iter().rev() {
            body = Formula::Exists(v, Box::new(body));
        }
        body
    }
}

/// A union of conjunctive queries. All disjuncts must share the same head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucq {
    /// Disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// A UCQ with a single disjunct.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        Ucq {
            disjuncts: vec![cq],
        }
    }

    /// The boolean query `true`.
    pub fn truth() -> Self {
        Ucq::single(ConjunctiveQuery::truth())
    }

    /// The shared head (empty for a boolean query).
    pub fn head(&self) -> &[Var] {
        self.disjuncts.first().map_or(&[], |cq| &cq.head)
    }

    /// Validate each disjunct and the head agreement.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        let head: Option<BTreeSet<&Var>> =
            self.disjuncts.first().map(|cq| cq.head.iter().collect());
        for cq in &self.disjuncts {
            cq.validate(schema)?;
            let this: BTreeSet<&Var> = cq.head.iter().collect();
            if Some(&this) != head.as_ref() {
                return Err(QueryError::UnboundVariable(
                    "UCQ disjuncts disagree on head variables".to_owned(),
                ));
            }
        }
        Ok(())
    }

    /// Convert to a general formula (disjunction of the disjunct formulas).
    pub fn to_formula(&self) -> Formula {
        Formula::disj(self.disjuncts.iter().map(ConjunctiveQuery::to_formula))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::Schema;

    fn schema() -> (Schema, RelId, RelId) {
        let mut s = Schema::new();
        let p = s.add_relation("P", 1).unwrap();
        let q = s.add_relation("Q", 2).unwrap();
        (s, p, q)
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (s, p, q) = schema();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                (p, vec![QTerm::var("Y")]),
            ],
            equalities: vec![],
        };
        assert!(cq.validate(&s).is_ok());
    }

    #[test]
    fn validate_rejects_unbound_head() {
        let (s, p, _) = schema();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("Z")],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![],
        };
        assert!(cq.validate(&s).is_err());
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let (s, p, _) = schema();
        let cq = ConjunctiveQuery {
            head: vec![],
            atoms: vec![(p, vec![QTerm::var("X"), QTerm::var("Y")])],
            equalities: vec![],
        };
        assert!(cq.validate(&s).is_err());
    }

    #[test]
    fn to_formula_quantifies_nondistinguished() {
        let (_, p, q) = schema();
        let cq = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![
                (q, vec![QTerm::var("X"), QTerm::var("Y")]),
                (p, vec![QTerm::var("Y")]),
            ],
            equalities: vec![],
        };
        let f = cq.to_formula();
        assert_eq!(f.free_vars(), [Var::new("X")].into_iter().collect());
    }

    #[test]
    fn ucq_head_agreement() {
        let (s, p, q) = schema();
        let cq1 = ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![(p, vec![QTerm::var("X")])],
            equalities: vec![],
        };
        let cq2 = ConjunctiveQuery {
            head: vec![Var::new("Y")],
            atoms: vec![(q, vec![QTerm::var("Y"), QTerm::var("Y")])],
            equalities: vec![],
        };
        let bad = Ucq {
            disjuncts: vec![cq1.clone(), cq2],
        };
        assert!(bad.validate(&s).is_err());
        let good = Ucq {
            disjuncts: vec![cq1.clone(), cq1],
        };
        assert!(good.validate(&s).is_ok());
    }

    #[test]
    fn truth_is_closed_and_valid() {
        let (s, _, _) = schema();
        let t = Ucq::truth();
        assert!(t.validate(&s).is_ok());
        assert_eq!(t.to_formula().free_vars().len(), 0);
    }
}
