//! Abstract syntax of first-order queries.

use dcds_reldata::{RelId, Schema, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A first-order variable. Variables are interned strings with cheap clones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Make a variable with the given name.
    pub fn new(name: &str) -> Self {
        Var(Arc::from(name))
    }

    /// Variable name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term inside a query: a variable or a constant.
///
/// (Skolem terms representing service calls never occur in *queries* — they
/// only occur in effect heads, which live in `dcds-core`.)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QTerm {
    /// A variable.
    Var(Var),
    /// A constant from the domain.
    Const(Value),
}

impl QTerm {
    /// Variable constructor from a name.
    pub fn var(name: &str) -> Self {
        QTerm::Var(Var::new(name))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            QTerm::Var(v) => Some(v),
            QTerm::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            QTerm::Var(_) => None,
            QTerm::Const(c) => Some(*c),
        }
    }
}

/// An assignment of variables to constants (a substitution θ).
pub type Assignment = BTreeMap<Var, Value>;

/// A first-order formula over a relational schema.
///
/// Connectives beyond the core (∨, ∀, →) are represented directly rather
/// than as abbreviations, which keeps parsing and pretty-printing faithful;
/// the evaluators treat them natively.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// The always-true formula.
    True,
    /// The always-false formula.
    False,
    /// A relational atom `R(t_1, ..., t_n)`.
    Atom(RelId, Vec<QTerm>),
    /// Equality `t_1 = t_2`.
    Eq(QTerm, QTerm),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication (kept explicit for readability of constraints).
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Var, Box<Formula>),
    /// Universal quantification.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// `t1 = t2`.
    pub fn eq(t1: QTerm, t2: QTerm) -> Formula {
        Formula::Eq(t1, t2)
    }

    /// `t1 != t2`.
    pub fn neq(t1: QTerm, t2: QTerm) -> Formula {
        Formula::Not(Box::new(Formula::Eq(t1, t2)))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Binary conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Binary disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Existential closure over one variable.
    pub fn exists(v: impl Into<Var>, body: Formula) -> Formula {
        Formula::Exists(v.into(), Box::new(body))
    }

    /// Universal closure over one variable.
    pub fn forall(v: impl Into<Var>, body: Formula) -> Formula {
        Formula::Forall(v.into(), Box::new(body))
    }

    /// Conjunction of a list (True if empty).
    pub fn conj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::True,
            Some(first) => it.fold(first, Formula::and),
        }
    }

    /// Disjunction of a list (False if empty).
    pub fn disj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::False,
            Some(first) => it.fold(first, Formula::or),
        }
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let QTerm::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(t1, t2) => {
                for t in [t1, t2] {
                    if let QTerm::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                f.collect_free(bound, out);
                g.collect_free(bound, out);
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                let fresh = bound.insert(v.clone());
                f.collect_free(bound, out);
                if fresh {
                    bound.remove(v);
                }
            }
        }
    }

    /// The set of constants mentioned in the formula.
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<Value>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let QTerm::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Formula::Eq(t1, t2) => {
                for t in [t1, t2] {
                    if let QTerm::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Formula::Not(f) => f.collect_constants(out),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                f.collect_constants(out);
                g.collect_constants(out);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_constants(out),
        }
    }

    /// Relations mentioned in the formula.
    pub fn relations(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<RelId>) {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => {}
            Formula::Atom(rel, _) => {
                out.insert(*rel);
            }
            Formula::Not(f) => f.collect_relations(out),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                f.collect_relations(out);
                g.collect_relations(out);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_relations(out),
        }
    }

    /// Substitute free occurrences of variables by terms (capture is not
    /// handled: the replacement terms must not contain variables bound in
    /// the formula — which holds for the ground substitutions the DCDS
    /// semantics performs).
    pub fn substitute(&self, subst: &BTreeMap<Var, QTerm>) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(rel, terms) => {
                Formula::Atom(*rel, terms.iter().map(|t| subst_term(t, subst)).collect())
            }
            Formula::Eq(t1, t2) => Formula::Eq(subst_term(t1, subst), subst_term(t2, subst)),
            Formula::Not(f) => Formula::Not(Box::new(f.substitute(subst))),
            Formula::And(f, g) => {
                Formula::And(Box::new(f.substitute(subst)), Box::new(g.substitute(subst)))
            }
            Formula::Or(f, g) => {
                Formula::Or(Box::new(f.substitute(subst)), Box::new(g.substitute(subst)))
            }
            Formula::Implies(f, g) => {
                Formula::Implies(Box::new(f.substitute(subst)), Box::new(g.substitute(subst)))
            }
            Formula::Exists(v, f) => {
                let mut inner = subst.clone();
                inner.remove(v);
                Formula::Exists(v.clone(), Box::new(f.substitute(&inner)))
            }
            Formula::Forall(v, f) => {
                let mut inner = subst.clone();
                inner.remove(v);
                Formula::Forall(v.clone(), Box::new(f.substitute(&inner)))
            }
        }
    }

    /// Ground the formula by an assignment of (some of) its free variables
    /// to constants.
    pub fn apply(&self, asg: &Assignment) -> Formula {
        let subst: BTreeMap<Var, QTerm> = asg
            .iter()
            .map(|(v, c)| (v.clone(), QTerm::Const(*c)))
            .collect();
        self.substitute(&subst)
    }

    /// Validate arities of all atoms against a schema.
    pub fn check_arities(&self, schema: &Schema) -> Result<(), crate::QueryError> {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => Ok(()),
            Formula::Atom(rel, terms) => {
                let expected = schema.arity(*rel);
                if terms.len() != expected {
                    Err(crate::QueryError::ArityMismatch {
                        relation: schema.name(*rel).to_owned(),
                        expected,
                        got: terms.len(),
                    })
                } else {
                    Ok(())
                }
            }
            Formula::Not(f) => f.check_arities(schema),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                f.check_arities(schema)?;
                g.check_arities(schema)
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.check_arities(schema),
        }
    }

    /// Size of the formula (number of AST nodes).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => 1,
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                1 + f.size() + g.size()
            }
        }
    }
}

fn subst_term(t: &QTerm, subst: &BTreeMap<Var, QTerm>) -> QTerm {
    match t {
        QTerm::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
        QTerm::Const(_) => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, Schema};

    fn schema2() -> (Schema, RelId, RelId) {
        let mut s = Schema::new();
        let p = s.add_relation("P", 1).unwrap();
        let q = s.add_relation("Q", 2).unwrap();
        (s, p, q)
    }

    #[test]
    fn free_vars_respect_binding() {
        let (_, p, q) = schema2();
        let x = Var::new("X");
        let y = Var::new("Y");
        // exists X. Q(X, Y) & P(X)
        let f = Formula::exists(
            x.clone(),
            Formula::Atom(q, vec![QTerm::Var(x.clone()), QTerm::Var(y.clone())])
                .and(Formula::Atom(p, vec![QTerm::Var(x.clone())])),
        );
        assert_eq!(f.free_vars(), [y].into_iter().collect());
    }

    #[test]
    fn shadowing_quantifier_keeps_outer_free() {
        let (_, p, _) = schema2();
        let x = Var::new("X");
        // P(X) & exists X. P(X) — the first X is free.
        let f = Formula::Atom(p, vec![QTerm::Var(x.clone())]).and(Formula::exists(
            x.clone(),
            Formula::Atom(p, vec![QTerm::Var(x.clone())]),
        ));
        assert_eq!(f.free_vars(), [x].into_iter().collect());
    }

    #[test]
    fn substitute_avoids_bound_occurrences() {
        let (_, p, _) = schema2();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let x = Var::new("X");
        let f = Formula::Atom(p, vec![QTerm::Var(x.clone())]).and(Formula::exists(
            x.clone(),
            Formula::Atom(p, vec![QTerm::Var(x.clone())]),
        ));
        let mut asg = Assignment::new();
        asg.insert(x.clone(), a);
        let g = f.apply(&asg);
        // The free occurrence is replaced, the bound one is not.
        let expected = Formula::Atom(p, vec![QTerm::Const(a)]).and(Formula::exists(
            x.clone(),
            Formula::Atom(p, vec![QTerm::Var(x)]),
        ));
        assert_eq!(g, expected);
    }

    #[test]
    fn constants_collected() {
        let (_, _, q) = schema2();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let f = Formula::Atom(q, vec![QTerm::Const(a), QTerm::var("X")])
            .and(Formula::eq(QTerm::Const(b), QTerm::var("X")));
        assert_eq!(f.constants(), [a, b].into_iter().collect());
    }

    #[test]
    fn arity_check() {
        let (s, p, _) = schema2();
        let good = Formula::Atom(p, vec![QTerm::var("X")]);
        assert!(good.check_arities(&s).is_ok());
        let bad = Formula::Atom(p, vec![QTerm::var("X"), QTerm::var("Y")]);
        assert!(bad.check_arities(&s).is_err());
    }

    #[test]
    fn conj_disj_of_lists() {
        assert_eq!(Formula::conj([]), Formula::True);
        assert_eq!(Formula::disj([]), Formula::False);
        let (_, p, _) = schema2();
        let f = Formula::Atom(p, vec![QTerm::var("X")]);
        assert_eq!(Formula::conj([f.clone()]), f);
    }
}
