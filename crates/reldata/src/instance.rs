//! Database instances.

use crate::{RelError, RelId, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A database instance: for each relation, a set of tuples.
///
/// Instances are backed by `BTreeMap`/`BTreeSet` so that iteration order —
/// and hence everything derived from it (canonical forms, pretty printing,
/// exploration order) — is deterministic.
///
/// ```
/// use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};
/// let mut pool = ConstantPool::new();
/// let mut schema = Schema::new();
/// let p = schema.add_relation("P", 1).unwrap();
/// let a = pool.intern("a");
/// let mut inst = Instance::new();
/// inst.insert(p, Tuple::from([a]));
/// assert!(inst.contains(p, &Tuple::from([a])));
/// assert_eq!(inst.active_domain(), [a].into_iter().collect());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instance {
    rels: BTreeMap<RelId, BTreeSet<Tuple>>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact. Returns true if the fact was not already present.
    pub fn insert(&mut self, rel: RelId, tuple: Tuple) -> bool {
        self.rels.entry(rel).or_default().insert(tuple)
    }

    /// Remove a fact. Returns true if the fact was present.
    pub fn remove(&mut self, rel: RelId, tuple: &Tuple) -> bool {
        match self.rels.get_mut(&rel) {
            Some(set) => {
                let removed = set.remove(tuple);
                if set.is_empty() {
                    self.rels.remove(&rel);
                }
                removed
            }
            None => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, rel: RelId, tuple: &Tuple) -> bool {
        self.rels.get(&rel).is_some_and(|set| set.contains(tuple))
    }

    /// Tuples of a relation (empty slice view if none).
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &Tuple> {
        self.rels.get(&rel).into_iter().flatten()
    }

    /// Number of tuples in a relation.
    pub fn cardinality(&self, rel: RelId) -> usize {
        self.rels.get(&rel).map_or(0, BTreeSet::len)
    }

    /// Total number of facts in the instance.
    pub fn len(&self) -> usize {
        self.rels.values().map(BTreeSet::len).sum()
    }

    /// True if the instance contains no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterate over all facts `(rel, tuple)` in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &Tuple)> {
        self.rels
            .iter()
            .flat_map(|(rel, set)| set.iter().map(move |t| (*rel, t)))
    }

    /// Relations with at least one tuple.
    pub fn nonempty_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels.keys().copied()
    }

    /// The active domain `ADOM(I)`: the set of constants occurring in `I`.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut adom = BTreeSet::new();
        for (_, t) in self.facts() {
            adom.extend(t.iter());
        }
        adom
    }

    /// Validate that every fact conforms to the schema's arities.
    pub fn check_schema(&self, schema: &Schema) -> Result<(), RelError> {
        for (rel, t) in self.facts() {
            let expected = schema.arity(rel);
            if t.arity() != expected {
                return Err(RelError::ArityMismatch {
                    relation: schema.name(rel).to_owned(),
                    expected,
                    got: t.arity(),
                });
            }
        }
        Ok(())
    }

    /// Set union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for (rel, t) in other.facts() {
            out.insert(rel, t.clone());
        }
        out
    }

    /// Add all facts of `other` into `self`.
    pub fn extend_from(&mut self, other: &Instance) {
        for (rel, t) in other.facts() {
            self.insert(rel, t.clone());
        }
    }

    /// True if every fact of `self` occurs in `other`.
    pub fn is_subset_of(&self, other: &Instance) -> bool {
        self.facts().all(|(rel, t)| other.contains(rel, t))
    }

    /// Apply a value renaming to every fact, producing a new instance.
    /// Values missing from the map are kept unchanged.
    pub fn rename(&self, map: &BTreeMap<Value, Value>) -> Instance {
        let mut out = Instance::new();
        for (rel, t) in self.facts() {
            out.insert(rel, t.rename(map));
        }
        out
    }

    /// Restrict the instance to a subset of relations — the "projection of
    /// the transition system to a schema" used in Theorems 6.1/6.2.
    pub fn project(&self, rels: &BTreeSet<RelId>) -> Instance {
        let mut out = Instance::new();
        for (rel, t) in self.facts() {
            if rels.contains(&rel) {
                out.insert(rel, t.clone());
            }
        }
        out
    }

    /// Build an instance from a list of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = (RelId, Tuple)>) -> Instance {
        let mut out = Instance::new();
        for (rel, t) in facts {
            out.insert(rel, t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantPool;

    fn setup() -> (ConstantPool, Schema, RelId, RelId) {
        let mut pool = ConstantPool::new();
        pool.intern("a");
        pool.intern("b");
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 2).unwrap();
        (pool, schema, p, q)
    }

    #[test]
    fn insert_remove_contains() {
        let (pool, _, p, _) = setup();
        let a = pool.get("a").unwrap();
        let mut inst = Instance::new();
        assert!(inst.insert(p, Tuple::from([a])));
        assert!(!inst.insert(p, Tuple::from([a])));
        assert!(inst.contains(p, &Tuple::from([a])));
        assert!(inst.remove(p, &Tuple::from([a])));
        assert!(inst.is_empty());
    }

    #[test]
    fn active_domain_collects_all_values() {
        let (pool, _, p, q) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let inst = Instance::from_facts([(p, Tuple::from([a])), (q, Tuple::from([a, b]))]);
        let adom = inst.active_domain();
        assert_eq!(adom, [a, b].into_iter().collect());
    }

    #[test]
    fn schema_check_catches_arity_errors() {
        let (pool, schema, p, _) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let bad = Instance::from_facts([(p, Tuple::from([a, b]))]);
        assert!(bad.check_schema(&schema).is_err());
        let good = Instance::from_facts([(p, Tuple::from([a]))]);
        assert!(good.check_schema(&schema).is_ok());
    }

    #[test]
    fn union_and_subset() {
        let (pool, _, p, q) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let i1 = Instance::from_facts([(p, Tuple::from([a]))]);
        let i2 = Instance::from_facts([(q, Tuple::from([a, b]))]);
        let u = i1.union(&i2);
        assert_eq!(u.len(), 2);
        assert!(i1.is_subset_of(&u));
        assert!(i2.is_subset_of(&u));
        assert!(!u.is_subset_of(&i1));
    }

    #[test]
    fn rename_is_fact_wise() {
        let (mut pool, _, _, q) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.intern("c");
        let inst = Instance::from_facts([(q, Tuple::from([a, b]))]);
        let mut map = BTreeMap::new();
        map.insert(a, c);
        map.insert(b, a);
        let renamed = inst.rename(&map);
        assert!(renamed.contains(q, &Tuple::from([c, a])));
        assert_eq!(renamed.len(), 1);
    }

    #[test]
    fn rename_can_merge_facts() {
        let (mut pool, _, p, _) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.intern("c");
        let inst = Instance::from_facts([(p, Tuple::from([a])), (p, Tuple::from([b]))]);
        let mut map = BTreeMap::new();
        map.insert(a, c);
        map.insert(b, c);
        assert_eq!(inst.rename(&map).len(), 1);
    }

    #[test]
    fn project_restricts_relations() {
        let (pool, _, p, q) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let inst = Instance::from_facts([(p, Tuple::from([a])), (q, Tuple::from([a, b]))]);
        let only_p: BTreeSet<RelId> = [p].into_iter().collect();
        let proj = inst.project(&only_p);
        assert_eq!(proj.len(), 1);
        assert!(proj.contains(p, &Tuple::from([a])));
    }

    #[test]
    fn nullary_relation_facts() {
        let mut schema = Schema::new();
        let halted = schema.add_relation("halted", 0).unwrap();
        let mut inst = Instance::new();
        inst.insert(halted, Tuple::unit());
        assert!(inst.contains(halted, &Tuple::unit()));
        assert!(inst.active_domain().is_empty());
        assert!(inst.check_schema(&schema).is_ok());
    }
}
