//! Compact state storage: states as fact-id sets, successors as deltas.
//!
//! A [`StateStore`] keeps every explored state either as a **root** — the
//! full sorted vector of interned [`FactId`]s — or as a **delta** over its
//! parent: the sorted fact-id slices added and removed by one transition.
//! Actions touch few relations, so a successor shares almost all of its
//! facts with its parent; storing only the difference makes per-state
//! memory proportional to the *change*, not the instance.
//!
//! Three guards keep resolution cheap and bounded:
//!
//! * a delta at least as large as the state itself is stored as a root
//!   (the delta encoding would not save anything);
//! * delta chains are capped at [`MAX_DELTA_DEPTH`]; a child of a
//!   maximal chain becomes a new root, so [`StateStore::resolve`] is
//!   O(depth · |state|) with a small constant depth;
//! * duplicate states are detected on insertion (hash of the resolved
//!   id vector, verified exactly), so the store never holds two copies
//!   of one state and handles double as cheap state identity.
//!
//! A [`FactsView`] resolves a state to its facts in exactly the order
//! [`crate::Facts`] iterates — sorted by `(color, tuple)` — so signatures,
//! canonical keys, display, and isomorphism checks computed through the
//! store are bit-identical to the owned-`Facts` path.

use crate::arena::{FactId, TupleArena};
use crate::sig::signature_of;
use crate::{CanonKey, Facts, Instance, RelId, Tuple, Value};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// Handle of a state stored in a [`StateStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateRef(u32);

impl StateRef {
    /// Dense 0-based index of this state in insertion order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maximum delta-chain length before a child is stored as a fresh root.
pub const MAX_DELTA_DEPTH: u32 = 32;

#[derive(Debug)]
enum Node {
    Root {
        facts: Box<[FactId]>,
    },
    Delta {
        parent: StateRef,
        adds: Box<[FactId]>,
        removes: Box<[FactId]>,
        /// Resolved state size (facts), cached for dedup prechecks.
        len: u32,
        /// Chain length to the nearest root.
        depth: u32,
    },
}

/// Deterministic, self-reported store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Estimated heap bytes (arena + nodes + dedup table), derived from
    /// element counts — identical across runs and thread counts.
    pub bytes: usize,
    /// Distinct facts interned in the arena.
    pub facts_interned: usize,
    /// States stored as deltas over their parent.
    pub delta_states: usize,
    /// States stored as full roots.
    pub root_states: usize,
    /// Fact-id slots actually stored (roots + delta adds/removes).
    pub stored_fact_slots: usize,
    /// Fact-id slots the owned path would store (Σ state sizes).
    pub resolved_fact_slots: usize,
}

impl StoreStats {
    /// Total states stored.
    pub fn states(&self) -> usize {
        self.root_states + self.delta_states
    }

    /// Fraction of fact-slots the delta encoding avoided storing,
    /// in `[0, 1)`: `1 − stored / resolved`.
    pub fn delta_share(&self) -> f64 {
        if self.resolved_fact_slots == 0 {
            return 0.0;
        }
        1.0 - self.stored_fact_slots as f64 / self.resolved_fact_slots as f64
    }
}

/// Arena-backed store of states with delta compression and exact dedup.
#[derive(Debug, Default)]
pub struct StateStore {
    arena: TupleArena,
    nodes: Vec<Node>,
    /// Hash of the resolved id vector → states with that hash.
    dedup: HashMap<u64, Vec<StateRef>>,
    stored_fact_slots: usize,
    resolved_fact_slots: usize,
    delta_states: usize,
}

/// Result of [`StateStore::insert`]: the state's handle and whether it
/// was already present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inserted {
    /// Handle of the (new or pre-existing) state.
    pub state: StateRef,
    /// `true` iff the state was already in the store.
    pub existing: bool,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        StateStore::default()
    }

    /// The underlying fact arena.
    pub fn arena(&self) -> &TupleArena {
        &self.arena
    }

    /// Number of states stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the store holds no states.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Insert `facts` as a state. With a parent, the state is stored as a
    /// delta when profitable (see module docs); without one, as a root.
    /// Duplicate states return their existing handle.
    pub fn insert(&mut self, parent: Option<StateRef>, facts: &Facts) -> Inserted {
        let ids = self.arena.intern_facts(facts);
        match parent {
            Some(p) => {
                let parent_ids = self.resolve(p);
                self.insert_ids(Some((p, &parent_ids)), ids)
            }
            None => self.insert_ids(None, ids),
        }
    }

    /// [`StateStore::insert`] with the parent's ids already resolved —
    /// lets callers expanding one parent into many children resolve once.
    pub fn insert_child(
        &mut self,
        parent: StateRef,
        parent_ids: &[FactId],
        facts: &Facts,
    ) -> Inserted {
        let ids = self.arena.intern_facts(facts);
        self.insert_ids(Some((parent, parent_ids)), ids)
    }

    fn insert_ids(&mut self, parent: Option<(StateRef, &[FactId])>, ids: Vec<FactId>) -> Inserted {
        let h = TupleArena::hash_ids(&ids);
        if let Some(candidates) = self.dedup.get(&h) {
            for &c in candidates {
                if self.node_len(c) == ids.len() && self.resolve(c) == ids {
                    return Inserted {
                        state: c,
                        existing: true,
                    };
                }
            }
        }
        let state = StateRef(u32::try_from(self.nodes.len()).expect("store overflow: > 4G states"));
        let node = match parent {
            Some((p, parent_ids)) if self.depth(p) < MAX_DELTA_DEPTH => {
                let (adds, removes) = diff_sorted(&self.arena, parent_ids, &ids);
                if adds.len() + removes.len() >= ids.len() {
                    Node::Root {
                        facts: ids.clone().into_boxed_slice(),
                    }
                } else {
                    Node::Delta {
                        parent: p,
                        adds: adds.into_boxed_slice(),
                        removes: removes.into_boxed_slice(),
                        len: ids.len() as u32,
                        depth: self.depth(p) + 1,
                    }
                }
            }
            _ => Node::Root {
                facts: ids.clone().into_boxed_slice(),
            },
        };
        match &node {
            Node::Root { facts } => self.stored_fact_slots += facts.len(),
            Node::Delta { adds, removes, .. } => {
                self.delta_states += 1;
                self.stored_fact_slots += adds.len() + removes.len();
            }
        }
        self.resolved_fact_slots += ids.len();
        self.nodes.push(node);
        self.dedup.entry(h).or_default().push(state);
        Inserted {
            state,
            existing: false,
        }
    }

    fn depth(&self, r: StateRef) -> u32 {
        match &self.nodes[r.index()] {
            Node::Root { .. } => 0,
            Node::Delta { depth, .. } => *depth,
        }
    }

    fn node_len(&self, r: StateRef) -> usize {
        match &self.nodes[r.index()] {
            Node::Root { facts } => facts.len(),
            Node::Delta { len, .. } => *len as usize,
        }
    }

    /// Number of facts in state `r` (without resolving it).
    pub fn state_len(&self, r: StateRef) -> usize {
        self.node_len(r)
    }

    /// The relations a delta state touches relative to its parent, or
    /// `None` when `r` is a root (callers treat that as "all relations").
    /// Colors ≥ `num_rels` (call-map entries) are skipped.
    pub fn delta_rels(&self, r: StateRef, num_rels: u32) -> Option<Vec<RelId>> {
        match &self.nodes[r.index()] {
            Node::Root { .. } => None,
            Node::Delta { adds, removes, .. } => {
                let mut rels = BTreeSet::new();
                for &id in adds.iter().chain(removes.iter()) {
                    let (color, _) = self.arena.get(id);
                    if color < num_rels {
                        rels.insert(RelId::from_index(color as usize));
                    }
                }
                Some(rels.into_iter().collect())
            }
        }
    }

    /// Look a state up by its facts without inserting (or interning)
    /// anything. `None` when no stored state has exactly these facts.
    pub fn find(&self, facts: &Facts) -> Option<StateRef> {
        let mut ids = Vec::with_capacity(facts.len());
        for (c, t) in facts.iter() {
            ids.push(self.arena.get_id(c, t)?);
        }
        let h = TupleArena::hash_ids(&ids);
        self.dedup
            .get(&h)?
            .iter()
            .copied()
            .find(|&c| self.node_len(c) == ids.len() && self.resolve(c) == ids)
    }

    /// Resolve `r` to its full sorted fact-id vector.
    pub fn resolve(&self, r: StateRef) -> Vec<FactId> {
        // Collect the delta chain down to the root, then replay upward.
        let mut chain: Vec<StateRef> = Vec::new();
        let mut cur = r;
        let mut base: Vec<FactId> = loop {
            match &self.nodes[cur.index()] {
                Node::Root { facts } => break facts.to_vec(),
                Node::Delta { parent, .. } => {
                    chain.push(cur);
                    cur = *parent;
                }
            }
        };
        for &d in chain.iter().rev() {
            let Node::Delta { adds, removes, .. } = &self.nodes[d.index()] else {
                unreachable!("chain holds delta nodes only");
            };
            base = apply_delta(&self.arena, &base, adds, removes);
        }
        base
    }

    /// A [`FactsView`] of state `r`: facts in `Facts` iteration order.
    pub fn view(&self, r: StateRef) -> FactsView<'_> {
        FactsView {
            arena: &self.arena,
            ids: self.resolve(r),
        }
    }

    /// Materialise state `r` as owned [`Facts`].
    pub fn facts(&self, r: StateRef) -> Facts {
        self.view(r).to_facts()
    }

    /// Materialise the database part of state `r` (colors `< num_rels`)
    /// as an [`Instance`].
    pub fn instance(&self, r: StateRef, num_rels: u32) -> Instance {
        self.view(r).to_instance(num_rels)
    }

    /// Current deterministic statistics.
    pub fn stats(&self) -> StoreStats {
        let node_bytes = self.nodes.len() * std::mem::size_of::<Node>()
            + self.stored_fact_slots * std::mem::size_of::<FactId>();
        // Dedup map: one (u64, Vec) slot per state (×2 load-factor slack)
        // plus one StateRef per state.
        let dedup_bytes = self.nodes.len()
            * (std::mem::size_of::<u64>()
                + std::mem::size_of::<Vec<StateRef>>() * 2
                + std::mem::size_of::<StateRef>());
        StoreStats {
            bytes: self.arena.bytes_estimate() + node_bytes + dedup_bytes,
            facts_interned: self.arena.len(),
            delta_states: self.delta_states,
            root_states: self.nodes.len() - self.delta_states,
            stored_fact_slots: self.stored_fact_slots,
            resolved_fact_slots: self.resolved_fact_slots,
        }
    }
}

/// `(adds, removes)` turning sorted `parent` into sorted `child`.
fn diff_sorted(
    arena: &TupleArena,
    parent: &[FactId],
    child: &[FactId],
) -> (Vec<FactId>, Vec<FactId>) {
    let mut adds = Vec::new();
    let mut removes = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < parent.len() && j < child.len() {
        match arena.cmp(parent[i], child[j]) {
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
            Ordering::Less => {
                removes.push(parent[i]);
                i += 1;
            }
            Ordering::Greater => {
                adds.push(child[j]);
                j += 1;
            }
        }
    }
    removes.extend_from_slice(&parent[i..]);
    adds.extend_from_slice(&child[j..]);
    (adds, removes)
}

/// `(base \ removes) ∪ adds`, all inputs and the output sorted by value.
fn apply_delta(
    arena: &TupleArena,
    base: &[FactId],
    adds: &[FactId],
    removes: &[FactId],
) -> Vec<FactId> {
    let mut out = Vec::with_capacity(base.len() + adds.len() - removes.len().min(base.len()));
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < base.len() {
        // Drop facts listed in `removes` (both sorted: two pointers).
        if k < removes.len() && base[i] == removes[k] {
            i += 1;
            k += 1;
            continue;
        }
        // Merge in any adds that sort before the next surviving base fact.
        while j < adds.len() && arena.cmp(adds[j], base[i]) == Ordering::Less {
            out.push(adds[j]);
            j += 1;
        }
        out.push(base[i]);
        i += 1;
    }
    out.extend_from_slice(&adds[j..]);
    out
}

/// A resolved state: facts in [`Facts`] iteration order, borrowed from
/// the arena. The bridge between compact storage and the owned-path
/// entry points (signatures, canonical keys, isomorphism, display).
#[derive(Debug)]
pub struct FactsView<'a> {
    arena: &'a TupleArena,
    ids: Vec<FactId>,
}

impl<'a> FactsView<'a> {
    /// Facts in sorted `(color, tuple)` order — identical to
    /// [`Facts::iter`] on the materialised set.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &'a Tuple)> + '_ {
        self.ids.iter().map(|&id| self.arena.get(id))
    }

    /// The resolved fact ids (sorted by value).
    pub fn ids(&self) -> &[FactId] {
        &self.ids
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the state has no facts.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Materialise as owned [`Facts`].
    pub fn to_facts(&self) -> Facts {
        let mut f = Facts::new();
        for (c, t) in self.iter() {
            f.insert(c, t.clone());
        }
        f
    }

    /// Materialise the database part (colors `< num_rels`) as an
    /// [`Instance`].
    pub fn to_instance(&self, num_rels: u32) -> Instance {
        Instance::from_facts(
            self.iter()
                .take_while(|(c, _)| *c < num_rels)
                .map(|(c, t)| (RelId::from_index(c as usize), t.clone())),
        )
    }

    /// The order-invariant signature — bit-identical to
    /// [`Facts::signature`] on the materialised set.
    pub fn signature(&self, rigid: &BTreeSet<Value>) -> u64 {
        signature_of(|| self.iter(), self.ids.len(), rigid)
    }

    /// The exact canonical key — identical to [`Facts::canonical_key`]
    /// on the materialised set.
    pub fn canonical_key(&self, rigid: &BTreeSet<Value>) -> CanonKey {
        self.to_facts().canonical_key(rigid)
    }

    /// Occurrence census for incrementally deriving child-state signatures
    /// (see [`crate::SigCensus`]) — equivalent to materialising the facts
    /// and calling [`Facts::sig_census`].
    pub fn sig_census<'r>(&self, rigid: &'r BTreeSet<Value>) -> crate::SigCensus<'r> {
        crate::SigCensus::new(self.iter(), rigid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantPool;

    fn vals(pool: &mut ConstantPool, names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| pool.intern(n)).collect()
    }

    fn facts_of(entries: &[(u32, &[Value])]) -> Facts {
        let mut f = Facts::new();
        for (c, vs) in entries {
            f.insert(*c, Tuple::new(vs.to_vec()));
        }
        f
    }

    #[test]
    fn roundtrip_root_and_delta() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let mut store = StateStore::new();
        let f0 = facts_of(&[(0, &[v[0]]), (0, &[v[1]]), (1, &[v[0], v[1]])]);
        let r0 = store.insert(None, &f0);
        assert!(!r0.existing);
        assert_eq!(store.facts(r0.state), f0);

        let f1 = facts_of(&[(0, &[v[0]]), (0, &[v[2]]), (1, &[v[0], v[1]])]);
        let r1 = store.insert(Some(r0.state), &f1);
        assert!(!r1.existing);
        assert_eq!(store.facts(r1.state), f1);
        assert_eq!(store.stats().delta_states, 1);
        // The delta touches only relation 0.
        assert_eq!(
            store.delta_rels(r1.state, 2),
            Some(vec![RelId::from_index(0)])
        );
    }

    #[test]
    fn duplicate_states_dedup() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let mut store = StateStore::new();
        let f0 = facts_of(&[(0, &[v[0]])]);
        let f1 = facts_of(&[(0, &[v[0]]), (0, &[v[1]])]);
        let r0 = store.insert(None, &f0);
        let r1 = store.insert(Some(r0.state), &f1);
        // Same facts again, via a different parent route.
        let again = store.insert(Some(r1.state), &f0);
        assert!(again.existing);
        assert_eq!(again.state, r0.state);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn deep_chains_reroot() {
        let mut pool = ConstantPool::new();
        let names: Vec<String> = (0..200).map(|i| format!("c{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let v = vals(&mut pool, &refs);
        let mut store = StateStore::new();
        // Growing chain: state k = {v_0..v_k} plus a stable wide base so
        // the delta (1 add) stays profitable.
        let base: Vec<(u32, &[Value])> = (100..200).map(|i| (1u32, &v[i..=i])).collect();
        let mut cur = facts_of(&base);
        cur.insert(0, Tuple::from([v[0]]));
        let mut prev = store.insert(None, &cur).state;
        for value in v.iter().take(80).skip(1) {
            cur.insert(0, Tuple::from([*value]));
            let ins = store.insert(Some(prev), &cur);
            assert!(!ins.existing);
            assert_eq!(store.facts(ins.state), cur);
            prev = ins.state;
        }
        let stats = store.stats();
        // Depth cap forces periodic re-roots: some roots beyond the first.
        assert!(stats.root_states > 1, "expected re-roots, got {stats:?}");
        assert!(stats.delta_states > 0);
        assert!(stats.delta_share() > 0.0);
    }

    #[test]
    fn reroot_fires_exactly_at_max_delta_depth() {
        // Pin the boundary: a chain of k deltas under one root stays
        // all-delta for every k ≤ MAX_DELTA_DEPTH; the first child whose
        // parent sits at depth MAX_DELTA_DEPTH becomes a new root. So a
        // 31-chain and a 32-chain hold one root, a 33-chain holds two.
        let cap = MAX_DELTA_DEPTH as usize;
        for (chain_len, want_roots) in [(cap - 1, 1usize), (cap, 1), (cap + 1, 2)] {
            let mut pool = ConstantPool::new();
            let names: Vec<String> = (0..chain_len + 101).map(|i| format!("c{i}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let v = vals(&mut pool, &refs);
            let mut store = StateStore::new();
            // Wide stable base keeps every 1-add delta profitable.
            let base: Vec<(u32, &[Value])> = (chain_len + 1..chain_len + 101)
                .map(|i| (1u32, &v[i..=i]))
                .collect();
            let mut cur = facts_of(&base);
            cur.insert(0, Tuple::from([v[0]]));
            let mut prev = store.insert(None, &cur).state;
            let mut states = vec![(prev, cur.clone())];
            for value in v.iter().take(chain_len + 1).skip(1) {
                cur.insert(0, Tuple::from([*value]));
                prev = store.insert(Some(prev), &cur).state;
                states.push((prev, cur.clone()));
            }
            let stats = store.stats();
            assert_eq!(
                stats.root_states, want_roots,
                "chain of {chain_len}: {stats:?}"
            );
            assert_eq!(stats.delta_states, chain_len + 1 - want_roots);
            // Every state along the chain still resolves to its facts.
            for (r, facts) in &states {
                assert_eq!(&store.facts(*r), facts, "chain of {chain_len}");
            }
        }
    }

    #[test]
    fn view_matches_owned_entry_points() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d"]);
        let mut store = StateStore::new();
        let f0 = facts_of(&[(0, &[v[0], v[1]]), (1, &[v[1]]), (2, &[v[2], v[3]])]);
        let r0 = store.insert(None, &f0).state;
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        let view = store.view(r0);
        assert_eq!(view.signature(&rigid), f0.signature(&rigid));
        assert_eq!(view.canonical_key(&rigid), f0.canonical_key(&rigid));
        assert_eq!(view.to_facts(), f0);
        let inst = view.to_instance(2);
        assert_eq!(inst.len(), 2);
        assert!(inst.contains(RelId::from_index(0), &Tuple::from([v[0], v[1]])));
    }
}
