//! Global fact interning: each distinct `(color, tuple)` fact is stored
//! once and addressed by a dense 32-bit [`FactId`].
//!
//! The state-space engines materialise millions of states whose fact sets
//! overlap almost entirely — an action touches a handful of tuples, the
//! rest of the instance is carried over verbatim. Owning a `BTreeSet`
//! copy of every fact in every state (as [`crate::Facts`] /
//! [`crate::Instance`] do) makes memory grow with *states × instance
//! size*. The [`TupleArena`] collapses that to *distinct facts*: a state
//! becomes a sorted vector of fact ids (see [`crate::store`]), and the
//! fact payloads — the only part whose size depends on arity — exist
//! exactly once.
//!
//! Determinism contract: ids are assigned in first-interning order, which
//! the engines keep deterministic (facts arrive from serial merge phases
//! or from `Facts` iteration, both fixed orders). All *comparisons* go
//! through [`TupleArena::cmp`], which orders ids by their underlying
//! `(color, tuple)` value — so sorted-id vectors, merges, and diffs are
//! independent of interning order anyway.

use crate::iso::hash2;
use crate::{Facts, Tuple};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Dense handle of an interned `(color, tuple)` fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(u32);

impl FactId {
    /// The dense index of this fact (0-based interning order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interning arena for `(color, tuple)` facts.
///
/// Colors follow the [`crate::Facts`] convention: relation indexes for
/// database facts, `num_rels + f` for service-call-map entries.
#[derive(Debug, Default)]
pub struct TupleArena {
    /// Fact payloads, indexed by `FactId`.
    facts: Vec<(u32, Tuple)>,
    /// Value-hash → candidate ids (collisions resolved by comparing
    /// against `facts`). Keyed by hash so the payload is not duplicated.
    lookup: HashMap<u64, Vec<FactId>>,
    /// Total `Value` slots across interned tuples (for `bytes_estimate`).
    value_slots: usize,
}

fn fact_hash(color: u32, tuple: &Tuple) -> u64 {
    let mut h = hash2(0xfac7, color as u64);
    for v in tuple.iter() {
        h = hash2(h, v.index() as u64 + 1);
    }
    h
}

impl TupleArena {
    /// An empty arena.
    pub fn new() -> Self {
        TupleArena::default()
    }

    /// Intern one fact, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, color: u32, tuple: &Tuple) -> FactId {
        let h = fact_hash(color, tuple);
        let candidates = self.lookup.entry(h).or_default();
        for &id in candidates.iter() {
            let (c, t) = &self.facts[id.index()];
            if *c == color && t == tuple {
                return id;
            }
        }
        let id = FactId(u32::try_from(self.facts.len()).expect("arena overflow: > 4G facts"));
        self.value_slots += tuple.arity();
        self.facts.push((color, tuple.clone()));
        candidates.push(id);
        id
    }

    /// Intern every fact of `facts`. Because [`Facts`] iterates in sorted
    /// `(color, tuple)` order, the returned vector is sorted under
    /// [`TupleArena::cmp`] — no extra sort needed.
    pub fn intern_facts(&mut self, facts: &Facts) -> Vec<FactId> {
        facts.iter().map(|(c, t)| self.intern(c, t)).collect()
    }

    /// The id of a fact if it has been interned, without interning it.
    pub fn get_id(&self, color: u32, tuple: &Tuple) -> Option<FactId> {
        let h = fact_hash(color, tuple);
        self.lookup.get(&h)?.iter().copied().find(|&id| {
            let (c, t) = &self.facts[id.index()];
            *c == color && t == tuple
        })
    }

    /// The `(color, tuple)` payload of `id`.
    pub fn get(&self, id: FactId) -> (u32, &Tuple) {
        let (c, t) = &self.facts[id.index()];
        (*c, t)
    }

    /// Order two ids by their underlying `(color, tuple)` values — the
    /// same order [`Facts`] iterates in.
    pub fn cmp(&self, a: FactId, b: FactId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        self.facts[a.index()].cmp(&self.facts[b.index()])
    }

    /// Number of distinct facts interned.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Deterministic estimate of the arena's heap footprint in bytes:
    /// derived from element counts and `size_of`, not from allocator
    /// introspection, so it is identical across runs and thread counts.
    pub fn bytes_estimate(&self) -> usize {
        let payloads = self.facts.len() * std::mem::size_of::<(u32, Tuple)>()
            + self.value_slots * std::mem::size_of::<crate::Value>();
        // One (u64, Vec) map slot plus one FactId per fact; ×2 for the
        // hash map's load-factor slack.
        let lookup = self.facts.len()
            * (std::mem::size_of::<u64>()
                + std::mem::size_of::<Vec<FactId>>() * 2
                + std::mem::size_of::<FactId>());
        payloads + lookup
    }

    /// Hash a value-sorted id vector (used by the store's dedup table).
    pub(crate) fn hash_ids(ids: &[FactId]) -> u64 {
        let mut s = std::collections::hash_map::DefaultHasher::new();
        ids.len().hash(&mut s);
        for id in ids {
            id.0.hash(&mut s);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantPool, Value};

    fn vals(pool: &mut ConstantPool, names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| pool.intern(n)).collect()
    }

    #[test]
    fn interning_is_idempotent() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let mut arena = TupleArena::new();
        let t = Tuple::from([v[0], v[1]]);
        let id1 = arena.intern(0, &t);
        let id2 = arena.intern(0, &t);
        assert_eq!(id1, id2);
        assert_eq!(arena.len(), 1);
        // Different color, same tuple: distinct fact.
        let id3 = arena.intern(1, &t);
        assert_ne!(id1, id3);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(id3), (1, &t));
    }

    #[test]
    fn intern_facts_is_value_sorted() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let mut arena = TupleArena::new();
        // Pre-intern in an order unrelated to value order so ids are
        // shuffled relative to values.
        arena.intern(1, &Tuple::from([v[2]]));
        arena.intern(0, &Tuple::from([v[1]]));
        let mut f = Facts::new();
        f.insert(1, Tuple::from([v[2]]));
        f.insert(0, Tuple::from([v[1]]));
        f.insert(0, Tuple::from([v[0]]));
        let ids = arena.intern_facts(&f);
        assert_eq!(ids.len(), 3);
        assert!(ids
            .windows(2)
            .all(|w| arena.cmp(w[0], w[1]) == std::cmp::Ordering::Less));
    }

    #[test]
    fn bytes_estimate_grows_with_interning() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let mut arena = TupleArena::new();
        let b0 = arena.bytes_estimate();
        arena.intern(0, &Tuple::from([v[0], v[1]]));
        assert!(arena.bytes_estimate() > b0);
    }
}
