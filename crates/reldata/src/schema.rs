//! Database schemas: finite sets of relation symbols with fixed arities.

use crate::RelError;
use std::collections::HashMap;

/// Identifier of a relation symbol inside a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(u32);

impl RelId {
    /// Raw index of this relation in its schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a raw index (serialization/testing only).
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        RelId(u32::try_from(ix).expect("schema overflow"))
    }
}

/// A single relation symbol `R/n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelSchema {
    name: String,
    arity: usize,
}

impl RelSchema {
    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relation arity (number of components). May be zero: the paper uses
    /// nullary relations (e.g. `halted/0`, the built-in `true/0`).
    pub fn arity(&self) -> usize {
        self.arity
    }
}

/// A database schema `R = {R_1/n_1, ..., R_k/n_k}`.
///
/// ```
/// use dcds_reldata::Schema;
/// let mut schema = Schema::new();
/// let stud = schema.add_relation("Stud", 1).unwrap();
/// let grad = schema.add_relation("Grad", 2).unwrap();
/// assert_eq!(schema.arity(stud), 1);
/// assert_eq!(schema.rel_id("Grad"), Some(grad));
/// assert!(schema.add_relation("Stud", 3).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Schema {
    rels: Vec<RelSchema>,
    index: HashMap<String, RelId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation `name/arity`. Errors on duplicate names.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelId, RelError> {
        if self.index.contains_key(name) {
            return Err(RelError::DuplicateRelation(name.to_owned()));
        }
        let id = RelId::from_index(self.rels.len());
        self.rels.push(RelSchema {
            name: name.to_owned(),
            arity,
        });
        self.index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declare a relation, or return the existing id if one with the same
    /// name *and arity* already exists.
    pub fn add_or_get(&mut self, name: &str, arity: usize) -> Result<RelId, RelError> {
        if let Some(&id) = self.index.get(name) {
            if self.rels[id.index()].arity == arity {
                return Ok(id);
            }
            return Err(RelError::ArityMismatch {
                relation: name.to_owned(),
                expected: self.rels[id.index()].arity,
                got: arity,
            });
        }
        self.add_relation(name, arity)
    }

    /// Look up a relation by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.index.get(name).copied()
    }

    /// Like [`Schema::rel_id`] but with a typed error.
    pub fn require(&self, name: &str) -> Result<RelId, RelError> {
        self.rel_id(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_owned()))
    }

    /// Arity of a relation.
    pub fn arity(&self, id: RelId) -> usize {
        self.rels[id.index()].arity
    }

    /// Name of a relation.
    pub fn name(&self, id: RelId) -> &str {
        &self.rels[id.index()].name
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True when the schema declares no relations.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterate over `(id, schema)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelSchema)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(ix, rs)| (RelId::from_index(ix), rs))
    }

    /// All relation ids in declaration order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.rels.len()).map(RelId::from_index)
    }

    /// Sum of the arities of all relations (the number of *positions*, i.e.
    /// nodes of the dependency graph of Section 4.3).
    pub fn total_positions(&self) -> usize {
        self.rels.iter().map(|r| r.arity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 2).unwrap();
        assert_eq!(s.rel_id("R"), Some(r));
        assert_eq!(s.arity(r), 2);
        assert_eq!(s.name(r), "R");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        assert_eq!(
            s.add_relation("R", 3),
            Err(RelError::DuplicateRelation("R".to_owned()))
        );
    }

    #[test]
    fn add_or_get_matches_arity() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 2).unwrap();
        assert_eq!(s.add_or_get("R", 2).unwrap(), r);
        assert!(s.add_or_get("R", 1).is_err());
    }

    #[test]
    fn nullary_relations_supported() {
        let mut s = Schema::new();
        let h = s.add_relation("halted", 0).unwrap();
        assert_eq!(s.arity(h), 0);
    }

    #[test]
    fn total_positions_sums_arities() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("Q", 3).unwrap();
        s.add_relation("halted", 0).unwrap();
        assert_eq!(s.total_positions(), 5);
    }

    #[test]
    fn require_unknown_errors() {
        let s = Schema::new();
        assert_eq!(
            s.require("Nope"),
            Err(RelError::UnknownRelation("Nope".to_owned()))
        );
    }
}
