//! # dcds-reldata
//!
//! Relational data substrate for the DCDS verification stack.
//!
//! This crate implements the *data layer* vocabulary of Bagheri Hariri et al.,
//! "Verification of Relational Data-Centric Dynamic Systems with External
//! Services" (PODS 2013), Section 2.1:
//!
//! * a countably infinite set of constants `C`, realised by a
//!   [`ConstantPool`] that interns named constants and mints fresh ones on
//!   demand ([`value`]);
//! * database schemas `R = {R_1, ..., R_n}` ([`schema`]);
//! * database instances conforming to a schema, with deterministic iteration
//!   order and active-domain computation ([`instance`]);
//! * isomorphism of instances (and of arbitrary "fact graphs") modulo a set
//!   of *rigid* constants, together with canonical forms used to quotient
//!   transition-system states by isomorphism type ([`iso`]).
//!
//! Everything downstream (first-order queries, DCDS semantics, abstractions,
//! bisimulations) is built on these types.

pub mod arena;
#[cfg(test)]
mod canon_tests;
pub mod display;
pub mod index;
pub mod instance;
pub mod iso;
pub mod schema;
pub mod sig;
pub mod store;
pub mod tuple;
pub mod value;

pub use arena::{FactId, TupleArena};
pub use display::{FactsDisplay, InstanceDisplay};
pub use index::{AccessPath, InstanceIndex};
pub use instance::Instance;
pub use iso::{CanonKey, CanonStats, Facts};
pub use schema::{RelId, RelSchema, Schema};
pub use sig::SigCensus;
pub use store::{FactsView, Inserted, StateRef, StateStore, StoreStats, MAX_DELTA_DEPTH};
pub use tuple::Tuple;
pub use value::{ConstantPool, Value};

/// Errors produced by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// Relation involved.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A relation name was not found in the schema.
    UnknownRelation(String),
    /// A relation name was declared twice.
    DuplicateRelation(String),
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation {relation}: schema declares {expected}, tuple has {got}"
            ),
            RelError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            RelError::DuplicateRelation(name) => write!(f, "duplicate relation {name}"),
        }
    }
}

impl std::error::Error for RelError {}
