//! Hash indexes over instances for compiled query evaluation.
//!
//! An [`InstanceIndex`] materialises, for a fixed set of *access paths*
//! `(relation, bound positions)`, a hash map from the values at those
//! positions to the matching tuples. A compiled query plan (see
//! `dcds_folang::plan`) declares up front which access paths its join steps
//! probe; the state-space engines build one index per `Instance` (i.e. per
//! state) and reuse it across every action, parameter assignment, and effect
//! evaluated against that state, turning atom extension from a full relation
//! scan into a hash lookup.
//!
//! Determinism contract: [`Instance`] iterates its `BTreeSet` tuples in
//! sorted order, and the index records the tuples of every bucket in exactly
//! that order, so probe results are *order-normalised* — evaluating a plan
//! through the index visits candidate tuples in the same order as a scan of
//! the relation restricted to the bucket, and every derived output is
//! bit-identical with the scan-based evaluator.

use crate::{Instance, RelId, Tuple, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An access path: the positions of a relation's columns that a plan step
/// has bound at probe time. Positions are 0-based, strictly increasing, and
/// non-empty (a step with no bound position scans the relation instead).
pub type AccessPath = (RelId, Vec<usize>);

/// One materialised access path: `values at positions -> matching tuples`,
/// buckets in sorted (instance iteration) order.
#[derive(Debug, Default)]
struct PathIndex {
    positions: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<Tuple>>,
}

/// Per-instance hash index over a declared set of access paths.
///
/// Built eagerly by [`InstanceIndex::build`]; the construction makes one
/// pass over each indexed relation per distinct access path. The index is
/// `Sync` — parallel workers probe a shared index for the state they are
/// expanding — and counts its probes for observability.
#[derive(Debug, Default)]
pub struct InstanceIndex {
    /// Paths grouped per relation; the per-relation list is tiny (one entry
    /// per distinct bound-position set any plan step uses), so lookup is a
    /// linear scan over it.
    rels: HashMap<RelId, Vec<PathIndex>>,
    /// Hash probes answered (hits and empty buckets alike).
    probes: AtomicU64,
}

impl InstanceIndex {
    /// Build an index over `inst` for the given access paths. Duplicate
    /// paths and paths with no positions are ignored; tuples too short for
    /// a path's positions are skipped (they can never match a probe).
    pub fn build(inst: &Instance, paths: impl IntoIterator<Item = AccessPath>) -> Self {
        let mut out = InstanceIndex::default();
        for (rel, positions) in paths {
            if positions.is_empty() {
                continue;
            }
            debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            let entries = out.rels.entry(rel).or_default();
            if entries.iter().any(|p| p.positions == positions) {
                continue;
            }
            let mut buckets: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
            let max_pos = *positions.last().expect("positions nonempty");
            for tuple in inst.tuples(rel) {
                if tuple.arity() <= max_pos {
                    continue;
                }
                let key: Vec<Value> = positions.iter().map(|&p| tuple[p]).collect();
                buckets.entry(key).or_default().push(tuple.clone());
            }
            entries.push(PathIndex { positions, buckets });
        }
        out
    }

    /// Probe the index: the tuples of `rel` whose `positions` carry exactly
    /// the values `key`, in instance iteration order. Returns `None` when
    /// the access path was not declared at build time (callers then fall
    /// back to scanning); a declared path with no matches yields an empty
    /// slice.
    pub fn probe(&self, rel: RelId, positions: &[usize], key: &[Value]) -> Option<&[Tuple]> {
        let path = self
            .rels
            .get(&rel)?
            .iter()
            .find(|p| p.positions == positions)?;
        self.probes.fetch_add(1, Ordering::Relaxed);
        Some(path.buckets.get(key).map_or(&[], Vec::as_slice))
    }

    /// Number of probes answered so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Number of materialised access paths.
    pub fn num_paths(&self) -> usize {
        self.rels.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantPool, Schema};

    fn setup() -> (ConstantPool, RelId, Instance) {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let q = schema.add_relation("Q", 2).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let inst = Instance::from_facts([
            (q, Tuple::from([a, b])),
            (q, Tuple::from([a, c])),
            (q, Tuple::from([b, c])),
        ]);
        (pool, q, inst)
    }

    #[test]
    fn probe_returns_bucket_in_instance_order() {
        let (pool, q, inst) = setup();
        let a = pool.get("a").unwrap();
        let idx = InstanceIndex::build(&inst, [(q, vec![0])]);
        let hits = idx.probe(q, &[0], &[a]).unwrap();
        // Same order as scanning the sorted relation.
        let scanned: Vec<Tuple> = inst.tuples(q).filter(|t| t[0] == a).cloned().collect();
        assert_eq!(hits, scanned.as_slice());
        assert_eq!(idx.probes(), 1);
    }

    #[test]
    fn empty_bucket_and_unknown_path() {
        let (pool, q, inst) = setup();
        let c = pool.get("c").unwrap();
        let idx = InstanceIndex::build(&inst, [(q, vec![0])]);
        assert_eq!(idx.probe(q, &[0], &[c]).unwrap(), &[] as &[Tuple]);
        assert!(idx.probe(q, &[1], &[c]).is_none());
    }

    #[test]
    fn multi_position_key_and_dedup() {
        let (pool, q, inst) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let idx = InstanceIndex::build(&inst, [(q, vec![0, 1]), (q, vec![0, 1])]);
        assert_eq!(idx.num_paths(), 1);
        let hits = idx.probe(q, &[0, 1], &[a, b]).unwrap();
        assert_eq!(hits, &[Tuple::from([a, b])]);
    }

    #[test]
    fn empty_positions_are_ignored() {
        let (_, q, inst) = setup();
        let idx = InstanceIndex::build(&inst, [(q, vec![])]);
        assert_eq!(idx.num_paths(), 0);
    }
}
