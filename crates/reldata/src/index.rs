//! Hash indexes over instances for compiled query evaluation.
//!
//! An [`InstanceIndex`] materialises, for a fixed set of *access paths*
//! `(relation, bound positions)`, a hash map from the values at those
//! positions to the matching tuples. A compiled query plan (see
//! `dcds_folang::plan`) declares up front which access paths its join steps
//! probe; the state-space engines build one index per `Instance` (i.e. per
//! state) and reuse it across every action, parameter assignment, and effect
//! evaluated against that state, turning atom extension from a full relation
//! scan into a hash lookup.
//!
//! Determinism contract: [`Instance`] iterates its `BTreeSet` tuples in
//! sorted order, and the index records the tuples of every bucket in exactly
//! that order, so probe results are *order-normalised* — evaluating a plan
//! through the index visits candidate tuples in the same order as a scan of
//! the relation restricted to the bucket, and every derived output is
//! bit-identical with the scan-based evaluator.

use crate::{Instance, RelId, Tuple, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An access path: the positions of a relation's columns that a plan step
/// has bound at probe time. Positions are 0-based, strictly increasing, and
/// non-empty (a step with no bound position scans the relation instead).
pub type AccessPath = (RelId, Vec<usize>);

/// One materialised access path: `values at positions -> matching tuples`,
/// buckets in sorted (instance iteration) order.
#[derive(Debug, Default)]
struct PathIndex {
    positions: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<Tuple>>,
}

/// Per-instance hash index over a declared set of access paths.
///
/// Built eagerly by [`InstanceIndex::build`]; the construction makes one
/// pass over each indexed relation per distinct access path. The index is
/// `Sync` — parallel workers probe a shared index for the state they are
/// expanding — and counts its probes for observability.
///
/// Per-relation path groups sit behind an [`Arc`], which makes the index
/// **copy-on-write**: [`InstanceIndex::rebuild_delta`] derives a successor
/// state's index from its parent's by sharing the groups of untouched
/// relations and rebuilding only the touched ones — O(|touched relations|)
/// instead of O(|instance|). A rebuilt group is constructed by the same
/// sorted scan [`InstanceIndex::build`] uses, so bucket contents and bucket
/// order are bit-identical to a from-scratch build of the child instance.
#[derive(Debug, Default)]
pub struct InstanceIndex {
    /// Paths grouped per relation; the per-relation list is tiny (one entry
    /// per distinct bound-position set any plan step uses), so lookup is a
    /// linear scan over it.
    rels: HashMap<RelId, Arc<Vec<PathIndex>>>,
    /// Hash probes answered (hits and empty buckets alike).
    probes: AtomicU64,
}

/// Build the path group of one relation from a sorted scan of `inst`.
fn build_group(
    inst: &Instance,
    rel: RelId,
    position_sets: impl IntoIterator<Item = Vec<usize>>,
) -> Vec<PathIndex> {
    let mut group: Vec<PathIndex> = Vec::new();
    for positions in position_sets {
        if positions.is_empty() {
            continue;
        }
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        if group.iter().any(|p| p.positions == positions) {
            continue;
        }
        let mut buckets: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        let max_pos = *positions.last().expect("positions nonempty");
        for tuple in inst.tuples(rel) {
            if tuple.arity() <= max_pos {
                continue;
            }
            let key: Vec<Value> = positions.iter().map(|&p| tuple[p]).collect();
            buckets.entry(key).or_default().push(tuple.clone());
        }
        group.push(PathIndex { positions, buckets });
    }
    group
}

/// Group access paths by relation, preserving first-seen path order.
fn paths_by_rel(paths: impl IntoIterator<Item = AccessPath>) -> HashMap<RelId, Vec<Vec<usize>>> {
    let mut by_rel: HashMap<RelId, Vec<Vec<usize>>> = HashMap::new();
    for (rel, positions) in paths {
        if positions.is_empty() {
            continue;
        }
        by_rel.entry(rel).or_default().push(positions);
    }
    by_rel
}

impl InstanceIndex {
    /// Build an index over `inst` for the given access paths. Duplicate
    /// paths and paths with no positions are ignored; tuples too short for
    /// a path's positions are skipped (they can never match a probe).
    pub fn build(inst: &Instance, paths: impl IntoIterator<Item = AccessPath>) -> Self {
        let mut out = InstanceIndex::default();
        for (rel, position_sets) in paths_by_rel(paths) {
            out.rels
                .insert(rel, Arc::new(build_group(inst, rel, position_sets)));
        }
        out
    }

    /// Derive the index of a successor state from its parent's index:
    /// relations not in `touched` share the parent's path group (an `Arc`
    /// clone); touched relations are rebuilt from a sorted scan of
    /// `child`. Probing the result is indistinguishable from probing
    /// `InstanceIndex::build(child, paths)` — same buckets, same bucket
    /// order — because a per-relation group depends only on that
    /// relation's tuples, and untouched relations are identical in parent
    /// and child.
    pub fn rebuild_delta(
        parent: &InstanceIndex,
        child: &Instance,
        touched: &[RelId],
        paths: impl IntoIterator<Item = AccessPath>,
    ) -> Self {
        let mut out = InstanceIndex::default();
        for (rel, position_sets) in paths_by_rel(paths) {
            let group = match parent.rels.get(&rel) {
                Some(shared) if !touched.contains(&rel) => Arc::clone(shared),
                _ => Arc::new(build_group(child, rel, position_sets)),
            };
            out.rels.insert(rel, group);
        }
        out
    }

    /// Probe the index: the tuples of `rel` whose `positions` carry exactly
    /// the values `key`, in instance iteration order. Returns `None` when
    /// the access path was not declared at build time (callers then fall
    /// back to scanning); a declared path with no matches yields an empty
    /// slice.
    pub fn probe(&self, rel: RelId, positions: &[usize], key: &[Value]) -> Option<&[Tuple]> {
        let path = self
            .rels
            .get(&rel)?
            .iter()
            .find(|p| p.positions == positions)?;
        self.probes.fetch_add(1, Ordering::Relaxed);
        Some(path.buckets.get(key).map_or(&[], Vec::as_slice))
    }

    /// Number of probes answered so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Number of materialised access paths.
    pub fn num_paths(&self) -> usize {
        self.rels.values().map(|g| g.len()).sum()
    }

    /// Whether this index shares relation `rel`'s path group with `other`
    /// (i.e. the copy-on-write fast path was taken for it).
    pub fn shares_group_with(&self, other: &InstanceIndex, rel: RelId) -> bool {
        match (self.rels.get(&rel), other.rels.get(&rel)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantPool, Schema};

    fn setup() -> (ConstantPool, RelId, Instance) {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let q = schema.add_relation("Q", 2).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let inst = Instance::from_facts([
            (q, Tuple::from([a, b])),
            (q, Tuple::from([a, c])),
            (q, Tuple::from([b, c])),
        ]);
        (pool, q, inst)
    }

    #[test]
    fn probe_returns_bucket_in_instance_order() {
        let (pool, q, inst) = setup();
        let a = pool.get("a").unwrap();
        let idx = InstanceIndex::build(&inst, [(q, vec![0])]);
        let hits = idx.probe(q, &[0], &[a]).unwrap();
        // Same order as scanning the sorted relation.
        let scanned: Vec<Tuple> = inst.tuples(q).filter(|t| t[0] == a).cloned().collect();
        assert_eq!(hits, scanned.as_slice());
        assert_eq!(idx.probes(), 1);
    }

    #[test]
    fn empty_bucket_and_unknown_path() {
        let (pool, q, inst) = setup();
        let c = pool.get("c").unwrap();
        let idx = InstanceIndex::build(&inst, [(q, vec![0])]);
        assert_eq!(idx.probe(q, &[0], &[c]).unwrap(), &[] as &[Tuple]);
        assert!(idx.probe(q, &[1], &[c]).is_none());
    }

    #[test]
    fn multi_position_key_and_dedup() {
        let (pool, q, inst) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let idx = InstanceIndex::build(&inst, [(q, vec![0, 1]), (q, vec![0, 1])]);
        assert_eq!(idx.num_paths(), 1);
        let hits = idx.probe(q, &[0, 1], &[a, b]).unwrap();
        assert_eq!(hits, &[Tuple::from([a, b])]);
    }

    #[test]
    fn empty_positions_are_ignored() {
        let (_, q, inst) = setup();
        let idx = InstanceIndex::build(&inst, [(q, vec![])]);
        assert_eq!(idx.num_paths(), 0);
    }

    #[test]
    fn rebuild_delta_shares_untouched_groups_and_matches_scratch() {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let q = schema.add_relation("Q", 2).unwrap();
        let r = schema.add_relation("R", 1).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let parent_inst = Instance::from_facts([
            (q, Tuple::from([a, b])),
            (q, Tuple::from([a, c])),
            (r, Tuple::from([a])),
        ]);
        let paths = [(q, vec![0]), (r, vec![0])];
        let parent = InstanceIndex::build(&parent_inst, paths.clone());
        // Child touches only R.
        let mut child_inst = parent_inst.clone();
        child_inst.insert(r, Tuple::from([b]));
        let child = InstanceIndex::rebuild_delta(&parent, &child_inst, &[r], paths.clone());
        assert!(child.shares_group_with(&parent, q));
        assert!(!child.shares_group_with(&parent, r));
        // Probing the COW index is indistinguishable from a scratch build.
        let scratch = InstanceIndex::build(&child_inst, paths);
        for (rel, key) in [(q, a), (q, b), (r, a), (r, b), (r, c)] {
            assert_eq!(
                child.probe(rel, &[0], &[key]).unwrap(),
                scratch.probe(rel, &[0], &[key]).unwrap(),
                "divergence on {rel:?}"
            );
        }
    }
}
