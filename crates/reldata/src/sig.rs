//! Cheap order-invariant signatures of fact sets.
//!
//! [`Facts::canonical_key`] is exact but expensive: it refines value colors
//! and then searches class-respecting orders of the non-rigid values, which
//! is factorial in the refinement class sizes. During abstract
//! transition-system construction the overwhelmingly common question is
//! *"have we seen this isomorphism class before?"*, and the answer is
//! usually *no* — so the engines first consult a 64-bit **invariant
//! signature**: a hash that is guaranteed equal for isomorphic fact sets
//! (with the same rigid set) and almost always different for
//! non-isomorphic ones.
//!
//! The signature folds, commutatively over the facts, a per-fact hash built
//! only from isomorphism-invariant data:
//!
//! * the fact's color (relation / call-map id) and arity;
//! * per position, either the identity of a **rigid** value (isomorphisms
//!   fix those pointwise) or, for a non-rigid value, its global *occurrence
//!   count* over the whole fact set together with the position of its first
//!   occurrence inside the tuple (the within-tuple equality pattern);
//! * globally, the fact count and active-domain size.
//!
//! Any isomorphism fixing the rigid values preserves every ingredient, so
//! **isomorphic ⇒ equal signature**. The converse can fail (hash and
//! invariant collisions), so equal signatures are always confirmed by
//! [`Facts::canonical_key`] or [`Facts::isomorphism`]; unequal signatures
//! need no further work. That asymmetry is what the abstraction engines
//! exploit: an empty signature bucket proves the class is new without ever
//! canonicalising it.

use crate::iso::hash2;
use crate::{Facts, Tuple, Value};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Per-fact signature term: everything the commutative fold adds for one
/// fact. `occ` maps a (non-rigid) value to its global occurrence count.
/// Shared by the from-scratch computation and the incremental census so the
/// two cannot drift apart.
fn fact_hash(c: u32, t: &Tuple, rigid: &BTreeSet<Value>, occ: impl Fn(Value) -> u64) -> u64 {
    let mut h = hash2(c as u64 + 1, t.arity() as u64);
    for (p, v) in t.iter().enumerate() {
        let contrib = if rigid.contains(&v) {
            hash2(1, v.index() as u64)
        } else {
            // First position of `v` inside this tuple: captures the
            // equality pattern among the tuple's components without
            // referencing the value's identity.
            let first = t.iter().position(|w| w == v).unwrap_or(p);
            hash2(2, hash2(occ(v), first as u64))
        };
        h = hash2(h, hash2(p as u64, contrib));
    }
    hash2(h, 0x57a7)
}

/// The signature computation, generic over how the facts are iterated so
/// both [`Facts`] and the compact store's `FactsView` share one
/// implementation (and therefore produce bit-identical signatures).
/// `facts()` must yield the same sequence on every call.
pub(crate) fn signature_of<'a, I: Iterator<Item = (u32, &'a Tuple)>>(
    facts: impl Fn() -> I,
    len: usize,
    rigid: &BTreeSet<Value>,
) -> u64 {
    // Global occurrence count of each value over all (fact, position)
    // slots — invariant under any renaming bijection.
    let mut occ: BTreeMap<Value, u64> = BTreeMap::new();
    for (_, t) in facts() {
        for v in t.iter() {
            *occ.entry(v).or_insert(0) += 1;
        }
    }
    let mut total: u64 = hash2(0x5157, len as u64);
    total = total.wrapping_add(hash2(0x51c2, occ.len() as u64));
    for (c, t) in facts() {
        // Commutative fold: the fact set is unordered.
        total = total.wrapping_add(fact_hash(c, t, rigid, |v| occ[&v]));
    }
    total
}

/// Value-occurrence census of a fact set, retained so the signatures of
/// *derived* fact sets (a child state differing by a few facts) can be
/// computed incrementally instead of from scratch.
///
/// The signature is a commutative `wrapping_add` fold of per-fact terms, so
/// a child's signature follows from the parent's sum by subtracting the
/// terms of removed facts, adding terms for added facts, and re-deriving the
/// terms of surviving facts whose values' occurrence counts changed (those
/// counts feed the per-fact hash). The two global summands re-derive from
/// the child's fact count and distinct-value count. The result is asserted
/// bit-identical to the from-scratch `signature_of` under
/// `debug_assertions`.
pub struct SigCensus<'r> {
    rigid: &'r BTreeSet<Value>,
    /// Parent facts in iteration (sorted) order.
    facts: Vec<(u32, Tuple)>,
    /// Global occurrence count per value (rigid included).
    occ: HashMap<Value, u64>,
    /// Distinct values in the parent (`occ.len()`, kept for clarity).
    occ_len: usize,
    /// Per-fact fold term, aligned with `facts`.
    contrib: Vec<u64>,
    /// Per value: deduplicated indices of parent facts containing it.
    postings: HashMap<Value, Vec<u32>>,
    /// Wrapping sum of all `contrib` terms.
    sum: u64,
}

impl<'r> SigCensus<'r> {
    /// Build the census of a parent fact set. `facts` must yield the fact
    /// set in its canonical (sorted) iteration order.
    pub fn new<'a, I: Iterator<Item = (u32, &'a Tuple)>>(
        facts: I,
        rigid: &'r BTreeSet<Value>,
    ) -> Self {
        let facts: Vec<(u32, Tuple)> = facts.map(|(c, t)| (c, t.clone())).collect();
        let mut occ: HashMap<Value, u64> = HashMap::new();
        let mut postings: HashMap<Value, Vec<u32>> = HashMap::new();
        for (fi, (_, t)) in facts.iter().enumerate() {
            for v in t.iter() {
                *occ.entry(v).or_insert(0) += 1;
                let list = postings.entry(v).or_default();
                if list.last() != Some(&(fi as u32)) {
                    list.push(fi as u32);
                }
            }
        }
        let mut sum: u64 = 0;
        let mut contrib = Vec::with_capacity(facts.len());
        for (c, t) in &facts {
            let term = fact_hash(*c, t, rigid, |v| occ[&v]);
            contrib.push(term);
            sum = sum.wrapping_add(term);
        }
        let occ_len = occ.len();
        SigCensus {
            rigid,
            facts,
            occ,
            occ_len,
            contrib,
            postings,
            sum,
        }
    }

    /// Signature of the parent fact set itself.
    pub fn signature(&self) -> u64 {
        hash2(0x5157, self.facts.len() as u64)
            .wrapping_add(hash2(0x51c2, self.occ_len as u64))
            .wrapping_add(self.sum)
    }

    /// Signature of a *derived* fact set, computed incrementally from the
    /// parent's census. `child()` must yield the derived fact set in sorted
    /// iteration order (the order of [`Facts::iter`] / `FactsView::iter`);
    /// `child_len` is its fact count. Cost is proportional to the diff plus
    /// the facts touching values whose occurrence counts changed, not to the
    /// child's size.
    pub fn child_signature<'a, I: Iterator<Item = (u32, &'a Tuple)>>(
        &self,
        child: impl Fn() -> I,
        child_len: usize,
    ) -> u64 {
        // Sorted two-pointer diff against the parent facts.
        let mut removed: Vec<u32> = Vec::new();
        let mut added: Vec<(u32, &Tuple)> = Vec::new();
        let mut pi = 0usize;
        for (c, t) in child() {
            loop {
                if pi >= self.facts.len() {
                    added.push((c, t));
                    break;
                }
                let pf = &self.facts[pi];
                match (pf.0, &pf.1).cmp(&(c, t)) {
                    std::cmp::Ordering::Less => {
                        removed.push(pi as u32);
                        pi += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        pi += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => {
                        added.push((c, t));
                        break;
                    }
                }
            }
        }
        while pi < self.facts.len() {
            removed.push(pi as u32);
            pi += 1;
        }

        // Net occurrence-count change per value.
        let mut delta: HashMap<Value, i64> = HashMap::new();
        for &ri in &removed {
            for v in self.facts[ri as usize].1.iter() {
                *delta.entry(v).or_insert(0) -= 1;
            }
        }
        for (_, t) in &added {
            for v in t.iter() {
                *delta.entry(v).or_insert(0) += 1;
            }
        }

        // New counts for changed values; distinct-value count transitions;
        // non-rigid changed values force re-hashing of surviving facts that
        // contain them (rigid contributions never read `occ`).
        let mut occ_len = self.occ_len as i64;
        let mut new_occ: HashMap<Value, u64> = HashMap::new();
        let mut affected: Vec<Value> = Vec::new();
        for (&v, &d) in &delta {
            if d == 0 {
                continue;
            }
            let old = self.occ.get(&v).copied().unwrap_or(0);
            let new = (old as i64 + d) as u64;
            if old == 0 {
                occ_len += 1;
            }
            if new == 0 {
                occ_len -= 1;
            }
            new_occ.insert(v, new);
            if !self.rigid.contains(&v) {
                affected.push(v);
            }
        }
        let occ_of = |v: Value| match new_occ.get(&v) {
            Some(&n) => n,
            None => self.occ[&v],
        };

        let mut sum = self.sum;
        for &ri in &removed {
            sum = sum.wrapping_sub(self.contrib[ri as usize]);
        }
        // Surviving parent facts whose terms changed (deduplicated;
        // `removed` is ascending by construction, so binary search works).
        let mut touch: Vec<u32> = Vec::new();
        for &v in &affected {
            if let Some(list) = self.postings.get(&v) {
                for &fi in list {
                    if removed.binary_search(&fi).is_err() {
                        touch.push(fi);
                    }
                }
            }
        }
        touch.sort_unstable();
        touch.dedup();
        for &fi in &touch {
            let (c, t) = &self.facts[fi as usize];
            sum = sum.wrapping_sub(self.contrib[fi as usize]);
            sum = sum.wrapping_add(fact_hash(*c, t, self.rigid, occ_of));
        }
        for &(c, t) in &added {
            sum = sum.wrapping_add(fact_hash(c, t, self.rigid, occ_of));
        }

        let total = hash2(0x5157, child_len as u64)
            .wrapping_add(hash2(0x51c2, occ_len as u64))
            .wrapping_add(sum);
        debug_assert_eq!(
            total,
            signature_of(&child, child_len, self.rigid),
            "incremental signature diverged from the from-scratch computation"
        );
        total
    }
}

impl Facts {
    /// The order-invariant 64-bit signature of this fact set with respect
    /// to `rigid`.
    ///
    /// Guarantee: `a.isomorphic(&b, rigid)` implies
    /// `a.signature(rigid) == b.signature(rigid)`. The converse does not
    /// hold in general; confirm equal signatures with an exact check.
    pub fn signature(&self, rigid: &BTreeSet<Value>) -> u64 {
        signature_of(|| self.iter(), self.len(), rigid)
    }

    /// Occurrence census of this fact set, for incrementally deriving the
    /// signatures of children that differ by a few facts (see [`SigCensus`]).
    pub fn sig_census<'r>(&self, rigid: &'r BTreeSet<Value>) -> SigCensus<'r> {
        SigCensus::new(self.iter(), rigid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantPool, Tuple};

    fn vals(pool: &mut ConstantPool, names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| pool.intern(n)).collect()
    }

    #[test]
    fn renaming_non_rigid_preserves_signature() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "x", "y", "z"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(1, Tuple::from([v[1], v[2]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[3], v[4]]));
        f2.insert(1, Tuple::from([v[4], v[5]]));
        let empty = BTreeSet::new();
        assert_eq!(f1.signature(&empty), f2.signature(&empty));
    }

    #[test]
    fn rigid_identity_matters() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[1]]));
        let rigid: BTreeSet<Value> = v.iter().copied().collect();
        assert_ne!(f1.signature(&rigid), f2.signature(&rigid));
        // Without rigidity the two are isomorphic, hence equal signatures.
        let empty = BTreeSet::new();
        assert_eq!(f1.signature(&empty), f2.signature(&empty));
    }

    #[test]
    fn loop_vs_edge_distinguished() {
        // A self-loop has a different within-tuple equality pattern (and
        // occurrence counts) than an edge between distinct values.
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["c", "d"]);
        let mut looped = Facts::new();
        looped.insert(0, Tuple::from([v[0], v[0]]));
        let mut edge = Facts::new();
        edge.insert(0, Tuple::from([v[0], v[1]]));
        let empty = BTreeSet::new();
        assert_ne!(looped.signature(&empty), edge.signature(&empty));
    }

    #[test]
    fn signature_agrees_with_canonical_key_on_small_family() {
        // Exhaustive-ish cross-check: for a small family of fact sets the
        // signature must be constant on canonical-key classes.
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        let mut sets = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                let mut f = Facts::new();
                f.insert(0, Tuple::from([v[x], v[y]]));
                f.insert(1, Tuple::from([v[y]]));
                sets.push(f);
            }
        }
        for f1 in &sets {
            for f2 in &sets {
                if f1.canonical_key(&rigid) == f2.canonical_key(&rigid) {
                    assert_eq!(f1.signature(&rigid), f2.signature(&rigid));
                }
            }
        }
    }

    #[test]
    fn census_signature_matches_scratch_on_mutations() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d", "e"]);
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        let mut parent = Facts::new();
        parent.insert(0, Tuple::from([v[0], v[1]]));
        parent.insert(1, Tuple::from([v[1], v[2]]));
        parent.insert(2, Tuple::from([v[3]]));
        let census = parent.sig_census(&rigid);
        assert_eq!(census.signature(), parent.signature(&rigid));

        // Child: drop one fact, add two — one reusing an existing value
        // (occurrence count changes, survivors re-hash) and one introducing
        // a fresh value (distinct-value count changes).
        let mut child = Facts::new();
        child.insert(0, Tuple::from([v[0], v[1]]));
        child.insert(1, Tuple::from([v[1], v[2]]));
        child.insert(0, Tuple::from([v[2], v[4]]));
        child.insert(2, Tuple::from([v[1]]));
        assert_eq!(
            census.child_signature(|| child.iter(), child.len()),
            child.signature(&rigid)
        );

        // Identical child: the diff is empty.
        assert_eq!(
            census.child_signature(|| parent.iter(), parent.len()),
            parent.signature(&rigid)
        );

        // Empty child: everything removed.
        let empty_facts = Facts::new();
        assert_eq!(
            census.child_signature(|| empty_facts.iter(), 0),
            empty_facts.signature(&rigid)
        );
    }

    #[test]
    fn census_child_from_empty_parent() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let empty = BTreeSet::new();
        let parent = Facts::new();
        let census = parent.sig_census(&empty);
        let mut child = Facts::new();
        child.insert(0, Tuple::from([v[0], v[1]]));
        child.insert(0, Tuple::from([v[1], v[1]]));
        assert_eq!(
            census.child_signature(|| child.iter(), child.len()),
            child.signature(&empty)
        );
    }

    #[test]
    fn color_matters() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0]]));
        let mut f2 = Facts::new();
        f2.insert(1, Tuple::from([v[0]]));
        let empty = BTreeSet::new();
        assert_ne!(f1.signature(&empty), f2.signature(&empty));
    }
}
