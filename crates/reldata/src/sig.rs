//! Cheap order-invariant signatures of fact sets.
//!
//! [`Facts::canonical_key`] is exact but expensive: it refines value colors
//! and then searches class-respecting orders of the non-rigid values, which
//! is factorial in the refinement class sizes. During abstract
//! transition-system construction the overwhelmingly common question is
//! *"have we seen this isomorphism class before?"*, and the answer is
//! usually *no* — so the engines first consult a 64-bit **invariant
//! signature**: a hash that is guaranteed equal for isomorphic fact sets
//! (with the same rigid set) and almost always different for
//! non-isomorphic ones.
//!
//! The signature folds, commutatively over the facts, a per-fact hash built
//! only from isomorphism-invariant data:
//!
//! * the fact's color (relation / call-map id) and arity;
//! * per position, either the identity of a **rigid** value (isomorphisms
//!   fix those pointwise) or, for a non-rigid value, its global *occurrence
//!   count* over the whole fact set together with the position of its first
//!   occurrence inside the tuple (the within-tuple equality pattern);
//! * globally, the fact count and active-domain size.
//!
//! Any isomorphism fixing the rigid values preserves every ingredient, so
//! **isomorphic ⇒ equal signature**. The converse can fail (hash and
//! invariant collisions), so equal signatures are always confirmed by
//! [`Facts::canonical_key`] or [`Facts::isomorphism`]; unequal signatures
//! need no further work. That asymmetry is what the abstraction engines
//! exploit: an empty signature bucket proves the class is new without ever
//! canonicalising it.

use crate::iso::hash2;
use crate::{Facts, Tuple, Value};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The signature computation, generic over how the facts are iterated so
/// both [`Facts`] and the compact store's `FactsView` share one
/// implementation (and therefore produce bit-identical signatures).
/// `facts()` must yield the same sequence on every call.
pub(crate) fn signature_of<'a, I: Iterator<Item = (u32, &'a Tuple)>>(
    facts: impl Fn() -> I,
    len: usize,
    rigid: &BTreeSet<Value>,
) -> u64 {
    // Global occurrence count of each value over all (fact, position)
    // slots — invariant under any renaming bijection.
    let mut occ: BTreeMap<Value, u64> = BTreeMap::new();
    for (_, t) in facts() {
        for v in t.iter() {
            *occ.entry(v).or_insert(0) += 1;
        }
    }
    let mut total: u64 = hash2(0x5157, len as u64);
    total = total.wrapping_add(hash2(0x51c2, occ.len() as u64));
    for (c, t) in facts() {
        let mut h = hash2(c as u64 + 1, t.arity() as u64);
        for (p, v) in t.iter().enumerate() {
            let contrib = if rigid.contains(&v) {
                hash2(1, v.index() as u64)
            } else {
                // First position of `v` inside this tuple: captures the
                // equality pattern among the tuple's components without
                // referencing the value's identity.
                let first = t.iter().position(|w| w == v).unwrap_or(p);
                hash2(2, hash2(occ[&v], first as u64))
            };
            h = hash2(h, hash2(p as u64, contrib));
        }
        // Commutative fold: the fact set is unordered.
        total = total.wrapping_add(hash2(h, 0x57a7));
    }
    total
}

impl Facts {
    /// The order-invariant 64-bit signature of this fact set with respect
    /// to `rigid`.
    ///
    /// Guarantee: `a.isomorphic(&b, rigid)` implies
    /// `a.signature(rigid) == b.signature(rigid)`. The converse does not
    /// hold in general; confirm equal signatures with an exact check.
    pub fn signature(&self, rigid: &BTreeSet<Value>) -> u64 {
        signature_of(|| self.iter(), self.len(), rigid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantPool, Tuple};

    fn vals(pool: &mut ConstantPool, names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| pool.intern(n)).collect()
    }

    #[test]
    fn renaming_non_rigid_preserves_signature() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "x", "y", "z"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(1, Tuple::from([v[1], v[2]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[3], v[4]]));
        f2.insert(1, Tuple::from([v[4], v[5]]));
        let empty = BTreeSet::new();
        assert_eq!(f1.signature(&empty), f2.signature(&empty));
    }

    #[test]
    fn rigid_identity_matters() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[1]]));
        let rigid: BTreeSet<Value> = v.iter().copied().collect();
        assert_ne!(f1.signature(&rigid), f2.signature(&rigid));
        // Without rigidity the two are isomorphic, hence equal signatures.
        let empty = BTreeSet::new();
        assert_eq!(f1.signature(&empty), f2.signature(&empty));
    }

    #[test]
    fn loop_vs_edge_distinguished() {
        // A self-loop has a different within-tuple equality pattern (and
        // occurrence counts) than an edge between distinct values.
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["c", "d"]);
        let mut looped = Facts::new();
        looped.insert(0, Tuple::from([v[0], v[0]]));
        let mut edge = Facts::new();
        edge.insert(0, Tuple::from([v[0], v[1]]));
        let empty = BTreeSet::new();
        assert_ne!(looped.signature(&empty), edge.signature(&empty));
    }

    #[test]
    fn signature_agrees_with_canonical_key_on_small_family() {
        // Exhaustive-ish cross-check: for a small family of fact sets the
        // signature must be constant on canonical-key classes.
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        let mut sets = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                let mut f = Facts::new();
                f.insert(0, Tuple::from([v[x], v[y]]));
                f.insert(1, Tuple::from([v[y]]));
                sets.push(f);
            }
        }
        for f1 in &sets {
            for f2 in &sets {
                if f1.canonical_key(&rigid) == f2.canonical_key(&rigid) {
                    assert_eq!(f1.signature(&rigid), f2.signature(&rigid));
                }
            }
        }
    }

    #[test]
    fn color_matters() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0]]));
        let mut f2 = Facts::new();
        f2.insert(1, Tuple::from([v[0]]));
        let empty = BTreeSet::new();
        assert_ne!(f1.signature(&empty), f2.signature(&empty));
    }
}
