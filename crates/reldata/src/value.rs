//! Constants and the constant pool.
//!
//! The paper assumes a countably infinite domain `C` of constants, interpreted
//! as themselves. We realise `C` with an interning pool: *named* constants are
//! the ones written down in specifications (initial instances, formulas,
//! effect heads), while *minted* constants are generated on demand when a
//! construction needs a value that is guaranteed fresh (e.g. representative
//! results of service calls in the abstract transition systems of Sections
//! 4.2 and 5.3). Only finitely many constants are ever materialised, but fresh
//! ones can always be minted, which is all that the semantics requires.

use std::collections::HashMap;

/// A constant/value from the domain `C`.
///
/// Values are small copyable ids into a [`ConstantPool`]. Equality of values
/// is equality of constants (the paper blurs constants and values, and so do
/// we). The ordering is the interning order, which is deterministic for a
/// fixed construction sequence and is used pervasively to keep instances and
/// canonical forms stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(u32);

impl Value {
    /// Raw index of this value inside its pool.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a value from a raw index. Intended for serialization and
    /// testing; the caller must guarantee the index is valid for the pool the
    /// value will be used with.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        Value(u32::try_from(ix).expect("constant pool overflow"))
    }
}

/// How a constant entered the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Written down in a specification (initial instance, formula, effect).
    Named,
    /// Minted by the library as a guaranteed-fresh value.
    Minted,
}

/// An interning pool over the countably infinite constant domain `C`.
///
/// ```
/// use dcds_reldata::ConstantPool;
/// let mut pool = ConstantPool::new();
/// let a = pool.intern("a");
/// let b = pool.intern("b");
/// assert_ne!(a, b);
/// assert_eq!(pool.intern("a"), a);
/// let fresh = pool.mint("v");
/// assert!(pool.is_minted(fresh));
/// assert_ne!(fresh, a);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstantPool {
    names: Vec<String>,
    provenance: Vec<Provenance>,
    index: HashMap<String, Value>,
    mint_counter: u64,
}

impl ConstantPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a named constant, returning its value. Idempotent.
    pub fn intern(&mut self, name: &str) -> Value {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = Value::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.provenance.push(Provenance::Named);
        self.index.insert(name.to_owned(), v);
        v
    }

    /// Look up a named constant without interning it.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.index.get(name).copied()
    }

    /// Mint a constant guaranteed to be distinct from every constant already
    /// in the pool. `hint` is used for display (`hint#k`).
    pub fn mint(&mut self, hint: &str) -> Value {
        loop {
            let name = format!("{hint}#{}", self.mint_counter);
            self.mint_counter += 1;
            if !self.index.contains_key(&name) {
                let v = Value::from_index(self.names.len());
                self.names.push(name.clone());
                self.provenance.push(Provenance::Minted);
                self.index.insert(name, v);
                return v;
            }
        }
    }

    /// Display name of a value.
    pub fn name(&self, v: Value) -> &str {
        &self.names[v.index()]
    }

    /// Was this value minted (as opposed to named in a specification)?
    pub fn is_minted(&self, v: Value) -> bool {
        matches!(self.provenance[v.index()], Provenance::Minted)
    }

    /// Number of constants materialised so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no constants have been materialised.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all materialised values in interning order.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.names.len()).map(Value::from_index)
    }

    /// True if the value belongs to this pool.
    pub fn contains(&self, v: Value) -> bool {
        v.index() < self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = ConstantPool::new();
        let a1 = pool.intern("a");
        let a2 = pool.intern("a");
        assert_eq!(a1, a2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_values() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert_ne!(a, b);
        assert_eq!(pool.name(a), "a");
        assert_eq!(pool.name(b), "b");
    }

    #[test]
    fn minted_values_are_fresh() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let m1 = pool.mint("v");
        let m2 = pool.mint("v");
        assert_ne!(m1, m2);
        assert_ne!(m1, a);
        assert!(pool.is_minted(m1));
        assert!(!pool.is_minted(a));
    }

    #[test]
    fn mint_avoids_collisions_with_named() {
        let mut pool = ConstantPool::new();
        // Pre-intern a name colliding with the first mint candidate.
        pool.intern("v#0");
        let m = pool.mint("v");
        assert_ne!(pool.name(m), "v#0");
    }

    #[test]
    fn values_iterates_in_order() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let got: Vec<Value> = pool.values().collect();
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn get_does_not_intern() {
        let mut pool = ConstantPool::new();
        assert_eq!(pool.get("a"), None);
        let a = pool.intern("a");
        assert_eq!(pool.get("a"), Some(a));
    }
}
