//! Human-readable rendering of instances and fact sets.
//!
//! Rendering needs both the [`crate::ConstantPool`] (for value names) and the
//! [`crate::Schema`] (for relation names), so it is exposed through wrapper
//! types implementing [`std::fmt::Display`] rather than on the data types
//! themselves.

use crate::{ConstantPool, Facts, Instance, Schema, Tuple};
use std::fmt;

/// Displays an [`Instance`] as `R(a,b) S(c) ...` in deterministic order.
pub struct InstanceDisplay<'a> {
    instance: &'a Instance,
    schema: &'a Schema,
    pool: &'a ConstantPool,
}

impl<'a> InstanceDisplay<'a> {
    /// Wrap an instance for display.
    pub fn new(instance: &'a Instance, schema: &'a Schema, pool: &'a ConstantPool) -> Self {
        Self {
            instance,
            schema,
            pool,
        }
    }
}

fn write_tuple(f: &mut fmt::Formatter<'_>, t: &Tuple, pool: &ConstantPool) -> fmt::Result {
    if t.arity() == 0 {
        return Ok(());
    }
    write!(f, "(")?;
    for (i, v) in t.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{}", pool.name(v))?;
    }
    write!(f, ")")
}

impl fmt::Display for InstanceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instance.is_empty() {
            return write!(f, "{{}}");
        }
        let mut first = true;
        for (rel, t) in self.instance.facts() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{}", self.schema.name(rel))?;
            write_tuple(f, t, self.pool)?;
        }
        Ok(())
    }
}

/// Displays a [`Facts`] structure as `#c(a,b) ...`, naming colors by id.
pub struct FactsDisplay<'a> {
    facts: &'a Facts,
    pool: &'a ConstantPool,
}

impl<'a> FactsDisplay<'a> {
    /// Wrap a fact set for display.
    pub fn new(facts: &'a Facts, pool: &'a ConstantPool) -> Self {
        Self { facts, pool }
    }
}

impl fmt::Display for FactsDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.facts.is_empty() {
            return write!(f, "{{}}");
        }
        let mut first = true;
        for (c, t) in self.facts.iter() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "#{c}")?;
            write_tuple(f, t, self.pool)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_display_is_deterministic() {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 2).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let inst = Instance::from_facts([(q, Tuple::from([a, b])), (p, Tuple::from([a]))]);
        let s = InstanceDisplay::new(&inst, &schema, &pool).to_string();
        assert_eq!(s, "P(a) Q(a,b)");
    }

    #[test]
    fn empty_instance_displays_braces() {
        let pool = ConstantPool::new();
        let schema = Schema::new();
        let inst = Instance::new();
        assert_eq!(
            InstanceDisplay::new(&inst, &schema, &pool).to_string(),
            "{}"
        );
    }

    #[test]
    fn nullary_fact_renders_bare_name() {
        let pool = ConstantPool::new();
        let mut schema = Schema::new();
        let h = schema.add_relation("halted", 0).unwrap();
        let inst = Instance::from_facts([(h, Tuple::unit())]);
        assert_eq!(
            InstanceDisplay::new(&inst, &schema, &pool).to_string(),
            "halted"
        );
    }
}
