//! Tuples of constants.

use crate::Value;

/// A tuple of constants, i.e. the extension-level counterpart of a fact
/// `R(c_1, ..., c_n)` minus the relation symbol.
///
/// Tuples are ordered lexicographically, which (together with the
/// deterministic ordering of [`crate::Value`]) makes instance iteration and
/// canonical forms reproducible.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from components.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty (nullary) tuple.
    pub fn unit() -> Self {
        Tuple(Box::new([]))
    }

    /// Tuple arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Components as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Component at position `i` (0-based).
    pub fn get(&self, i: usize) -> Option<Value> {
        self.0.get(i).copied()
    }

    /// Apply a value renaming, producing a new tuple. Values missing from the
    /// map are kept unchanged.
    pub fn rename(&self, map: &std::collections::BTreeMap<Value, Value>) -> Tuple {
        Tuple(
            self.0
                .iter()
                .map(|v| map.get(v).copied().unwrap_or(*v))
                .collect(),
        )
    }

    /// Iterate over components.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.0.iter().copied()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl From<&[Value]> for Tuple {
    fn from(v: &[Value]) -> Self {
        Tuple(v.into())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(v: [Value; N]) -> Self {
        Tuple(Box::new(v))
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantPool;
    use std::collections::BTreeMap;

    #[test]
    fn construction_and_access() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let t = Tuple::from(vec![a, b, a]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], a);
        assert_eq!(t[1], b);
        assert_eq!(t.get(2), Some(a));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn unit_tuple() {
        let t = Tuple::unit();
        assert_eq!(t.arity(), 0);
        assert_eq!(t, Tuple::from(vec![]));
    }

    #[test]
    fn rename_applies_map() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let t = Tuple::from(vec![a, b]);
        let mut map = BTreeMap::new();
        map.insert(a, c);
        assert_eq!(t.rename(&map), Tuple::from(vec![c, b]));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert!(Tuple::from(vec![a, a]) < Tuple::from(vec![a, b]));
        assert!(Tuple::from(vec![a, b]) < Tuple::from(vec![b, a]));
    }
}
