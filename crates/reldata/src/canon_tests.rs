//! Seeded property suite for the pruned canonical-key search (`iso`).
//!
//! Three invariants, checked against replayable SplitMix64 randomness
//! (Steele, Lea & Flood, OOPSLA 2014 — local copy, no `rand` dependency):
//!
//! 1. the branch-and-bound search returns byte-identical [`CanonKey`]s to
//!    the retired exhaustive enumerator, kept as a test-only oracle;
//! 2. fully symmetric classes far past the old permutation budget
//!    (`k ≥ 10`, i.e. well over `8!` class-respecting orders) canonicalise
//!    in a single descent and key renamed copies identically;
//! 3. key equality coincides exactly with the backtracking matcher's
//!    [`Facts::isomorphic`] verdict.

use crate::{CanonKey, ConstantPool, Facts, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

const NUM_COLORS: u32 = 3;

fn universe(pool: &mut ConstantPool, n: usize) -> Vec<Value> {
    (0..n).map(|i| pool.intern(&format!("v{i}"))).collect()
}

fn random_facts(rng: &mut SplitMix64, vals: &[Value]) -> Facts {
    let mut f = Facts::new();
    for _ in 0..1 + rng.gen_range(6) {
        let color = rng.gen_range(NUM_COLORS as usize) as u32;
        let arity = 1 + rng.gen_range(2);
        let tuple = Tuple::new(
            (0..arity)
                .map(|_| vals[rng.gen_range(vals.len())])
                .collect::<Vec<_>>(),
        );
        f.insert(color, tuple);
    }
    f
}

fn random_rigid(rng: &mut SplitMix64, vals: &[Value]) -> BTreeSet<Value> {
    vals.iter()
        .copied()
        .filter(|_| rng.gen_range(3) == 0)
        .collect()
}

/// A random bijection on `vals` that fixes `rigid` pointwise.
fn random_renaming(
    rng: &mut SplitMix64,
    vals: &[Value],
    rigid: &BTreeSet<Value>,
) -> BTreeMap<Value, Value> {
    let free: Vec<Value> = vals
        .iter()
        .copied()
        .filter(|v| !rigid.contains(v))
        .collect();
    let mut img = free.clone();
    for i in (1..img.len()).rev() {
        let j = rng.gen_range(i + 1);
        img.swap(i, j);
    }
    let mut map: BTreeMap<Value, Value> = rigid.iter().map(|&v| (v, v)).collect();
    map.extend(free.into_iter().zip(img));
    map
}

/// Invariant 1: pruned search ≡ exhaustive enumeration, byte for byte, on
/// random fact sets under random rigid subsets. The 6-value universe keeps
/// the oracle's worst case at 6! = 720 orders.
#[test]
fn pruned_key_matches_exhaustive_oracle() {
    for seed in 0..4u64 {
        let mut rng = SplitMix64(0xcaf_e001 ^ seed.wrapping_mul(0x9e37_79b9));
        let mut pool = ConstantPool::new();
        let vals = universe(&mut pool, 6);
        for _ in 0..150 {
            let f = random_facts(&mut rng, &vals);
            let rigid = random_rigid(&mut rng, &vals);
            let (key, stats) = f.canonical_key_stats(&rigid);
            assert_eq!(
                key,
                f.exhaustive_canonical_key(&rigid),
                "pruned key diverged from oracle (seed {seed}, facts {f:?}, rigid {rigid:?})"
            );
            assert!(stats.orders_enumerated >= 1);
        }
    }
}

/// Invariant 2a: a `k`-element fully symmetric class (`k!` class-respecting
/// orders — astronomically past the old `8!` budget) costs exactly one
/// descent: every sibling subtree is cut by a transposition automorphism.
#[test]
fn symmetric_classes_past_the_old_budget_key_identically() {
    for k in [10usize, 12, 16] {
        let mut pool = ConstantPool::new();
        let mut f1 = Facts::new();
        let mut f2 = Facts::new();
        for i in 0..k {
            f1.insert(0, Tuple::from([pool.intern(&format!("x{i}"))]));
            f2.insert(0, Tuple::from([pool.intern(&format!("y{i}"))]));
        }
        let empty = BTreeSet::new();
        let (k1, s1) = f1.canonical_key_stats(&empty);
        let (k2, _) = f2.canonical_key_stats(&empty);
        assert_eq!(
            k1, k2,
            "renamed symmetric copies must key identically (k={k})"
        );
        assert_eq!(k1.var_count(), k);
        assert_eq!(
            s1.orders_enumerated, 1,
            "fully symmetric class must cost one descent (k={k})"
        );
        assert_eq!(s1.prune_cutoffs, (k * (k - 1) / 2) as u64);
    }
}

/// Invariant 2b: the same holds for dense structure — the complete digraph
/// on 12 values, where every value occurs in 22 binary facts and every
/// transposition is an automorphism.
#[test]
fn complete_digraph_keys_in_one_descent() {
    let n = 12usize;
    let mut pool = ConstantPool::new();
    let xs: Vec<Value> = (0..n).map(|i| pool.intern(&format!("x{i}"))).collect();
    let ys: Vec<Value> = (0..n).map(|i| pool.intern(&format!("y{i}"))).collect();
    let mut f1 = Facts::new();
    let mut f2 = Facts::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                f1.insert(0, Tuple::from([xs[i], xs[j]]));
                f2.insert(0, Tuple::from([ys[i], ys[j]]));
            }
        }
    }
    let empty = BTreeSet::new();
    let (k1, s1) = f1.canonical_key_stats(&empty);
    let (k2, _) = f2.canonical_key_stats(&empty);
    assert_eq!(k1, k2);
    assert_eq!(k1.var_count(), n);
    assert_eq!(s1.orders_enumerated, 1);
    assert_eq!(s1.prune_cutoffs, (n * (n - 1) / 2) as u64);
}

/// Invariant 2c: random unary multisets over a 14-value universe produce
/// fully symmetric refinement classes of arbitrary sizes; renamed copies
/// must key identically and the search must stay at one descent.
#[test]
fn random_unary_multisets_are_renaming_invariant() {
    for seed in 0..4u64 {
        let mut rng = SplitMix64(0xbead_5eed ^ seed.wrapping_mul(0x9e37_79b9));
        let mut pool = ConstantPool::new();
        let vals = universe(&mut pool, 14);
        let empty = BTreeSet::new();
        for _ in 0..40 {
            let mut f = Facts::new();
            for _ in 0..1 + rng.gen_range(16) {
                let color = rng.gen_range(2) as u32;
                f.insert(color, Tuple::from([vals[rng.gen_range(vals.len())]]));
            }
            let map = random_renaming(&mut rng, &vals, &empty);
            let g = f.rename(&map);
            let (kf, sf) = f.canonical_key_stats(&empty);
            let (kg, _) = g.canonical_key_stats(&empty);
            assert_eq!(kf, kg, "renamed copy diverged (seed {seed}, facts {f:?})");
            assert_eq!(
                sf.orders_enumerated, 1,
                "unary classes are fully symmetric; search must not branch (seed {seed})"
            );
        }
    }
}

/// Invariant 3: key equality ⇔ `isomorphic()`, on renamed copies (always
/// equal) and on independent random pairs (either verdict, but consistent).
#[test]
fn key_equality_coincides_with_isomorphism() {
    for seed in 0..6u64 {
        let mut rng = SplitMix64(0x150_a0ab ^ seed.wrapping_mul(0x9e37_79b9));
        let mut pool = ConstantPool::new();
        let vals = universe(&mut pool, 6);
        for _ in 0..100 {
            let f1 = random_facts(&mut rng, &vals);
            let rigid = random_rigid(&mut rng, &vals);
            let map = random_renaming(&mut rng, &vals, &rigid);
            let f2 = f1.rename(&map);
            let k1: CanonKey = f1.canonical_key(&rigid);
            assert_eq!(
                k1,
                f2.canonical_key(&rigid),
                "rigid-fixing renaming changed the key (seed {seed})"
            );
            assert!(f1.isomorphic(&f2, &rigid));
            let f3 = random_facts(&mut rng, &vals);
            let keys_equal = k1 == f3.canonical_key(&rigid);
            assert_eq!(
                keys_equal,
                f1.isomorphic(&f3, &rigid),
                "key equality disagreed with the matcher (seed {seed}, {f1:?} vs {f3:?})"
            );
        }
    }
}
