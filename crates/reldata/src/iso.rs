//! Isomorphism and canonical forms of fact sets.
//!
//! The abstraction results of the paper (Theorems 4.3 and 5.4) quotient
//! transition-system states by *isomorphism type*: two states are
//! interchangeable when a bijection over constants — fixing the "rigid"
//! constants of `ADOM(I_0)` pointwise — maps one database onto the other.
//! For the deterministic semantics the state also carries a service-call map,
//! so isomorphism must be computed over a mixed structure of relational facts
//! and call-map entries. We therefore work over a generic [`Facts`] structure:
//! a set of *colored tuples*, where the color is a relation id, a synthetic
//! service-call-map id, or anything else the caller needs.
//!
//! Two entry points:
//! * [`Facts::isomorphism`] — a backtracking matcher (with color-refinement
//!   pruning) that produces a witnessing bijection;
//! * [`Facts::canonical_key`] — a canonical form such that two fact sets have
//!   equal keys iff they are isomorphic. Used to deduplicate states in
//!   `O(1)` during abstract-transition-system construction.
//!
//! The canonical key is the lexicographically-least encoding of the fact set
//! over all class-respecting orders of the non-rigid values. It is computed
//! by a branch-and-bound search over partial value orders: the active domain
//! is mapped to dense slots once, values are partitioned by iterated color
//! refinement, and the search extends one canonical index at a time, cutting
//! whole permutation subtrees when (a) the determined prefix of the partial
//! encoding already exceeds the best complete encoding found so far
//! (nauty-style certificate pruning), or (b) a sibling candidate is related
//! to an already-explored one by a transposition automorphism of the fact
//! set, which makes the sibling subtree a guaranteed duplicate. Fully
//! symmetric classes — `k!` class-respecting orders — therefore cost a
//! single descent, so no permutation budget or fallback path is needed.

use crate::{Instance, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// A set of colored tuples ("facts") over values.
///
/// Colors play the role of relation symbols but are plain `u32`s so that
/// callers can mix relational facts with synthetic facts (e.g. service-call
/// map entries `f(v...) -> r` encoded as a fact of a per-function color).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Facts {
    facts: BTreeSet<(u32, Tuple)>,
}

/// A value inside a canonical form: rigid values survive as themselves,
/// non-rigid values are replaced by canonical indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CanonVal {
    /// A rigid constant (kept as-is).
    Rigid(Value),
    /// The `n`-th non-rigid value in canonical order.
    Var(u32),
}

/// Canonical form of a [`Facts`] structure modulo renaming of non-rigid
/// values. Equal keys ⇔ isomorphic fact sets (w.r.t. the same rigid set).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonKey {
    facts: Vec<(u32, Vec<CanonVal>)>,
}

/// Search effort counters reported by [`Facts::canonical_key_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CanonStats {
    /// Complete class-respecting orders whose encoding was materialised
    /// (leaves reached by the branch-and-bound search).
    pub orders_enumerated: u64,
    /// Permutation subtrees cut before reaching a leaf, by certificate
    /// prefix comparison or by transposition-orbit deduplication.
    pub prune_cutoffs: u64,
}

impl CanonKey {
    /// The canonical facts (sorted).
    pub fn facts(&self) -> &[(u32, Vec<CanonVal>)] {
        &self.facts
    }

    /// Number of distinct non-rigid values in the original fact set.
    pub fn var_count(&self) -> usize {
        let mut seen = BTreeSet::new();
        for (_, t) in &self.facts {
            for v in t {
                if let CanonVal::Var(i) = v {
                    seen.insert(*i);
                }
            }
        }
        seen.len()
    }
}

impl Facts {
    /// Empty fact set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a colored fact.
    pub fn insert(&mut self, color: u32, tuple: Tuple) -> bool {
        self.facts.insert((color, tuple))
    }

    /// Membership.
    pub fn contains(&self, color: u32, tuple: &Tuple) -> bool {
        self.facts.contains(&(color, tuple.clone()))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterate over facts.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Tuple)> {
        self.facts.iter().map(|(c, t)| (*c, t))
    }

    /// Build from a relational instance: the color of each fact is the
    /// relation's index.
    pub fn from_instance(inst: &Instance) -> Self {
        let mut out = Facts::new();
        for (rel, t) in inst.facts() {
            out.insert(rel.index() as u32, t.clone());
        }
        out
    }

    /// Add all facts of an instance under an offset applied to relation
    /// colors (so callers can reserve low colors for something else).
    pub fn extend_from_instance(&mut self, inst: &Instance, color_offset: u32) {
        for (rel, t) in inst.facts() {
            self.insert(rel.index() as u32 + color_offset, t.clone());
        }
    }

    /// All values occurring in the fact set.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut adom = BTreeSet::new();
        for (_, t) in self.iter() {
            adom.extend(t.iter());
        }
        adom
    }

    /// Apply a renaming to every fact.
    pub fn rename(&self, map: &BTreeMap<Value, Value>) -> Facts {
        let mut out = Facts::new();
        for (c, t) in self.iter() {
            out.insert(c, t.rename(map));
        }
        out
    }

    /// Find an isomorphism from `self` to `other`: a bijection `h` between
    /// their active domains that is the identity on `rigid` values and maps
    /// `self`'s facts exactly onto `other`'s. Returns the witnessing map on
    /// success.
    pub fn isomorphism(
        &self,
        other: &Facts,
        rigid: &BTreeSet<Value>,
    ) -> Option<BTreeMap<Value, Value>> {
        if self.facts.len() != other.facts.len() {
            return None;
        }
        let adom_a = self.active_domain();
        let adom_b = other.active_domain();
        if adom_a.len() != adom_b.len() {
            return None;
        }
        // Rigid values must coincide on both sides.
        let rigid_a: BTreeSet<Value> = adom_a.intersection(rigid).copied().collect();
        let rigid_b: BTreeSet<Value> = adom_b.intersection(rigid).copied().collect();
        if rigid_a != rigid_b {
            return None;
        }
        // Invariant-signature prefilter (see `sig`): isomorphic fact sets
        // must have equal signatures, and the signature is much cheaper than
        // color refinement plus backtracking.
        if self.signature(rigid) != other.signature(rigid) {
            return None;
        }
        // Color refinement to prune candidates.
        let colors_a = refine_colors(self, rigid);
        let colors_b = refine_colors(other, rigid);
        // Class histograms must agree.
        if class_histogram(&colors_a) != class_histogram(&colors_b) {
            return None;
        }
        let free_a: Vec<Value> = adom_a
            .iter()
            .copied()
            .filter(|v| !rigid.contains(v))
            .collect();
        let mut map: BTreeMap<Value, Value> = rigid_a.iter().map(|&v| (v, v)).collect();
        let mut used: BTreeSet<Value> = rigid_b.clone();
        if backtrack(
            self, other, &colors_a, &colors_b, &free_a, 0, &mut map, &mut used,
        ) {
            Some(map)
        } else {
            None
        }
    }

    /// True iff `self` and `other` are isomorphic (see [`Facts::isomorphism`]).
    pub fn isomorphic(&self, other: &Facts, rigid: &BTreeSet<Value>) -> bool {
        self.isomorphism(other, rigid).is_some()
    }

    /// Canonical key modulo renaming of non-rigid values.
    ///
    /// Two fact sets yield the same key (w.r.t. the same rigid set) iff they
    /// are isomorphic. See [`Facts::canonical_key_stats`] for the search and
    /// its effort counters; this is a convenience wrapper that drops them.
    pub fn canonical_key(&self, rigid: &BTreeSet<Value>) -> CanonKey {
        self.canonical_key_stats(rigid).0
    }

    /// [`Facts::canonical_key`] plus [`CanonStats`] describing how much work
    /// the branch-and-bound search did.
    ///
    /// The key is the lexicographically-least encoding over all
    /// class-respecting orders of the non-rigid values. Rather than
    /// enumerating every order, the search assigns canonical indices one at
    /// a time and prunes a subtree as soon as the already-determined prefix
    /// of its encoding is provably no better than the best complete encoding
    /// found so far, or when a transposition automorphism shows the subtree
    /// duplicates an explored sibling. Fully symmetric classes — the
    /// factorial worst case of naive enumeration — collapse to a single
    /// descent, so the search terminates quickly on every input and no
    /// permutation budget is needed.
    pub fn canonical_key_stats(&self, rigid: &BTreeSet<Value>) -> (CanonKey, CanonStats) {
        let ctx = DenseCtx::build(self, rigid);
        let mut stats = CanonStats {
            orders_enumerated: 1,
            prune_cutoffs: 0,
        };
        if ctx.free_slots.is_empty() {
            // Every value is rigid: the encoding is forced.
            let mut enc: Vec<(u32, Vec<u64>)> = ctx
                .facts
                .iter()
                .map(|(c, slots)| {
                    let vals = slots
                        .iter()
                        .map(|&s| ctx.rigid_code[s as usize].expect("all slots rigid"))
                        .collect();
                    (*c, vals)
                })
                .collect();
            enc.sort();
            return (decode_key(enc), stats);
        }
        let colors = ctx.refine();
        // Group the free slots by refined color; class *order* is canonical
        // because refined colors are computed from iso-invariant signatures.
        let mut classes: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &s in &ctx.free_slots {
            classes.entry(colors[s as usize]).or_default().push(s);
        }
        let class_list: Vec<Vec<u32>> = classes.into_values().collect();
        let mut search = Search::new(&ctx, &class_list);
        search.dfs(0);
        stats.orders_enumerated = search.orders;
        stats.prune_cutoffs = search.cutoffs;
        let best = search.best.expect("at least one ordering exists");
        (decode_key(best), stats)
    }

    /// Reference implementation of the canonical key: enumerate *every*
    /// class-respecting order and keep the lexicographically-least encoding.
    /// Factorial in class sizes — test oracle only.
    #[cfg(test)]
    pub(crate) fn exhaustive_canonical_key(&self, rigid: &BTreeSet<Value>) -> CanonKey {
        let adom = self.active_domain();
        let free: Vec<Value> = adom
            .iter()
            .copied()
            .filter(|v| !rigid.contains(v))
            .collect();
        if free.is_empty() {
            return CanonKey {
                facts: encode_with(self, rigid, &BTreeMap::new()),
            };
        }
        let colors = refine_colors(self, rigid);
        let mut classes: BTreeMap<u64, Vec<Value>> = BTreeMap::new();
        for &v in &free {
            classes.entry(colors[&v]).or_default().push(v);
        }
        let class_list: Vec<Vec<Value>> = classes.into_values().collect();
        let mut best: Option<Vec<(u32, Vec<CanonVal>)>> = None;
        let mut assignment: Vec<Value> = Vec::with_capacity(free.len());
        permute_classes(&class_list, 0, &mut assignment, &mut |order| {
            let mut canon_ix: BTreeMap<Value, u32> = BTreeMap::new();
            for (i, &v) in order.iter().enumerate() {
                canon_ix.insert(v, i as u32);
            }
            let enc = encode_with(self, rigid, &canon_ix);
            match &best {
                Some(b) if *b <= enc => {}
                _ => best = Some(enc),
            }
        });
        CanonKey {
            facts: best.expect("at least one ordering exists"),
        }
    }
}

/// Canonical-index codes are `u64`s chosen to be order-isomorphic to
/// [`CanonVal`]: a rigid value encodes as its pool index (`< 2^32`), the
/// `i`-th free value as `FREE_BASE + i`. Comparing code vectors therefore
/// ranks encodings exactly as comparing the decoded `CanonVal` vectors.
const FREE_BASE: u64 = 1 << 32;

fn decode_key(enc: Vec<(u32, Vec<u64>)>) -> CanonKey {
    let facts = enc
        .into_iter()
        .map(|(c, vals)| {
            let vals = vals
                .into_iter()
                .map(|code| {
                    if code < FREE_BASE {
                        CanonVal::Rigid(Value::from_index(code as usize))
                    } else {
                        CanonVal::Var((code - FREE_BASE) as u32)
                    }
                })
                .collect();
            (c, vals)
        })
        .collect();
    CanonKey { facts }
}

/// Dense working form of a fact set: the active domain is mapped to slot
/// indices `0..n` (in value order) once, so refinement and the order search
/// run on flat vectors instead of `BTreeMap` lookups.
struct DenseCtx {
    /// Active domain, sorted; slot `s` is `adom[s]`.
    adom: Vec<Value>,
    /// Per slot: `Some(value code)` when the value is rigid.
    rigid_code: Vec<Option<u64>>,
    /// Facts with tuple positions rewritten to slots.
    facts: Vec<(u32, Vec<u32>)>,
    /// Per slot: every `(fact, position)` occurrence.
    occurrences: Vec<Vec<(u32, u32)>>,
    /// Per slot: deduplicated fact indices the slot occurs in.
    slot_facts: Vec<Vec<u32>>,
    /// Slots of non-rigid values, ascending.
    free_slots: Vec<u32>,
}

impl DenseCtx {
    fn build(facts: &Facts, rigid: &BTreeSet<Value>) -> Self {
        let adom: Vec<Value> = facts.active_domain().into_iter().collect();
        let nslots = adom.len();
        let mut dense: Vec<(u32, Vec<u32>)> = Vec::with_capacity(facts.len());
        let mut occurrences: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nslots];
        let mut slot_facts: Vec<Vec<u32>> = vec![Vec::new(); nslots];
        for (fi, (c, t)) in facts.iter().enumerate() {
            let slots: Vec<u32> = t
                .iter()
                .map(|v| adom.binary_search(&v).expect("adom value") as u32)
                .collect();
            for (pos, &s) in slots.iter().enumerate() {
                occurrences[s as usize].push((fi as u32, pos as u32));
                let sf = &mut slot_facts[s as usize];
                if sf.last() != Some(&(fi as u32)) {
                    sf.push(fi as u32);
                }
            }
            dense.push((c, slots));
        }
        let rigid_code: Vec<Option<u64>> = adom
            .iter()
            .map(|v| rigid.contains(v).then_some(v.index() as u64))
            .collect();
        let free_slots: Vec<u32> = (0..nslots as u32)
            .filter(|&s| rigid_code[s as usize].is_none())
            .collect();
        DenseCtx {
            adom,
            rigid_code,
            facts: dense,
            occurrences,
            slot_facts,
            free_slots,
        }
    }

    /// Iterated color refinement on dense slots. Bit-identical to the
    /// historical `BTreeMap` formulation: same initial colors, same per-round
    /// signature folding, same partition-stability stopping rule — the final
    /// `u64` colors (and hence canonical class *order*) are unchanged.
    fn refine(&self) -> Vec<u64> {
        let n = self.adom.len();
        let mut colors: Vec<u64> = (0..n)
            .map(|s| match self.rigid_code[s] {
                // Rigid values are distinguishable by identity.
                Some(code) => hash2(1, code),
                None => hash2(2, 0),
            })
            .collect();
        let mut next = vec![0u64; n];
        let mut sig: Vec<u64> = Vec::new();
        // Refine until stable (bounded by |adom| rounds).
        for _ in 0..n.max(1) {
            for s in 0..n {
                // Signature: multiset of (color, position, colors of
                // co-occurring values) over the facts containing the slot.
                sig.clear();
                for &(f, pos) in &self.occurrences[s] {
                    let (c, slots) = &self.facts[f as usize];
                    let mut h = hash2(*c as u64, pos as u64);
                    for &x in slots {
                        h = hash2(h, colors[x as usize]);
                    }
                    sig.push(h);
                }
                sig.sort_unstable();
                let mut h = colors[s];
                for &sv in &sig {
                    h = hash2(h, sv);
                }
                next[s] = h;
            }
            let stable = partition_blocks(&next) == partition_blocks(&colors);
            std::mem::swap(&mut colors, &mut next);
            if stable {
                break;
            }
        }
        colors
    }

    /// Identity labeling of a slot: rigid values by their code, free slots by
    /// `FREE_BASE + slot`. Used for automorphism membership tests.
    fn identity_code(&self, s: u32) -> u64 {
        self.rigid_code[s as usize].unwrap_or(FREE_BASE + s as u64)
    }
}

/// The partition induced by a slot coloring, blocks ordered by color value
/// and members ascending (mirrors the historical `partition_of` on values).
fn partition_blocks(colors: &[u64]) -> Vec<Vec<u32>> {
    let mut groups: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for (s, &c) in colors.iter().enumerate() {
        groups.entry(c).or_default().push(s as u32);
    }
    groups.into_values().collect()
}

/// Branch-and-bound search for the lex-min encoding over class-respecting
/// orders of the free slots.
struct Search<'a> {
    ctx: &'a DenseCtx,
    class_slots: &'a [Vec<u32>],
    /// Position `k` of the order draws its slot from class `class_of_pos[k]`.
    class_of_pos: Vec<u32>,
    nfree: usize,
    /// Per slot: assigned canonical index, `u32::MAX` when unassigned.
    assigned: Vec<u32>,
    best: Option<Vec<(u32, Vec<u64>)>>,
    orders: u64,
    cutoffs: u64,
    /// Identity-labeled fact set for transposition-automorphism tests.
    identity: HashSet<(u32, Vec<u64>)>,
    /// Scratch: per-fact encoding buffers for the prefix-prune check.
    enc_buf: Vec<Vec<u64>>,
    /// Scratch: per-fact "all slots determined" flags.
    det_flag: Vec<bool>,
    /// Scratch: indices of determined facts below the undetermined floor.
    det: Vec<u32>,
}

impl<'a> Search<'a> {
    fn new(ctx: &'a DenseCtx, class_slots: &'a [Vec<u32>]) -> Self {
        let nfree: usize = class_slots.iter().map(Vec::len).sum();
        let mut class_of_pos = Vec::with_capacity(nfree);
        for (ci, class) in class_slots.iter().enumerate() {
            for _ in 0..class.len() {
                class_of_pos.push(ci as u32);
            }
        }
        let identity: HashSet<(u32, Vec<u64>)> = ctx
            .facts
            .iter()
            .map(|(c, slots)| {
                let key = slots.iter().map(|&s| ctx.identity_code(s)).collect();
                (*c, key)
            })
            .collect();
        let nfacts = ctx.facts.len();
        Search {
            ctx,
            class_slots,
            class_of_pos,
            nfree,
            assigned: vec![u32::MAX; ctx.adom.len()],
            best: None,
            orders: 0,
            cutoffs: 0,
            identity,
            enc_buf: vec![Vec::new(); nfacts],
            det_flag: vec![false; nfacts],
            det: Vec::with_capacity(nfacts),
        }
    }

    fn dfs(&mut self, k: usize) {
        if k == self.nfree {
            self.leaf();
            return;
        }
        let class: &'a Vec<u32> = &self.class_slots[self.class_of_pos[k] as usize];
        // Forced move: with a single unassigned candidate there is nothing
        // to branch on, so skip all pruning machinery. This keeps the common
        // all-singleton-classes case at one straight-line descent.
        let mut only = u32::MAX;
        let mut count = 0usize;
        for &s in class {
            if self.assigned[s as usize] == u32::MAX {
                count += 1;
                only = s;
            }
        }
        if count == 1 {
            self.assigned[only as usize] = k as u32;
            self.dfs(k + 1);
            self.assigned[only as usize] = u32::MAX;
            return;
        }
        if self.should_prune(k) {
            self.cutoffs += 1;
            return;
        }
        let mut tried: Vec<u32> = Vec::with_capacity(count);
        for &w in class {
            if self.assigned[w as usize] != u32::MAX {
                continue;
            }
            // Orbit pruning: if swapping `w` with an already-explored sibling
            // is an automorphism of the fact set, the `w` subtree encodes the
            // same completions and can only tie — skip it.
            if tried.iter().any(|&v| self.transposition_fixes(v, w)) {
                self.cutoffs += 1;
                continue;
            }
            self.assigned[w as usize] = k as u32;
            self.dfs(k + 1);
            self.assigned[w as usize] = u32::MAX;
            tried.push(w);
        }
    }

    /// Materialise the encoding of a complete order and keep it when it is
    /// strictly better than the incumbent (first-found wins ties, matching
    /// the historical enumerator).
    fn leaf(&mut self) {
        self.orders += 1;
        let ctx = self.ctx;
        let mut enc: Vec<(u32, Vec<u64>)> = Vec::with_capacity(ctx.facts.len());
        for (c, slots) in &ctx.facts {
            let vals = slots
                .iter()
                .map(|&s| match ctx.rigid_code[s as usize] {
                    Some(rc) => rc,
                    None => FREE_BASE + self.assigned[s as usize] as u64,
                })
                .collect();
            enc.push((*c, vals));
        }
        enc.sort();
        match &self.best {
            Some(b) if *b <= enc => {}
            _ => self.best = Some(enc),
        }
    }

    /// Certificate prefix pruning. With `k` indices assigned, every
    /// still-unassigned free slot encodes as at least `FREE_BASE + k`, so a
    /// fact with an unassigned slot has a pointwise — hence lexicographic —
    /// lower bound. Let `L` be the least lower bound over undetermined facts:
    /// the determined facts strictly below `L` form an *exact* sorted prefix
    /// of every completion's encoding. If that prefix already compares
    /// greater than the incumbent best (or ties it while the incumbent's next
    /// element is below `L`), no completion in this subtree can win.
    fn should_prune(&mut self, k: usize) -> bool {
        let Search {
            ctx,
            assigned,
            best,
            enc_buf,
            det_flag,
            det,
            ..
        } = self;
        let ctx: &DenseCtx = ctx;
        let best = match best.as_ref() {
            Some(b) => b,
            None => return false,
        };
        let bound = FREE_BASE + k as u64;
        let nfacts = ctx.facts.len();
        for i in 0..nfacts {
            let (_, slots) = &ctx.facts[i];
            let buf = &mut enc_buf[i];
            buf.clear();
            let mut determined = true;
            for &s in slots {
                let code = match ctx.rigid_code[s as usize] {
                    Some(rc) => rc,
                    None => {
                        let a = assigned[s as usize];
                        if a == u32::MAX {
                            determined = false;
                            bound
                        } else {
                            FREE_BASE + a as u64
                        }
                    }
                };
                buf.push(code);
            }
            det_flag[i] = determined;
        }
        // L: least (color, lower-bound encoding) among undetermined facts.
        let mut l: Option<usize> = None;
        for (i, &determined) in det_flag.iter().enumerate().take(nfacts) {
            if !determined {
                let less = match l {
                    None => true,
                    Some(j) => fact_lt(ctx, enc_buf, i, j),
                };
                if less {
                    l = Some(i);
                }
            }
        }
        let l = match l {
            Some(l) => l,
            // No undetermined fact: cannot happen below a branch node, but
            // declining to prune is always sound.
            None => return false,
        };
        det.clear();
        for (i, &determined) in det_flag.iter().enumerate().take(nfacts) {
            if determined && fact_lt(ctx, enc_buf, i, l) {
                det.push(i as u32);
            }
        }
        det.sort_unstable_by(|&a, &b| {
            (ctx.facts[a as usize].0, &enc_buf[a as usize])
                .cmp(&(ctx.facts[b as usize].0, &enc_buf[b as usize]))
        });
        for (ix, &fi) in det.iter().enumerate() {
            let p = (ctx.facts[fi as usize].0, &enc_buf[fi as usize]);
            let b = (best[ix].0, &best[ix].1);
            match p.cmp(&b) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => return true,
                std::cmp::Ordering::Equal => {}
            }
        }
        // Prefix equals the incumbent so far; the subtree's next element is
        // ≥ L, so if the incumbent's next element is strictly below L every
        // completion here compares greater.
        let p_len = det.len();
        if p_len >= best.len() {
            return false;
        }
        let b_next = (best[p_len].0, &best[p_len].1);
        let l_item = (ctx.facts[l].0, &enc_buf[l]);
        b_next < l_item
    }

    /// True iff the transposition of free slots `v` and `w` (identity on
    /// everything else) maps the fact set onto itself.
    fn transposition_fixes(&self, v: u32, w: u32) -> bool {
        let ctx = self.ctx;
        for list in [&ctx.slot_facts[v as usize], &ctx.slot_facts[w as usize]] {
            for &fi in list.iter() {
                let (c, slots) = &ctx.facts[fi as usize];
                let key: Vec<u64> = slots
                    .iter()
                    .map(|&s| {
                        let s2 = if s == v {
                            w
                        } else if s == w {
                            v
                        } else {
                            s
                        };
                        ctx.identity_code(s2)
                    })
                    .collect();
                if !self.identity.contains(&(*c, key)) {
                    return false;
                }
            }
        }
        true
    }
}

#[inline]
fn fact_lt(ctx: &DenseCtx, enc_buf: &[Vec<u64>], i: usize, j: usize) -> bool {
    (ctx.facts[i].0, &enc_buf[i]) < (ctx.facts[j].0, &enc_buf[j])
}

/// Enumerate all orderings of the free values that respect the class
/// partition (classes in canonical order; arbitrary permutations within each
/// class), invoking `f` on each complete ordering. Oracle helper.
#[cfg(test)]
fn permute_classes(
    classes: &[Vec<Value>],
    class_ix: usize,
    acc: &mut Vec<Value>,
    f: &mut impl FnMut(&[Value]),
) {
    if class_ix == classes.len() {
        f(acc);
        return;
    }
    let class = &classes[class_ix];
    let mut perm: Vec<Value> = class.clone();
    permute_within(&mut perm, 0, classes, class_ix, acc, f);
}

#[cfg(test)]
fn permute_within(
    perm: &mut Vec<Value>,
    k: usize,
    classes: &[Vec<Value>],
    class_ix: usize,
    acc: &mut Vec<Value>,
    f: &mut impl FnMut(&[Value]),
) {
    if k == perm.len() {
        let start = acc.len();
        acc.extend(perm.iter().copied());
        permute_classes(classes, class_ix + 1, acc, f);
        acc.truncate(start);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute_within(perm, k + 1, classes, class_ix, acc, f);
        perm.swap(k, i);
    }
}

#[cfg(test)]
fn encode_with(
    facts: &Facts,
    rigid: &BTreeSet<Value>,
    canon_ix: &BTreeMap<Value, u32>,
) -> Vec<(u32, Vec<CanonVal>)> {
    let mut out: Vec<(u32, Vec<CanonVal>)> = facts
        .iter()
        .map(|(c, t)| {
            let vals = t
                .iter()
                .map(|v| {
                    if rigid.contains(&v) {
                        CanonVal::Rigid(v)
                    } else {
                        CanonVal::Var(canon_ix[&v])
                    }
                })
                .collect();
            (c, vals)
        })
        .collect();
    out.sort();
    out
}

/// Iterated color refinement: assigns each value of the active domain a hash
/// color that is invariant under isomorphisms fixing `rigid`. Rigid values
/// get a color derived from their identity. Thin map-building wrapper over
/// the dense [`DenseCtx::refine`] kernel.
fn refine_colors(facts: &Facts, rigid: &BTreeSet<Value>) -> BTreeMap<Value, u64> {
    let ctx = DenseCtx::build(facts, rigid);
    let colors = ctx.refine();
    ctx.adom
        .iter()
        .enumerate()
        .map(|(s, &v)| (v, colors[s]))
        .collect()
}

/// Multiset of (color, class size); must agree for isomorphic fact sets.
fn class_histogram(colors: &BTreeMap<Value, u64>) -> BTreeMap<u64, usize> {
    let mut hist = BTreeMap::new();
    for &c in colors.values() {
        *hist.entry(c).or_insert(0) += 1;
    }
    hist
}

#[inline]
pub(crate) fn hash2(a: u64, b: u64) -> u64 {
    // Simple 64-bit mix (splitmix-style); quality is plenty for refinement.
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_add(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    a: &Facts,
    b: &Facts,
    colors_a: &BTreeMap<Value, u64>,
    colors_b: &BTreeMap<Value, u64>,
    free_a: &[Value],
    k: usize,
    map: &mut BTreeMap<Value, Value>,
    used: &mut BTreeSet<Value>,
) -> bool {
    if k == free_a.len() {
        // All values mapped; verify facts map exactly.
        return a.rename(map) == *b;
    }
    let v = free_a[k];
    let target_color = colors_a[&v];
    let candidates: Vec<Value> = colors_b
        .iter()
        .filter(|(w, &c)| c == target_color && !used.contains(w))
        .map(|(&w, _)| w)
        .collect();
    for w in candidates {
        map.insert(v, w);
        used.insert(w);
        if partial_consistent(a, b, map)
            && backtrack(a, b, colors_a, colors_b, free_a, k + 1, map, used)
        {
            return true;
        }
        map.remove(&v);
        used.remove(&w);
    }
    false
}

/// Check that every fact of `a` whose values are all mapped already has an
/// image in `b`.
fn partial_consistent(a: &Facts, b: &Facts, map: &BTreeMap<Value, Value>) -> bool {
    for (c, t) in a.iter() {
        if t.iter().all(|v| map.contains_key(&v)) {
            let img = t.rename(map);
            if !b.contains(c, &img) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantPool;

    fn vals(pool: &mut ConstantPool, names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| pool.intern(n)).collect()
    }

    #[test]
    fn identical_facts_are_isomorphic() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let mut f = Facts::new();
        f.insert(0, Tuple::from([v[0], v[1]]));
        let rigid = BTreeSet::new();
        assert!(f.isomorphic(&f.clone(), &rigid));
    }

    #[test]
    fn renamed_facts_are_isomorphic_when_not_rigid() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[2], v[1]]));
        let empty = BTreeSet::new();
        assert!(f1.isomorphic(&f2, &empty));
        // But if `a` is rigid, renaming it is not allowed.
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        assert!(!f1.isomorphic(&f2, &rigid));
    }

    #[test]
    fn isomorphism_respects_structure() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d"]);
        // f1: edge a->b plus loop c->c. f2: edge a->b plus edge c->d.
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(0, Tuple::from([v[2], v[2]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[0], v[1]]));
        f2.insert(0, Tuple::from([v[2], v[3]]));
        let empty = BTreeSet::new();
        assert!(!f1.isomorphic(&f2, &empty));
    }

    #[test]
    fn witness_maps_facts_exactly() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "x", "y"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(1, Tuple::from([v[1]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[2], v[3]]));
        f2.insert(1, Tuple::from([v[3]]));
        let empty = BTreeSet::new();
        let h = f1.isomorphism(&f2, &empty).expect("isomorphic");
        assert_eq!(f1.rename(&h), f2);
    }

    #[test]
    fn canonical_key_agrees_with_isomorphism() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d"]);
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        // Q(a,b), P(b)  vs  Q(a,c), P(c): isomorphic fixing a.
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(1, Tuple::from([v[1]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[0], v[2]]));
        f2.insert(1, Tuple::from([v[2]]));
        assert_eq!(f1.canonical_key(&rigid), f2.canonical_key(&rigid));
        // Q(a,b), P(d): not isomorphic to f1.
        let mut f3 = Facts::new();
        f3.insert(0, Tuple::from([v[0], v[1]]));
        f3.insert(1, Tuple::from([v[3]]));
        assert_ne!(f1.canonical_key(&rigid), f3.canonical_key(&rigid));
    }

    #[test]
    fn canonical_key_with_symmetric_values() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let empty = BTreeSet::new();
        // P(a), P(b), P(c): all three interchangeable.
        let mut f1 = Facts::new();
        for &x in &v {
            f1.insert(0, Tuple::from([x]));
        }
        let mut pool2 = ConstantPool::new();
        let w = vals(&mut pool2, &["x", "y", "z"]);
        let mut f2 = Facts::new();
        for &x in &w {
            f2.insert(0, Tuple::from([x]));
        }
        assert_eq!(f1.canonical_key(&empty), f2.canonical_key(&empty));
        assert_eq!(f1.canonical_key(&empty).var_count(), 3);
    }

    #[test]
    fn nullary_facts_participate() {
        let mut f1 = Facts::new();
        f1.insert(7, Tuple::unit());
        let f2 = Facts::new();
        let empty = BTreeSet::new();
        assert!(!f1.isomorphic(&f2, &empty));
        assert_ne!(f1.canonical_key(&empty), f2.canonical_key(&empty));
    }

    #[test]
    fn symmetric_classes_key_in_one_descent() {
        // 12 fully interchangeable values form a single refinement class:
        // 12! ≈ 4.8·10^8 class-respecting orders. Transposition-orbit
        // pruning proves every sibling subtree is a duplicate, so the search
        // materialises exactly one order and cuts 11+10+...+1 = 66 siblings.
        let mut pool = ConstantPool::new();
        let mut f1 = Facts::new();
        let mut f2 = Facts::new();
        for i in 0..12 {
            f1.insert(0, Tuple::from([pool.intern(&format!("x{i}"))]));
            f2.insert(0, Tuple::from([pool.intern(&format!("y{i}"))]));
        }
        let empty = BTreeSet::new();
        let (k1, s1) = f1.canonical_key_stats(&empty);
        let (k2, s2) = f2.canonical_key_stats(&empty);
        assert_eq!(k1, k2);
        assert_eq!(k1.var_count(), 12);
        assert_eq!(s1.orders_enumerated, 1);
        assert_eq!(s1.prune_cutoffs, 66);
        assert_eq!(s1, s2);
        // The backtracking matcher still agrees with key equality.
        assert!(f1.isomorphic(&f2, &empty));
        f2.insert(1, Tuple::from([pool.intern("y0")]));
        assert_ne!(k1, f2.canonical_key(&empty));
        assert!(!f1.isomorphic(&f2, &empty));
    }

    #[test]
    fn pruned_search_agrees_with_exhaustive_enumeration() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d"]);
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        let mut f = Facts::new();
        f.insert(0, Tuple::from([v[0], v[1]]));
        f.insert(0, Tuple::from([v[1], v[2]]));
        f.insert(1, Tuple::from([v[3]]));
        assert_eq!(f.canonical_key(&rigid), f.exhaustive_canonical_key(&rigid));
        // And on a symmetric class at the edge of what enumeration affords:
        // 6 interchangeable values, 6! = 720 orders.
        let mut g = Facts::new();
        for i in 0..6 {
            g.insert(0, Tuple::from([pool.intern(&format!("s{i}"))]));
        }
        let empty = BTreeSet::new();
        let (key, stats) = g.canonical_key_stats(&empty);
        assert_eq!(key, g.exhaustive_canonical_key(&empty));
        assert_eq!(stats.orders_enumerated, 1);
    }

    #[test]
    fn from_instance_round_trip() {
        let mut pool = ConstantPool::new();
        let mut schema = crate::Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let a = pool.intern("a");
        let inst = Instance::from_facts([(p, Tuple::from([a]))]);
        let f = Facts::from_instance(&inst);
        assert_eq!(f.len(), 1);
        assert!(f.contains(p.index() as u32, &Tuple::from([a])));
    }
}
