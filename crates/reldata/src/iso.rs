//! Isomorphism and canonical forms of fact sets.
//!
//! The abstraction results of the paper (Theorems 4.3 and 5.4) quotient
//! transition-system states by *isomorphism type*: two states are
//! interchangeable when a bijection over constants — fixing the "rigid"
//! constants of `ADOM(I_0)` pointwise — maps one database onto the other.
//! For the deterministic semantics the state also carries a service-call map,
//! so isomorphism must be computed over a mixed structure of relational facts
//! and call-map entries. We therefore work over a generic [`Facts`] structure:
//! a set of *colored tuples*, where the color is a relation id, a synthetic
//! service-call-map id, or anything else the caller needs.
//!
//! Two entry points:
//! * [`Facts::isomorphism`] — a backtracking matcher (with color-refinement
//!   pruning) that produces a witnessing bijection;
//! * [`Facts::canonical_key`] — a canonical form such that two fact sets have
//!   equal keys iff they are isomorphic. Used to deduplicate states in
//!   `O(1)` during abstract-transition-system construction.

use crate::{Instance, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A set of colored tuples ("facts") over values.
///
/// Colors play the role of relation symbols but are plain `u32`s so that
/// callers can mix relational facts with synthetic facts (e.g. service-call
/// map entries `f(v...) -> r` encoded as a fact of a per-function color).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Facts {
    facts: BTreeSet<(u32, Tuple)>,
}

/// A value inside a canonical form: rigid values survive as themselves,
/// non-rigid values are replaced by canonical indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CanonVal {
    /// A rigid constant (kept as-is).
    Rigid(Value),
    /// The `n`-th non-rigid value in canonical order.
    Var(u32),
}

/// Canonical form of a [`Facts`] structure modulo renaming of non-rigid
/// values. Equal keys ⇔ isomorphic fact sets (w.r.t. the same rigid set).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonKey {
    facts: Vec<(u32, Vec<CanonVal>)>,
}

impl CanonKey {
    /// The canonical facts (sorted).
    pub fn facts(&self) -> &[(u32, Vec<CanonVal>)] {
        &self.facts
    }

    /// Number of distinct non-rigid values in the original fact set.
    pub fn var_count(&self) -> usize {
        let mut seen = BTreeSet::new();
        for (_, t) in &self.facts {
            for v in t {
                if let CanonVal::Var(i) = v {
                    seen.insert(*i);
                }
            }
        }
        seen.len()
    }
}

impl Facts {
    /// Empty fact set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a colored fact.
    pub fn insert(&mut self, color: u32, tuple: Tuple) -> bool {
        self.facts.insert((color, tuple))
    }

    /// Membership.
    pub fn contains(&self, color: u32, tuple: &Tuple) -> bool {
        self.facts.contains(&(color, tuple.clone()))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterate over facts.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Tuple)> {
        self.facts.iter().map(|(c, t)| (*c, t))
    }

    /// Build from a relational instance: the color of each fact is the
    /// relation's index.
    pub fn from_instance(inst: &Instance) -> Self {
        let mut out = Facts::new();
        for (rel, t) in inst.facts() {
            out.insert(rel.index() as u32, t.clone());
        }
        out
    }

    /// Add all facts of an instance under an offset applied to relation
    /// colors (so callers can reserve low colors for something else).
    pub fn extend_from_instance(&mut self, inst: &Instance, color_offset: u32) {
        for (rel, t) in inst.facts() {
            self.insert(rel.index() as u32 + color_offset, t.clone());
        }
    }

    /// All values occurring in the fact set.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut adom = BTreeSet::new();
        for (_, t) in self.iter() {
            adom.extend(t.iter());
        }
        adom
    }

    /// Apply a renaming to every fact.
    pub fn rename(&self, map: &BTreeMap<Value, Value>) -> Facts {
        let mut out = Facts::new();
        for (c, t) in self.iter() {
            out.insert(c, t.rename(map));
        }
        out
    }

    /// Find an isomorphism from `self` to `other`: a bijection `h` between
    /// their active domains that is the identity on `rigid` values and maps
    /// `self`'s facts exactly onto `other`'s. Returns the witnessing map on
    /// success.
    pub fn isomorphism(
        &self,
        other: &Facts,
        rigid: &BTreeSet<Value>,
    ) -> Option<BTreeMap<Value, Value>> {
        if self.facts.len() != other.facts.len() {
            return None;
        }
        let adom_a = self.active_domain();
        let adom_b = other.active_domain();
        if adom_a.len() != adom_b.len() {
            return None;
        }
        // Rigid values must coincide on both sides.
        let rigid_a: BTreeSet<Value> = adom_a.intersection(rigid).copied().collect();
        let rigid_b: BTreeSet<Value> = adom_b.intersection(rigid).copied().collect();
        if rigid_a != rigid_b {
            return None;
        }
        // Invariant-signature prefilter (see `sig`): isomorphic fact sets
        // must have equal signatures, and the signature is much cheaper than
        // color refinement plus backtracking.
        if self.signature(rigid) != other.signature(rigid) {
            return None;
        }
        // Color refinement to prune candidates.
        let colors_a = refine_colors(self, rigid);
        let colors_b = refine_colors(other, rigid);
        // Class histograms must agree.
        if class_histogram(&colors_a) != class_histogram(&colors_b) {
            return None;
        }
        let free_a: Vec<Value> = adom_a
            .iter()
            .copied()
            .filter(|v| !rigid.contains(v))
            .collect();
        let mut map: BTreeMap<Value, Value> = rigid_a.iter().map(|&v| (v, v)).collect();
        let mut used: BTreeSet<Value> = rigid_b.clone();
        if backtrack(
            self, other, &colors_a, &colors_b, &free_a, 0, &mut map, &mut used,
        ) {
            Some(map)
        } else {
            None
        }
    }

    /// True iff `self` and `other` are isomorphic (see [`Facts::isomorphism`]).
    pub fn isomorphic(&self, other: &Facts, rigid: &BTreeSet<Value>) -> bool {
        self.isomorphism(other, rigid).is_some()
    }

    /// Canonical key modulo renaming of non-rigid values.
    ///
    /// Two fact sets yield the same key (w.r.t. the same rigid set) iff they
    /// are isomorphic. The computation refines value colors and then searches
    /// for the lexicographically-least encoding over all class-respecting
    /// orders of the non-rigid values; the search is exponential only in the
    /// sizes of the refinement classes, which are tiny for the databases a
    /// DCDS state holds.
    pub fn canonical_key(&self, rigid: &BTreeSet<Value>) -> CanonKey {
        self.try_canonical_key(rigid, u64::MAX)
            .expect("unbounded canonicalisation cannot exceed the budget")
    }

    /// [`Facts::canonical_key`] with an explicit budget on the number of
    /// class-respecting orders the search may enumerate.
    ///
    /// The search is factorial in the refinement class sizes: a fact set
    /// with a `k`-element symmetric class costs `k!` encodings, which for
    /// `k ⪆ 10` is prohibitive (and for the fully symmetric instances some
    /// workloads produce, astronomically so). When the product of class
    /// factorials exceeds `max_orders` this returns `None` *before* doing
    /// any exponential work; callers (the abstraction dedup indices) then
    /// fall back to the backtracking matcher of [`Facts::isomorphism`],
    /// which handles symmetric classes in near-linear time because every
    /// candidate extension succeeds. [`PERM_BUDGET`] is the documented
    /// default budget.
    pub fn try_canonical_key(&self, rigid: &BTreeSet<Value>, max_orders: u64) -> Option<CanonKey> {
        let adom = self.active_domain();
        let free: Vec<Value> = adom
            .iter()
            .copied()
            .filter(|v| !rigid.contains(v))
            .collect();
        if free.is_empty() {
            return Some(CanonKey {
                facts: encode(self, rigid, &BTreeMap::new()),
            });
        }
        // Iterative color refinement first: it usually shatters the domain
        // into singleton classes, making the order search trivial.
        let colors = refine_colors(self, rigid);
        // Group the free values by refined color; class *order* is canonical
        // because refined colors are computed from iso-invariant signatures.
        let mut classes: BTreeMap<u64, Vec<Value>> = BTreeMap::new();
        for &v in &free {
            classes.entry(colors[&v]).or_default().push(v);
        }
        let class_list: Vec<Vec<Value>> = classes.into_values().collect();
        let mut orders: u64 = 1;
        for class in &class_list {
            for k in 1..=class.len() as u64 {
                orders = orders.saturating_mul(k);
            }
            if orders > max_orders {
                return None;
            }
        }
        let mut best: Option<Vec<(u32, Vec<CanonVal>)>> = None;
        let mut assignment: Vec<Value> = Vec::with_capacity(free.len());
        permute_classes(&class_list, 0, &mut assignment, &mut |order| {
            let mut canon_ix: BTreeMap<Value, u32> = BTreeMap::new();
            for (i, &v) in order.iter().enumerate() {
                canon_ix.insert(v, i as u32);
            }
            let enc = encode_with(self, rigid, &canon_ix);
            match &best {
                Some(b) if *b <= enc => {}
                _ => best = Some(enc),
            }
        });
        Some(CanonKey {
            facts: best.expect("at least one ordering exists"),
        })
    }
}

/// Default budget for [`Facts::try_canonical_key`]: `8! = 40320` encodings.
///
/// DCDS states canonicalise with singleton or tiny refinement classes (the
/// call map and constraints break symmetries), so real workloads sit orders
/// of magnitude below this; only adversarially symmetric instances hit it,
/// and those are exactly the ones the backtracking matcher handles cheaply.
pub const PERM_BUDGET: u64 = 40_320;

/// Enumerate all orderings of the free values that respect the class
/// partition (classes in canonical order; arbitrary permutations within each
/// class), invoking `f` on each complete ordering.
fn permute_classes(
    classes: &[Vec<Value>],
    class_ix: usize,
    acc: &mut Vec<Value>,
    f: &mut impl FnMut(&[Value]),
) {
    if class_ix == classes.len() {
        f(acc);
        return;
    }
    let class = &classes[class_ix];
    let mut perm: Vec<Value> = class.clone();
    permute_within(&mut perm, 0, classes, class_ix, acc, f);
}

fn permute_within(
    perm: &mut Vec<Value>,
    k: usize,
    classes: &[Vec<Value>],
    class_ix: usize,
    acc: &mut Vec<Value>,
    f: &mut impl FnMut(&[Value]),
) {
    if k == perm.len() {
        let start = acc.len();
        acc.extend(perm.iter().copied());
        permute_classes(classes, class_ix + 1, acc, f);
        acc.truncate(start);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute_within(perm, k + 1, classes, class_ix, acc, f);
        perm.swap(k, i);
    }
}

fn encode(
    facts: &Facts,
    rigid: &BTreeSet<Value>,
    _unused: &BTreeMap<Value, Value>,
) -> Vec<(u32, Vec<CanonVal>)> {
    encode_with(facts, rigid, &BTreeMap::new())
}

fn encode_with(
    facts: &Facts,
    rigid: &BTreeSet<Value>,
    canon_ix: &BTreeMap<Value, u32>,
) -> Vec<(u32, Vec<CanonVal>)> {
    let mut out: Vec<(u32, Vec<CanonVal>)> = facts
        .iter()
        .map(|(c, t)| {
            let vals = t
                .iter()
                .map(|v| {
                    if rigid.contains(&v) {
                        CanonVal::Rigid(v)
                    } else {
                        CanonVal::Var(canon_ix[&v])
                    }
                })
                .collect();
            (c, vals)
        })
        .collect();
    out.sort();
    out
}

/// Iterated color refinement: assigns each value of the active domain a hash
/// color that is invariant under isomorphisms fixing `rigid`. Rigid values
/// get a color derived from their identity.
fn refine_colors(facts: &Facts, rigid: &BTreeSet<Value>) -> BTreeMap<Value, u64> {
    let adom = facts.active_domain();
    let mut colors: BTreeMap<Value, u64> = adom
        .iter()
        .map(|&v| {
            let init = if rigid.contains(&v) {
                // Rigid values are distinguishable by identity.
                hash2(1, v.index() as u64)
            } else {
                hash2(2, 0)
            };
            (v, init)
        })
        .collect();
    // Refine until stable (bounded by |adom| rounds).
    for _ in 0..adom.len().max(1) {
        let mut next: BTreeMap<Value, u64> = BTreeMap::new();
        for &v in &adom {
            // Signature: multiset of (color, position, colors of co-occurring
            // values) over the facts containing v.
            let mut sig: Vec<u64> = Vec::new();
            for (c, t) in facts.iter() {
                for (pos, w) in t.iter().enumerate() {
                    if w == v {
                        let mut h = hash2(c as u64, pos as u64);
                        for x in t.iter() {
                            h = hash2(h, colors[&x]);
                        }
                        sig.push(h);
                    }
                }
            }
            sig.sort_unstable();
            let mut h = colors[&v];
            for s in sig {
                h = hash2(h, s);
            }
            next.insert(v, h);
        }
        if partition_of(&next) == partition_of(&colors) {
            colors = next;
            break;
        }
        colors = next;
    }
    colors
}

/// The partition induced by a coloring (used to detect refinement stability).
fn partition_of(colors: &BTreeMap<Value, u64>) -> Vec<Vec<Value>> {
    let mut groups: BTreeMap<u64, Vec<Value>> = BTreeMap::new();
    for (&v, &c) in colors {
        groups.entry(c).or_default().push(v);
    }
    groups.into_values().collect()
}

/// Multiset of (color, class size); must agree for isomorphic fact sets.
fn class_histogram(colors: &BTreeMap<Value, u64>) -> BTreeMap<u64, usize> {
    let mut hist = BTreeMap::new();
    for &c in colors.values() {
        *hist.entry(c).or_insert(0) += 1;
    }
    hist
}

#[inline]
pub(crate) fn hash2(a: u64, b: u64) -> u64 {
    // Simple 64-bit mix (splitmix-style); quality is plenty for refinement.
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_add(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    a: &Facts,
    b: &Facts,
    colors_a: &BTreeMap<Value, u64>,
    colors_b: &BTreeMap<Value, u64>,
    free_a: &[Value],
    k: usize,
    map: &mut BTreeMap<Value, Value>,
    used: &mut BTreeSet<Value>,
) -> bool {
    if k == free_a.len() {
        // All values mapped; verify facts map exactly.
        return a.rename(map) == *b;
    }
    let v = free_a[k];
    let target_color = colors_a[&v];
    let candidates: Vec<Value> = colors_b
        .iter()
        .filter(|(w, &c)| c == target_color && !used.contains(w))
        .map(|(&w, _)| w)
        .collect();
    for w in candidates {
        map.insert(v, w);
        used.insert(w);
        if partial_consistent(a, b, map)
            && backtrack(a, b, colors_a, colors_b, free_a, k + 1, map, used)
        {
            return true;
        }
        map.remove(&v);
        used.remove(&w);
    }
    false
}

/// Check that every fact of `a` whose values are all mapped already has an
/// image in `b`.
fn partial_consistent(a: &Facts, b: &Facts, map: &BTreeMap<Value, Value>) -> bool {
    for (c, t) in a.iter() {
        if t.iter().all(|v| map.contains_key(&v)) {
            let img = t.rename(map);
            if !b.contains(c, &img) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantPool;

    fn vals(pool: &mut ConstantPool, names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| pool.intern(n)).collect()
    }

    #[test]
    fn identical_facts_are_isomorphic() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b"]);
        let mut f = Facts::new();
        f.insert(0, Tuple::from([v[0], v[1]]));
        let rigid = BTreeSet::new();
        assert!(f.isomorphic(&f.clone(), &rigid));
    }

    #[test]
    fn renamed_facts_are_isomorphic_when_not_rigid() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[2], v[1]]));
        let empty = BTreeSet::new();
        assert!(f1.isomorphic(&f2, &empty));
        // But if `a` is rigid, renaming it is not allowed.
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        assert!(!f1.isomorphic(&f2, &rigid));
    }

    #[test]
    fn isomorphism_respects_structure() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d"]);
        // f1: edge a->b plus loop c->c. f2: edge a->b plus edge c->d.
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(0, Tuple::from([v[2], v[2]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[0], v[1]]));
        f2.insert(0, Tuple::from([v[2], v[3]]));
        let empty = BTreeSet::new();
        assert!(!f1.isomorphic(&f2, &empty));
    }

    #[test]
    fn witness_maps_facts_exactly() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "x", "y"]);
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(1, Tuple::from([v[1]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[2], v[3]]));
        f2.insert(1, Tuple::from([v[3]]));
        let empty = BTreeSet::new();
        let h = f1.isomorphism(&f2, &empty).expect("isomorphic");
        assert_eq!(f1.rename(&h), f2);
    }

    #[test]
    fn canonical_key_agrees_with_isomorphism() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d"]);
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        // Q(a,b), P(b)  vs  Q(a,c), P(c): isomorphic fixing a.
        let mut f1 = Facts::new();
        f1.insert(0, Tuple::from([v[0], v[1]]));
        f1.insert(1, Tuple::from([v[1]]));
        let mut f2 = Facts::new();
        f2.insert(0, Tuple::from([v[0], v[2]]));
        f2.insert(1, Tuple::from([v[2]]));
        assert_eq!(f1.canonical_key(&rigid), f2.canonical_key(&rigid));
        // Q(a,b), P(d): not isomorphic to f1.
        let mut f3 = Facts::new();
        f3.insert(0, Tuple::from([v[0], v[1]]));
        f3.insert(1, Tuple::from([v[3]]));
        assert_ne!(f1.canonical_key(&rigid), f3.canonical_key(&rigid));
    }

    #[test]
    fn canonical_key_with_symmetric_values() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c"]);
        let empty = BTreeSet::new();
        // P(a), P(b), P(c): all three interchangeable.
        let mut f1 = Facts::new();
        for &x in &v {
            f1.insert(0, Tuple::from([x]));
        }
        let mut pool2 = ConstantPool::new();
        let w = vals(&mut pool2, &["x", "y", "z"]);
        let mut f2 = Facts::new();
        for &x in &w {
            f2.insert(0, Tuple::from([x]));
        }
        assert_eq!(f1.canonical_key(&empty), f2.canonical_key(&empty));
        assert_eq!(f1.canonical_key(&empty).var_count(), 3);
    }

    #[test]
    fn nullary_facts_participate() {
        let mut f1 = Facts::new();
        f1.insert(7, Tuple::unit());
        let f2 = Facts::new();
        let empty = BTreeSet::new();
        assert!(!f1.isomorphic(&f2, &empty));
        assert_ne!(f1.canonical_key(&empty), f2.canonical_key(&empty));
    }

    #[test]
    fn permutation_budget_guards_symmetric_classes() {
        // 12 fully interchangeable values form a single refinement class:
        // 12! ≈ 4.8·10^8 orders. The budgeted canonicalisation must refuse
        // instantly instead of enumerating them...
        let mut pool = ConstantPool::new();
        let mut f1 = Facts::new();
        let mut f2 = Facts::new();
        for i in 0..12 {
            f1.insert(0, Tuple::from([pool.intern(&format!("x{i}"))]));
            f2.insert(0, Tuple::from([pool.intern(&format!("y{i}"))]));
        }
        let empty = BTreeSet::new();
        assert_eq!(f1.try_canonical_key(&empty, crate::PERM_BUDGET), None);
        // ... while the backtracking matcher (the documented fallback)
        // handles the same symmetric instance in near-linear time, because
        // every candidate extension is consistent.
        assert!(f1.isomorphic(&f2, &empty));
        f2.insert(1, Tuple::from([pool.intern("y0")]));
        assert!(!f1.isomorphic(&f2, &empty));
    }

    #[test]
    fn budgeted_key_agrees_with_unbounded_when_within_budget() {
        let mut pool = ConstantPool::new();
        let v = vals(&mut pool, &["a", "b", "c", "d"]);
        let rigid: BTreeSet<Value> = [v[0]].into_iter().collect();
        let mut f = Facts::new();
        f.insert(0, Tuple::from([v[0], v[1]]));
        f.insert(0, Tuple::from([v[1], v[2]]));
        f.insert(1, Tuple::from([v[3]]));
        assert_eq!(
            f.try_canonical_key(&rigid, crate::PERM_BUDGET),
            Some(f.canonical_key(&rigid))
        );
    }

    #[test]
    fn from_instance_round_trip() {
        let mut pool = ConstantPool::new();
        let mut schema = crate::Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let a = pool.intern("a");
        let inst = Instance::from_facts([(p, Tuple::from([a]))]);
        let f = Facts::from_instance(&inst);
        assert_eq!(f.len(), 1);
        assert!(f.contains(p.index() as u32, &Tuple::from([a])));
    }
}
