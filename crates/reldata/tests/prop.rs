//! Property-based tests for the relational substrate.
//!
//! Core invariants:
//! * isomorphism (with a fixed rigid set) is reflexive, symmetric, and
//!   invariant under random renamings of non-rigid values;
//! * canonical keys agree exactly with the backtracking isomorphism matcher;
//! * renaming by a bijection preserves fact counts.

// Property tests require the external `proptest` crate, which the offline
// build environment cannot fetch; see the crate manifest for how to enable.
#![cfg(feature = "proptest")]

use dcds_reldata::{ConstantPool, Facts, Tuple, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const NUM_VALUES: usize = 6;

/// A random fact set over `NUM_VALUES` values and up to 3 colors of arity
/// 1..=2, plus which of the values are rigid.
fn arb_facts() -> impl Strategy<Value = (Facts, BTreeSet<Value>)> {
    let fact = (0u32..3, prop::collection::vec(0usize..NUM_VALUES, 1..=2));
    (
        prop::collection::vec(fact, 0..8),
        prop::collection::vec(any::<bool>(), NUM_VALUES),
    )
        .prop_map(|(raw, rigid_flags)| {
            let mut pool = ConstantPool::new();
            let vals: Vec<Value> = (0..NUM_VALUES)
                .map(|i| pool.intern(&format!("v{i}")))
                .collect();
            let mut facts = Facts::new();
            for (color, ixs) in raw {
                let t: Vec<Value> = ixs.into_iter().map(|i| vals[i]).collect();
                facts.insert(color, Tuple::from(t));
            }
            let rigid: BTreeSet<Value> = vals
                .iter()
                .zip(rigid_flags)
                .filter(|(_, f)| *f)
                .map(|(v, _)| *v)
                .collect();
            (facts, rigid)
        })
}

/// A random permutation of the non-rigid values (extended with identity on
/// rigid ones).
fn permute_free(facts: &Facts, rigid: &BTreeSet<Value>, seed: u64) -> BTreeMap<Value, Value> {
    let adom = facts.active_domain();
    let free: Vec<Value> = adom
        .iter()
        .copied()
        .filter(|v| !rigid.contains(v))
        .collect();
    let mut perm = free.clone();
    // Deterministic Fisher-Yates from the seed.
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    for i in (1..perm.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    let mut map: BTreeMap<Value, Value> = free.iter().copied().zip(perm).collect();
    for &r in rigid {
        map.insert(r, r);
    }
    map
}

proptest! {
    #[test]
    fn isomorphism_is_reflexive((facts, rigid) in arb_facts()) {
        prop_assert!(facts.isomorphic(&facts.clone(), &rigid));
    }

    #[test]
    fn renaming_free_values_preserves_isomorphism(
        (facts, rigid) in arb_facts(),
        seed in any::<u64>(),
    ) {
        let map = permute_free(&facts, &rigid, seed);
        let renamed = facts.rename(&map);
        prop_assert!(facts.isomorphic(&renamed, &rigid));
        // Symmetry.
        prop_assert!(renamed.isomorphic(&facts, &rigid));
        // Canonical keys agree.
        prop_assert_eq!(facts.canonical_key(&rigid), renamed.canonical_key(&rigid));
    }

    #[test]
    fn canonical_key_agrees_with_matcher(
        (f1, rigid) in arb_facts(),
        (f2, _) in arb_facts(),
    ) {
        // Compare two independent fact sets over the same value universe.
        let same_key = f1.canonical_key(&rigid) == f2.canonical_key(&rigid);
        let iso = f1.isomorphic(&f2, &rigid);
        prop_assert_eq!(same_key, iso);
    }

    #[test]
    fn isomorphism_witness_is_exact((facts, rigid) in arb_facts(), seed in any::<u64>()) {
        let map = permute_free(&facts, &rigid, seed);
        let renamed = facts.rename(&map);
        if let Some(h) = facts.isomorphism(&renamed, &rigid) {
            prop_assert_eq!(facts.rename(&h), renamed);
            // h is the identity on rigid values of the active domain.
            for (&x, &y) in &h {
                if rigid.contains(&x) {
                    prop_assert_eq!(x, y);
                }
            }
        } else {
            prop_assert!(false, "renamed copy must be isomorphic");
        }
    }

    #[test]
    fn bijective_renaming_preserves_cardinality((facts, rigid) in arb_facts(), seed in any::<u64>()) {
        let map = permute_free(&facts, &rigid, seed);
        prop_assert_eq!(facts.rename(&map).len(), facts.len());
    }
}
