//! Seeded differential test: the arena/delta state store against owned
//! `Facts`/`Instance` state.
//!
//! Random mutation chains (insert/remove a few facts off a random
//! existing state — the shape of an action's effect) are applied to both
//! representations in lockstep; every stored state must then materialise
//! **bit-identically**: same fact iteration order, same `Facts` and
//! `Instance`, same signature and canonical key under random rigid sets,
//! same `InstanceIndex` probe answers whether the index is built from
//! scratch or copy-on-write from the parent's.
//!
//! Runs offline: pseudo-randomness is a local SplitMix64 (Steele, Lea &
//! Flood, OOPSLA 2014), not the `rand` crate, so the exact same chains
//! replay on every run and platform.

use dcds_reldata::{
    ConstantPool, Facts, Instance, InstanceIndex, RelId, StateRef, StateStore, Tuple, Value,
};
use std::collections::BTreeSet;

/// SplitMix64 (local copy — this crate has no path to the bench crate's
/// `rng` module without a dependency cycle).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

const NUM_RELS: u32 = 3;
const NUM_VALUES: usize = 6;

fn random_fact(rng: &mut SplitMix64, vals: &[Value]) -> (u32, Tuple) {
    let color = rng.gen_range(NUM_RELS as usize) as u32;
    let arity = 1 + rng.gen_range(2);
    let tuple = Tuple::new(
        (0..arity)
            .map(|_| vals[rng.gen_range(vals.len())])
            .collect::<Vec<_>>(),
    );
    (color, tuple)
}

/// Apply a random action-shaped mutation (a few inserts and removes) to a
/// copy of `base`. `Facts` has no removal — like the engines, build the
/// successor fact set from scratch.
fn mutate(rng: &mut SplitMix64, base: &Facts, vals: &[Value]) -> Facts {
    let mut kept: Vec<(u32, Tuple)> = base.iter().map(|(c, t)| (c, t.clone())).collect();
    for _ in 0..rng.gen_range(3) {
        if kept.is_empty() {
            break;
        }
        kept.remove(rng.gen_range(kept.len()));
    }
    let mut out = Facts::new();
    for (c, t) in kept {
        out.insert(c, t);
    }
    for _ in 0..1 + rng.gen_range(3) {
        let (c, t) = random_fact(rng, vals);
        out.insert(c, t);
    }
    out
}

/// Random rigid subset of the value universe.
fn random_rigid(rng: &mut SplitMix64, vals: &[Value]) -> BTreeSet<Value> {
    vals.iter()
        .copied()
        .filter(|_| rng.gen_range(2) == 0)
        .collect()
}

/// Every probe answer of `idx` must equal the scratch-built index's over
/// all single-position access paths and a sample of keys.
fn assert_index_matches(
    scratch: &InstanceIndex,
    idx: &InstanceIndex,
    inst: &Instance,
    vals: &[Value],
) {
    for rel in 0..NUM_RELS {
        for pos in 0..2usize {
            for &v in vals {
                let a = scratch.probe(RelId::from_index(rel as usize), &[pos], &[v]);
                let b = idx.probe(RelId::from_index(rel as usize), &[pos], &[v]);
                assert_eq!(a, b, "index probe diverged on {inst:?}");
            }
        }
    }
}

#[test]
fn random_mutation_chains_materialise_identically() {
    for seed in 0..8u64 {
        let mut rng = SplitMix64(0xd1f_f00d ^ seed.wrapping_mul(0x9e37_79b9));
        let mut pool = ConstantPool::new();
        let vals: Vec<Value> = (0..NUM_VALUES)
            .map(|i| pool.intern(&format!("v{i}")))
            .collect();

        // Root state: a handful of random facts.
        let mut root = Facts::new();
        for _ in 0..2 + rng.gen_range(4) {
            let (c, t) = random_fact(&mut rng, &vals);
            root.insert(c, t);
        }

        let mut store = StateStore::new();
        // Owned oracle and store evolve in lockstep: owned[i] <-> refs[i].
        let mut owned: Vec<Facts> = vec![root.clone()];
        let mut refs: Vec<StateRef> = vec![store.insert(None, &root).state];
        let mut parents: Vec<usize> = vec![0];

        for _ in 0..60 {
            let parent = rng.gen_range(owned.len());
            let child = mutate(&mut rng, &owned[parent], &vals);
            let ins = store.insert(Some(refs[parent]), &child);
            match owned.iter().position(|f| *f == child) {
                Some(ix) => assert_eq!(
                    ins.state, refs[ix],
                    "store dedup disagrees with owned equality (seed {seed})"
                ),
                None => {
                    assert!(
                        !ins.existing,
                        "store claims a novel state exists (seed {seed})"
                    );
                    owned.push(child);
                    refs.push(ins.state);
                    parents.push(parent);
                }
            }
        }

        // Access paths: every single-position path over the schema.
        let paths: Vec<(RelId, Vec<usize>)> = (0..NUM_RELS as usize)
            .flat_map(|r| {
                [
                    (RelId::from_index(r), vec![0]),
                    (RelId::from_index(r), vec![1]),
                ]
            })
            .collect();

        let mut indexes: Vec<InstanceIndex> = Vec::new();
        for i in 0..owned.len() {
            let facts = &owned[i];
            let view = store.view(refs[i]);

            // Iteration order, facts, instance: bit-identical.
            let owned_seq: Vec<(u32, Tuple)> = facts.iter().map(|(c, t)| (c, t.clone())).collect();
            let view_seq: Vec<(u32, Tuple)> = view.iter().map(|(c, t)| (c, t.clone())).collect();
            assert_eq!(
                owned_seq, view_seq,
                "iteration order diverged (seed {seed})"
            );
            assert_eq!(view.to_facts(), *facts);
            assert_eq!(store.facts(refs[i]), *facts);

            let inst = facts_to_instance(facts);
            assert_eq!(view.to_instance(NUM_RELS), inst);
            assert_eq!(store.instance(refs[i], NUM_RELS), inst);

            // Signatures and canonical keys under random rigid sets.
            for _ in 0..3 {
                let rigid = random_rigid(&mut rng, &vals);
                assert_eq!(
                    facts.signature(&rigid),
                    view.signature(&rigid),
                    "signature diverged (seed {seed})"
                );
                assert_eq!(
                    facts.canonical_key(&rigid),
                    view.canonical_key(&rigid),
                    "canonical key diverged (seed {seed})"
                );
                // Incrementally-derived signature (parent census + diff)
                // must equal the from-scratch one, through both the owned
                // and the store-backed census entry points.
                let parent_view = store.view(refs[parents[i]]);
                assert_eq!(
                    owned[parents[i]]
                        .sig_census(&rigid)
                        .child_signature(|| facts.iter(), facts.len()),
                    facts.signature(&rigid),
                    "incremental signature diverged (seed {seed})"
                );
                assert_eq!(
                    parent_view
                        .sig_census(&rigid)
                        .child_signature(|| view.iter(), view.len()),
                    facts.signature(&rigid),
                    "store-backed incremental signature diverged (seed {seed})"
                );
            }

            // Dedup lookup finds exactly this state.
            assert_eq!(store.find(facts), Some(refs[i]));

            // Copy-on-write index == scratch index, probe for probe.
            let scratch = InstanceIndex::build(&inst, paths.iter().cloned());
            let cow = if i == 0 {
                InstanceIndex::build(&inst, paths.iter().cloned())
            } else {
                match store.delta_rels(refs[i], NUM_RELS) {
                    Some(touched) => InstanceIndex::rebuild_delta(
                        &indexes[parents[i]],
                        &inst,
                        &touched,
                        paths.iter().cloned(),
                    ),
                    None => InstanceIndex::build(&inst, paths.iter().cloned()),
                }
            };
            assert_index_matches(&scratch, &cow, &inst, &vals);
            indexes.push(cow);
        }
    }
}

/// Incremental signatures across delta re-root boundaries: a linear chain
/// long enough to cross `MAX_DELTA_DEPTH` (children at depths 31, 32, 33
/// sit just before, on, and just after the store's re-root point) must
/// derive every child signature from its parent's census bit-identically to
/// the from-scratch computation, no matter how the store represents the
/// parent internally.
#[test]
fn incremental_signatures_survive_reroot_boundaries() {
    use dcds_reldata::MAX_DELTA_DEPTH;
    let chain_len = MAX_DELTA_DEPTH + 8;
    for seed in 0..4u64 {
        let mut rng = SplitMix64(0x5ec_0ded ^ seed.wrapping_mul(0x9e37_79b9));
        let mut pool = ConstantPool::new();
        let vals: Vec<Value> = (0..NUM_VALUES)
            .map(|i| pool.intern(&format!("v{i}")))
            .collect();
        let rigid = random_rigid(&mut rng, &vals);

        let mut root = Facts::new();
        for _ in 0..2 + rng.gen_range(4) {
            let (c, t) = random_fact(&mut rng, &vals);
            root.insert(c, t);
        }
        let mut store = StateStore::new();
        let mut prev_facts = root.clone();
        let mut prev_ref = store.insert(None, &root).state;
        for depth in 1..=chain_len {
            // Force novel children so the chain actually deepens.
            let child = loop {
                let cand = mutate(&mut rng, &prev_facts, &vals);
                if cand != prev_facts {
                    break cand;
                }
            };
            let ins = store.insert(Some(prev_ref), &child);
            let child_view = store.view(ins.state);
            let expected = child.signature(&rigid);
            assert_eq!(
                prev_facts
                    .sig_census(&rigid)
                    .child_signature(|| child_view.iter(), child_view.len()),
                expected,
                "owned census diverged at depth {depth} (seed {seed})"
            );
            assert_eq!(
                store
                    .view(prev_ref)
                    .sig_census(&rigid)
                    .child_signature(|| child.iter(), child.len()),
                expected,
                "store census diverged at depth {depth} (seed {seed})"
            );
            prev_facts = child;
            prev_ref = ins.state;
        }
    }
}

/// Project the database colors of `facts` into an `Instance` (colors `>=
/// NUM_RELS` are service-call-map entries and have no relational slot).
fn facts_to_instance(facts: &Facts) -> Instance {
    let mut inst = Instance::new();
    for (c, t) in facts.iter() {
        if c < NUM_RELS {
            inst.insert(RelId::from_index(c as usize), t.clone());
        }
    }
    inst
}
