//! Section 6: arbitrary FO integrity constraints via equality constraints.
//!
//! Given a DCDS and a closed FO sentence `IC`, add a binary auxiliary
//! relation `__aux` initialised with a pair of distinct constants, copy it
//! in every action, and add the equality constraint
//! `¬IC ∧ __aux(x, y) → x = y`. A transition into a state violating `IC`
//! would then equate two distinct constants — impossible — so exactly the
//! `IC`-satisfying successors survive.

use dcds_core::{BaseTerm, Dcds, ETerm, Effect};
use dcds_folang::{ConjunctiveQuery, EqualityConstraint, Formula, QTerm, Ucq, Var};
use dcds_reldata::Tuple;

/// Encode the FO sentence as an equality constraint over an auxiliary
/// relation (instead of a native [`dcds_folang::FoConstraint`]).
pub fn encode_fo_constraint(dcds: &Dcds, ic: &Formula) -> Result<Dcds, String> {
    if let Some(v) = ic.free_vars().into_iter().next() {
        return Err(format!(
            "integrity constraints must be closed; {} is free",
            v.name()
        ));
    }
    let mut out = dcds.clone();
    let aux = out
        .data
        .schema
        .add_relation("__aux", 2)
        .map_err(|e| e.to_string())?;
    let ca = out.data.pool.intern("__auxA");
    let cb = out.data.pool.intern("__auxB");
    out.data.initial.insert(aux, Tuple::from([ca, cb]));
    // Copy __aux in every action.
    let x = Var::new("_AX");
    let y = Var::new("_AY");
    for action in &mut out.process.actions {
        action.effects.push(Effect {
            qplus: Ucq::single(ConjunctiveQuery {
                head: vec![x.clone(), y.clone()],
                atoms: vec![(aux, vec![QTerm::Var(x.clone()), QTerm::Var(y.clone())])],
                equalities: vec![],
            }),
            qminus: Formula::True,
            head: vec![(
                aux,
                vec![
                    ETerm::Base(BaseTerm::Var(x.clone())),
                    ETerm::Base(BaseTerm::Var(y.clone())),
                ],
            )],
        });
    }
    // ec := ¬IC ∧ aux(x, y) → x = y.
    let premise = ic.clone().not().and(Formula::Atom(
        aux,
        vec![QTerm::Var(x.clone()), QTerm::Var(y.clone())],
    ));
    out.data.constraints.push(
        EqualityConstraint::new(premise, vec![(QTerm::Var(x), QTerm::Var(y))])
            .map_err(|e| e.to_string())?,
    );
    out.validate().map_err(|e| e.to_string())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::explore::{explore_nondet, CommitmentOracle, Limits};
    use dcds_core::{DcdsBuilder, ServiceKind};
    use dcds_folang::parse_formula;

    /// A system that may write duplicate-id artifacts: IC forbids two P
    /// facts with the same first column and different second columns.
    fn system() -> Dcds {
        DcdsBuilder::new()
            .relation("P", 2)
            .service("inp", 0, ServiceKind::Nondeterministic)
            .init_fact("P", &["a", "b"])
            .action("alpha", &[], |a| {
                a.effect("P(X, Y)", "P(X, Y)");
                a.effect("P(X, Y)", "P(X, inp())");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn ic(dcds: &mut Dcds) -> Formula {
        parse_formula(
            "forall X, Y, Z . P(X, Y) & P(X, Z) -> Y = Z",
            &mut dcds.data.schema,
            &mut dcds.data.pool,
        )
        .unwrap()
    }

    #[test]
    fn encoding_blocks_exactly_the_violations() {
        let mut base = system();
        let sentence = ic(&mut base);
        // Native FO constraint version.
        let mut native = base.clone();
        native
            .data
            .fo_constraints
            .push(dcds_folang::FoConstraint::new(sentence.clone()).unwrap());
        // Encoded version.
        let encoded = encode_fo_constraint(&base, &sentence).unwrap();

        let limits = Limits {
            max_states: 300,
            max_depth: 2,
        };
        let mut o0 = CommitmentOracle;
        let unconstrained = explore_nondet(&base, limits, &mut o0);
        let mut o1 = CommitmentOracle;
        let nat = explore_nondet(&native, limits, &mut o1);
        let mut o2 = CommitmentOracle;
        let enc = explore_nondet(&encoded, limits, &mut o2);

        // The unconstrained system reaches duplicate-id states; the others
        // do not.
        let p = base.data.schema.rel_id("P").unwrap();
        let has_violation = |ts: &dcds_core::Ts| {
            ts.state_ids().any(|s| {
                let db = ts.db(s);
                let tuples: Vec<_> = db.tuples(p).collect();
                tuples
                    .iter()
                    .any(|t1| tuples.iter().any(|t2| t1[0] == t2[0] && t1[1] != t2[1]))
            })
        };
        assert!(has_violation(&unconstrained.ts));
        assert!(!has_violation(&nat.ts));
        assert!(!has_violation(&enc.ts));

        // And the two constraining mechanisms admit the same original-schema
        // behaviours (modulo the auxiliary relation).
        use dcds_reldata::Facts;
        use std::collections::BTreeSet;
        let orig: BTreeSet<_> = base.data.schema.rel_ids().collect();
        let rigid = base.rigid_constants();
        let keys = |ts: &dcds_core::Ts| -> BTreeSet<dcds_reldata::CanonKey> {
            ts.state_ids()
                .map(|s| Facts::from_instance(&ts.db(s).project(&orig)).canonical_key(&rigid))
                .collect()
        };
        assert_eq!(keys(&nat.ts), keys(&enc.ts));
    }

    #[test]
    fn open_sentence_rejected() {
        let mut base = system();
        let open = parse_formula("P(X, Y)", &mut base.data.schema, &mut base.data.pool).unwrap();
        assert!(encode_fo_constraint(&base, &open).is_err());
    }
}
