//! The artifact-system model and its DCDS translation (Section 6,
//! "Connection with the artifact model").
//!
//! An artifact system has typed artifact relations (first column an id),
//! an underlying database, and actions with FO *pre-conditions* and
//! existential *post-conditions*. We realise the model in the shape the
//! paper sketches the reduction for: each action's post-condition is a set
//! of conditional insertions whose terms may draw *external inputs* —
//! existentially quantified values of the ∃FO post — which become
//! nondeterministic service calls in the DCDS. Id uniqueness is enforced
//! with a key (equality) constraint, exactly as the paper suggests
//! ("using an integrity constraint to enforce the uniqueness of the id
//! attribute").

use dcds_core::{Dcds, DcdsBuilder, ServiceKind};

/// An artifact type `T(id, v₁, ..., vₖ)`.
#[derive(Debug, Clone)]
pub struct ArtifactType {
    /// Type name (becomes a relation).
    pub name: String,
    /// Artifact variables beyond the id (the relation arity is
    /// `1 + variables.len()`).
    pub variables: Vec<String>,
    /// Whether the id column is a key (true for genuine artifact types).
    pub id_is_key: bool,
}

/// An artifact action: a pre-condition guard and a post-condition given as
/// conditional insertions. Surface syntax is shared with
/// [`dcds_core::parser`]; external inputs are written as calls to the
/// system's declared input services (`in_x()`).
#[derive(Debug, Clone)]
pub struct ArtifactAction {
    /// Action name.
    pub name: String,
    /// Parameters (bound by the pre-condition's free variables).
    pub params: Vec<String>,
    /// Pre-condition (FO over the schema; free variables = params).
    pub pre: String,
    /// Post-condition: pairs `(guard over current instance, inserted
    /// facts)`.
    pub post: Vec<(String, String)>,
}

/// An artifact system.
#[derive(Debug, Clone)]
pub struct ArtifactSystem {
    /// Artifact types.
    pub types: Vec<ArtifactType>,
    /// Plain database relations `(name, arity)`.
    pub relations: Vec<(String, usize)>,
    /// External input channels (each becomes a nullary nondeterministic
    /// service `name/0`).
    pub inputs: Vec<String>,
    /// Initial facts `(relation, constants)`.
    pub init: Vec<(String, Vec<String>)>,
    /// Actions.
    pub actions: Vec<ArtifactAction>,
}

impl ArtifactSystem {
    /// Translate into a DCDS (Section 6's sketch, executable).
    pub fn to_dcds(&self) -> Result<Dcds, String> {
        let mut b = DcdsBuilder::new();
        for t in &self.types {
            b = b.relation(&t.name, 1 + t.variables.len());
        }
        for (name, arity) in &self.relations {
            b = b.relation(name, *arity);
        }
        for input in &self.inputs {
            b = b.service(input, 0, ServiceKind::Nondeterministic);
        }
        for (rel, args) in &self.init {
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            b = b.init_fact(rel, &refs);
        }
        // Id uniqueness per artifact type: for T/(1+k) with key id, any two
        // facts sharing the id agree on every other column.
        for t in &self.types {
            if !t.id_is_key || t.variables.is_empty() {
                continue;
            }
            let k = t.variables.len();
            let xs: Vec<String> = (0..k).map(|i| format!("X{i}")).collect();
            let ys: Vec<String> = (0..k).map(|i| format!("Y{i}")).collect();
            let premise = format!(
                "{}(Id, {}) & {}(Id, {})",
                t.name,
                xs.join(", "),
                t.name,
                ys.join(", ")
            );
            let eqs: Vec<String> = (0..k).map(|i| format!("X{i} = Y{i}")).collect();
            b = b.constraint(&format!("{premise} -> {}", eqs.join(" & ")));
        }
        for action in &self.actions {
            let params: Vec<&str> = action.params.iter().map(String::as_str).collect();
            let post = action.post.clone();
            b = b.action(&action.name, &params, |a| {
                for (guard, facts) in &post {
                    a.effect(guard, facts);
                }
            });
            b = b.rule(&action.pre, &action.name);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_abstraction::rcycl;
    use dcds_analysis::{dataflow_graph, gr_acyclicity};

    /// A small order-processing artifact system: Order artifacts carry a
    /// status; a `create` action mints orders with external ids, `approve`
    /// flips status.
    fn orders() -> ArtifactSystem {
        ArtifactSystem {
            types: vec![ArtifactType {
                name: "Order".to_owned(),
                variables: vec!["status".to_owned()],
                id_is_key: true,
            }],
            relations: vec![("Seed".to_owned(), 0)],
            inputs: vec!["in_id".to_owned()],
            init: vec![("Seed".to_owned(), vec![])],
            actions: vec![
                ArtifactAction {
                    name: "create".to_owned(),
                    params: vec![],
                    pre: "Seed()".to_owned(),
                    post: vec![
                        ("Seed()".to_owned(), "Seed()".to_owned()),
                        ("Seed()".to_owned(), "Order(in_id(), fresh)".to_owned()),
                        ("Order(O, S)".to_owned(), "Order(O, S)".to_owned()),
                    ],
                },
                ArtifactAction {
                    name: "approve".to_owned(),
                    params: vec!["Id".to_owned()],
                    pre: "Order(Id, fresh)".to_owned(),
                    post: vec![
                        ("Seed()".to_owned(), "Seed()".to_owned()),
                        ("true".to_owned(), "Order(Id, approved)".to_owned()),
                        ("Order(O, S) & O != Id".to_owned(), "Order(O, S)".to_owned()),
                    ],
                },
            ],
        }
    }

    #[test]
    fn translation_builds_a_valid_dcds() {
        let dcds = orders().to_dcds().unwrap();
        assert_eq!(dcds.process.actions.len(), 2);
        assert_eq!(dcds.data.constraints.len(), 1);
        assert!(dcds.is_nondeterministic());
    }

    #[test]
    fn id_uniqueness_is_enforced() {
        let dcds = orders().to_dcds().unwrap();
        // A state with two statuses for one order id violates the key.
        let order = dcds.data.schema.rel_id("Order").unwrap();
        let mut pool = dcds.working_pool();
        let id = pool.mint("id");
        let fresh = dcds.data.pool.get("fresh").unwrap();
        let approved = dcds.data.pool.get("approved").unwrap();
        let mut bad = dcds.data.initial.clone();
        bad.insert(order, dcds_reldata::Tuple::from([id, fresh]));
        bad.insert(order, dcds_reldata::Tuple::from([id, approved]));
        assert!(!dcds.data.satisfies_constraints(&bad));
    }

    #[test]
    fn order_system_is_not_gr_acyclic_but_analyzable() {
        // Orders accumulate (created with fresh ids and copied): the system
        // is genuinely state-unbounded, and the dataflow analysis says so.
        let dcds = orders().to_dcds().unwrap();
        let df = dataflow_graph(&dcds);
        assert!(!gr_acyclicity::is_gr_acyclic(&df));
        // RCYCL consequently fails to saturate within a small budget.
        let res = rcycl(&dcds, 60);
        assert!(!res.complete);
    }
}
