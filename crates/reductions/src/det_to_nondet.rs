//! Theorem 6.1: deterministic → nondeterministic services.
//!
//! For each term `f(a₁..aₙ)` in some effect head, the rewritten system
//! records the returned value in a *history relation*
//! `__hist_f(a₁..aₙ, f(a₁..aₙ))`, copies every history relation across
//! steps, and declares the functional dependency `a₁..aₙ → r` on it as an
//! equality constraint. A nondeterministic evaluation that answers a
//! repeated call differently from history violates the dependency and the
//! transition is filtered out — so the projection of the rewritten
//! system's transition system onto the original schema coincides with the
//! original's, and run-boundedness becomes state-boundedness.
//!
//! Only *deterministic* services are instrumented: services that are
//! already nondeterministic pass through untouched, so the rewrite also
//! normalises the paper's **mixed semantics** (Section 6) to the purely
//! nondeterministic case, after which Algorithm RCYCL and µLP verification
//! apply.

use dcds_core::{Action, BaseTerm, Dcds, ETerm, Effect, ServiceCatalog, ServiceKind};
use dcds_folang::{ConjunctiveQuery, EqualityConstraint, QTerm, Ucq, Var};
use dcds_reldata::RelId;

/// Rewrite a DCDS with (some) deterministic services into one whose
/// services are all nondeterministic, preserving behaviour (Theorem 6.1).
pub fn det_to_nondet(dcds: &Dcds) -> Result<Dcds, String> {
    let mut out = dcds.clone();
    // 1. History relation per *deterministic* service (nondeterministic
    // ones need no instrumentation).
    let mut hist_rel: Vec<Option<RelId>> = Vec::new();
    for (fid, decl) in dcds.process.services.iter() {
        debug_assert_eq!(fid.index(), hist_rel.len());
        if decl.kind() != ServiceKind::Deterministic {
            hist_rel.push(None);
            continue;
        }
        let rel = out
            .data
            .schema
            .add_relation(&format!("__hist_{}", decl.name()), decl.arity() + 1)
            .map_err(|e| e.to_string())?;
        hist_rel.push(Some(rel));
        // FD: arguments determine the result.
        let key_cols: Vec<usize> = (0..decl.arity()).collect();
        out.data
            .constraints
            .push(EqualityConstraint::key(&out.data.schema, rel, &key_cols));
    }
    // 2. All services become nondeterministic.
    let mut services = ServiceCatalog::new();
    for (_, decl) in dcds.process.services.iter() {
        services
            .add(decl.name(), decl.arity(), ServiceKind::Nondeterministic)
            .map_err(|e| e.to_string())?;
    }
    out.process.services = services;
    // 3. Record every call in its history relation; 4. copy histories.
    let mut actions: Vec<Action> = Vec::new();
    for action in &dcds.process.actions {
        let mut new_action = action.clone();
        for effect in &mut new_action.effects {
            let mut recordings = Vec::new();
            for (_, terms) in &effect.head {
                for t in terms {
                    if let ETerm::Call(f, args) = t {
                        let Some(rel) = hist_rel[f.index()] else {
                            continue;
                        };
                        let mut hist_terms: Vec<ETerm> =
                            args.iter().cloned().map(ETerm::Base).collect();
                        hist_terms.push(ETerm::Call(*f, args.clone()));
                        recordings.push((rel, hist_terms));
                    }
                }
            }
            effect.head.extend(recordings);
        }
        // Copy effects for each history relation.
        for (fid, decl) in dcds.process.services.iter() {
            let Some(rel) = hist_rel[fid.index()] else {
                continue;
            };
            let vars: Vec<Var> = (0..=decl.arity())
                .map(|i| Var::new(&format!("_H{i}")))
                .collect();
            let atoms = vec![(
                rel,
                vars.iter().cloned().map(QTerm::Var).collect::<Vec<_>>(),
            )];
            let head_terms: Vec<ETerm> = vars
                .iter()
                .cloned()
                .map(|v| ETerm::Base(BaseTerm::Var(v)))
                .collect();
            new_action.effects.push(Effect {
                qplus: Ucq::single(ConjunctiveQuery {
                    head: vars,
                    atoms,
                    equalities: vec![],
                }),
                qminus: dcds_folang::Formula::True,
                head: vec![(rel, head_terms)],
            });
        }
        actions.push(new_action);
    }
    out.process.actions = actions;
    out.validate().map_err(|e| e.to_string())?;
    Ok(out)
}

#[cfg(test)]
mod tests_mixed {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    /// A mixed-semantics system: deterministic lookup `f`, nondeterministic
    /// input `g` (the Section 6 "mixed semantics" shape).
    fn mixed() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("S", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(X), S(f(X))");
            })
            .action("beta", &[], |a| {
                a.effect("R(X)", "R(X), S(g(X))");
            })
            .rule("true", "alpha")
            .rule("true", "beta")
            .build()
            .unwrap()
    }

    #[test]
    fn only_deterministic_services_are_instrumented() {
        let n = det_to_nondet(&mixed()).unwrap();
        assert!(n.is_nondeterministic());
        assert!(n.data.schema.rel_id("__hist_f").is_some());
        assert!(n.data.schema.rel_id("__hist_g").is_none());
    }

    #[test]
    fn nondeterministic_service_stays_free() {
        use dcds_core::do_op::do_action;
        use dcds_core::nondet::nondet_step;
        use dcds_folang::Assignment;
        use std::collections::BTreeMap;
        let n = det_to_nondet(&mixed()).unwrap();
        let beta = n.action_id("beta").unwrap();
        let mut pool = n.data.pool.clone();
        let b = pool.mint("v");
        let c = pool.mint("v");
        // g(a) may return b at one step and c at the next: both succeed.
        let pre = do_action(&n, &n.data.initial, beta, &Assignment::new());
        let call = pre.calls().into_iter().next().unwrap();
        let theta1: BTreeMap<_, _> = [(call.clone(), b)].into_iter().collect();
        let s1 = nondet_step(&n, &n.data.initial, beta, &Assignment::new(), &theta1).unwrap();
        let pre2 = do_action(&n, &s1, beta, &Assignment::new());
        let call2 = pre2
            .calls()
            .into_iter()
            .find(|cl| cl.args == call.args)
            .unwrap();
        let theta2: BTreeMap<_, _> = [(call2, c)].into_iter().collect();
        assert!(
            nondet_step(&n, &s1, beta, &Assignment::new(), &theta2).is_some(),
            "nondeterministic g must not be history-constrained"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::do_op::do_action;
    use dcds_core::nondet::nondet_step;
    use dcds_core::{DcdsBuilder, ServiceKind};
    use dcds_folang::Assignment;
    use std::collections::BTreeMap;

    fn example_4_3_det() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn rewriting_adds_history_machinery() {
        let d = example_4_3_det();
        let n = det_to_nondet(&d).unwrap();
        assert!(n.is_nondeterministic());
        assert!(n.data.schema.rel_id("__hist_f").is_some());
        assert_eq!(n.data.constraints.len(), d.data.constraints.len() + 1);
        // Each action gained: the recording inside the existing effect plus
        // one copy effect per service.
        assert_eq!(
            n.process.actions[0].effects.len(),
            d.process.actions[0].effects.len() + 1
        );
    }

    #[test]
    fn history_forces_determinism() {
        let d = example_4_3_det();
        let n = det_to_nondet(&d).unwrap();
        let alpha = n.action_id("alpha").unwrap();
        let mut pool = n.data.pool.clone();
        let b = pool.mint("v");
        let c = pool.mint("v");
        // Step 1: f(a) ↦ b. State records __hist_f(a, b).
        let pre = do_action(&n, &n.data.initial, alpha, &Assignment::new());
        let calls: Vec<_> = pre.calls().into_iter().collect();
        assert_eq!(calls.len(), 1);
        let theta1: BTreeMap<_, _> = [(calls[0].clone(), b)].into_iter().collect();
        let s1 = nondet_step(&n, &n.data.initial, alpha, &Assignment::new(), &theta1).unwrap();
        let hist = n.data.schema.rel_id("__hist_f").unwrap();
        assert_eq!(s1.cardinality(hist), 1);
        // Step 2 from s1: Q(b) copies to R(b); f is NOT called again with
        // argument a (R now holds b)... the DCDS calls f(b). Force the
        // situation by a state containing R(a) again:
        // construct s1' = s1 ∪ {R(a)} — then f(a) is re-issued and answering
        // it with c ≠ b must violate the FD.
        let mut s1p = s1.clone();
        let r = n.data.schema.rel_id("R").unwrap();
        let a_val = n.data.pool.get("a").unwrap();
        s1p.insert(r, dcds_reldata::Tuple::from([a_val]));
        let pre2 = do_action(&n, &s1p, alpha, &Assignment::new());
        let f_a = pre2
            .calls()
            .into_iter()
            .find(|cl| cl.args == vec![a_val])
            .expect("f(a) reissued");
        let mut theta2: BTreeMap<_, _> = BTreeMap::new();
        for call in pre2.calls() {
            theta2.insert(call, c);
        }
        theta2.insert(f_a.clone(), c);
        assert!(
            nondet_step(&n, &s1p, alpha, &Assignment::new(), &theta2).is_none(),
            "answering f(a) with c != b must violate the history FD"
        );
        // Answering consistently with b succeeds.
        let mut theta3: BTreeMap<_, _> = BTreeMap::new();
        for call in pre2.calls() {
            theta3.insert(call, c);
        }
        theta3.insert(f_a, b);
        assert!(nondet_step(&n, &s1p, alpha, &Assignment::new(), &theta3).is_some());
    }

    #[test]
    fn projection_preserves_original_schema_reachability() {
        use dcds_core::explore::{explore_det, explore_nondet, CommitmentOracle, Limits};
        use dcds_reldata::Facts;
        use std::collections::BTreeSet;
        let d = example_4_3_det();
        let n = det_to_nondet(&d).unwrap();
        let limits = Limits {
            max_states: 400,
            max_depth: 3,
        };
        let mut o1 = CommitmentOracle;
        let det = explore_det(&d, limits, &mut o1);
        let mut o2 = CommitmentOracle;
        let nondet = explore_nondet(&n, limits, &mut o2);
        // Original-schema relations.
        let orig: BTreeSet<_> = d.data.schema.rel_ids().collect();
        let rigid = d.rigid_constants();
        // Canonical keys of projected reachable states.
        let keys = |ts: &dcds_core::Ts| -> BTreeSet<dcds_reldata::CanonKey> {
            ts.state_ids()
                .map(|s| Facts::from_instance(&ts.db(s).project(&orig)).canonical_key(&rigid))
                .collect()
        };
        let det_keys = keys(&det.ts);
        let nondet_keys = keys(&nondet.ts);
        // Every original-system isomorphism type is realised by the
        // rewritten system, and vice versa.
        assert_eq!(det_keys, nondet_keys);
    }
}
