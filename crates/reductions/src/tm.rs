//! Deterministic single-tape Turing machines.
//!
//! The substrate for the paper's undecidability reductions. Machines have a
//! two-way-infinite-to-the-right tape (left end marked), a finite state set
//! with a designated halting sink, and a deterministic transition function.

use std::collections::BTreeMap;

/// Head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay in place.
    Stay,
}

/// Outcome of a bounded simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmOutcome {
    /// Reached the halting state after the given number of steps.
    Halted {
        /// Steps taken.
        steps: usize,
        /// Final tape contents (trimmed of trailing blanks).
        tape: Vec<char>,
    },
    /// Still running when the step budget ran out.
    Running,
}

/// A deterministic Turing machine.
#[derive(Debug, Clone)]
pub struct Tm {
    /// State names; index 0 is the initial state.
    pub states: Vec<String>,
    /// Index of the halting sink state.
    pub halt: usize,
    /// Tape alphabet (chars); `blank` is the blank symbol.
    pub blank: char,
    /// Transition function `(state, symbol) → (state, symbol, move)`.
    pub delta: BTreeMap<(usize, char), (usize, char, Move)>,
}

impl Tm {
    /// Simulate on the given input for at most `max_steps` steps.
    pub fn run(&self, input: &[char], max_steps: usize) -> TmOutcome {
        let mut tape: Vec<char> = if input.is_empty() {
            vec![self.blank]
        } else {
            input.to_vec()
        };
        let mut head = 0usize;
        let mut state = 0usize;
        for step in 0..=max_steps {
            if state == self.halt {
                let mut t = tape.clone();
                while t.len() > 1 && *t.last().unwrap() == self.blank {
                    t.pop();
                }
                return TmOutcome::Halted {
                    steps: step,
                    tape: t,
                };
            }
            if step == max_steps {
                break;
            }
            let sym = tape[head];
            let Some(&(next_state, write, mv)) = self.delta.get(&(state, sym)) else {
                // No transition: treat as halting (normalised machines route
                // everything to the sink explicitly, but be forgiving).
                return TmOutcome::Halted {
                    steps: step,
                    tape: tape.clone(),
                };
            };
            tape[head] = write;
            state = next_state;
            match mv {
                Move::Left => {
                    head = head.saturating_sub(1);
                }
                Move::Right => {
                    head += 1;
                    if head == tape.len() {
                        tape.push(self.blank);
                    }
                }
                Move::Stay => {}
            }
        }
        TmOutcome::Running
    }

    /// Number of tape cells visited within `max_steps` (tape-boundedness
    /// witness; cf. the Theorem 5.5 reduction).
    pub fn visited_cells(&self, input: &[char], max_steps: usize) -> usize {
        let mut tape: Vec<char> = if input.is_empty() {
            vec![self.blank]
        } else {
            input.to_vec()
        };
        let mut head = 0usize;
        let mut state = 0usize;
        let mut max_head = 0usize;
        for _ in 0..max_steps {
            if state == self.halt {
                break;
            }
            let sym = tape[head];
            let Some(&(next_state, write, mv)) = self.delta.get(&(state, sym)) else {
                break;
            };
            tape[head] = write;
            state = next_state;
            match mv {
                Move::Left => head = head.saturating_sub(1),
                Move::Right => {
                    head += 1;
                    if head == tape.len() {
                        tape.push(self.blank);
                    }
                }
                Move::Stay => {}
            }
            max_head = max_head.max(head);
        }
        max_head + 1
    }
}

/// Fluent construction of machines.
#[derive(Debug, Default)]
pub struct TmBuilder {
    states: Vec<String>,
    halt: Option<usize>,
    blank: char,
    delta: BTreeMap<(usize, char), (usize, char, Move)>,
}

impl TmBuilder {
    /// Start building; `blank` is the blank symbol.
    pub fn new(blank: char) -> Self {
        TmBuilder {
            states: Vec::new(),
            halt: None,
            blank,
            delta: BTreeMap::new(),
        }
    }

    /// Add a state, returning its index. The first added state is initial.
    pub fn state(&mut self, name: &str) -> usize {
        self.states.push(name.to_owned());
        self.states.len() - 1
    }

    /// Designate the halting sink.
    pub fn halting(&mut self, state: usize) -> &mut Self {
        self.halt = Some(state);
        self
    }

    /// Add a transition.
    pub fn rule(&mut self, from: usize, read: char, to: usize, write: char, mv: Move) -> &mut Self {
        self.delta.insert((from, read), (to, write, mv));
        self
    }

    /// Finish.
    pub fn build(self) -> Result<Tm, String> {
        let halt = self.halt.ok_or("no halting state designated")?;
        if self.states.is_empty() {
            return Err("no states".to_owned());
        }
        if halt >= self.states.len() {
            return Err("halting state out of range".to_owned());
        }
        Ok(Tm {
            states: self.states,
            halt,
            blank: self.blank,
            delta: self.delta,
        })
    }
}

/// A machine that writes `1` and halts immediately (halts in 1 step).
pub fn halting_machine() -> Tm {
    let mut b = TmBuilder::new('_');
    let s0 = b.state("s0");
    let h = b.state("halt");
    b.halting(h);
    b.rule(s0, '_', h, '1', Move::Stay);
    b.build().unwrap()
}

/// A machine that flips in place forever (loops on bounded tape).
pub fn looping_machine() -> Tm {
    let mut b = TmBuilder::new('_');
    let s0 = b.state("s0");
    let s1 = b.state("s1");
    let h = b.state("halt");
    b.halting(h);
    b.rule(s0, '_', s1, 'x', Move::Stay);
    b.rule(s1, 'x', s0, '_', Move::Stay);
    b.build().unwrap()
}

/// A machine that marches right forever (unbounded tape).
pub fn runaway_machine() -> Tm {
    let mut b = TmBuilder::new('_');
    let s0 = b.state("s0");
    let h = b.state("halt");
    b.halting(h);
    b.rule(s0, '_', s0, 'x', Move::Right);
    b.build().unwrap()
}

/// A 2-state busy-beaver-style machine (halts after a handful of steps,
/// moving both directions). With our saturating left end it halts in 4
/// steps leaving two 1s (the classical two-way-infinite BB(2) would take 6
/// steps and leave four).
pub fn busy_beaver_2() -> Tm {
    // BB(2) rules: A_ -> 1RB, A1 -> 1LB, B_ -> 1LA, B1 -> 1RH.
    let mut b = TmBuilder::new('_');
    let a = b.state("A");
    let bb = b.state("B");
    let h = b.state("halt");
    b.halting(h);
    b.rule(a, '_', bb, '1', Move::Right);
    b.rule(a, '1', bb, '1', Move::Left);
    b.rule(bb, '_', a, '1', Move::Left);
    b.rule(bb, '1', h, '1', Move::Right);
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halting_machine_halts() {
        let tm = halting_machine();
        match tm.run(&[], 10) {
            TmOutcome::Halted { steps, tape } => {
                assert_eq!(steps, 1);
                assert_eq!(tape, vec!['1']);
            }
            TmOutcome::Running => panic!("should halt"),
        }
    }

    #[test]
    fn looping_machine_runs_forever() {
        let tm = looping_machine();
        assert_eq!(tm.run(&[], 1000), TmOutcome::Running);
        // And stays tape-bounded.
        assert_eq!(tm.visited_cells(&[], 1000), 1);
    }

    #[test]
    fn runaway_machine_is_tape_unbounded() {
        let tm = runaway_machine();
        assert_eq!(tm.run(&[], 50), TmOutcome::Running);
        assert_eq!(tm.visited_cells(&[], 50), 51);
    }

    #[test]
    fn busy_beaver_2_halts() {
        let tm = busy_beaver_2();
        match tm.run(&[], 100) {
            TmOutcome::Halted { steps, tape } => {
                assert_eq!(steps, 4);
                assert_eq!(tape.iter().filter(|&&c| c == '1').count(), 2);
            }
            TmOutcome::Running => panic!("BB(2) halts"),
        }
    }

    #[test]
    fn missing_transition_halts_gracefully() {
        let mut b = TmBuilder::new('_');
        let _s0 = b.state("s0");
        let h = b.state("h");
        b.halting(h);
        let tm = b.build().unwrap();
        assert!(matches!(tm.run(&[], 5), TmOutcome::Halted { steps: 0, .. }));
    }

    #[test]
    fn builder_validates() {
        let b = TmBuilder::new('_');
        assert!(b.build().is_err());
    }
}
