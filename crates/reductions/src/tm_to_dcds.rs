//! The Theorem 4.1 reduction: compile a Turing machine into a DCDS with
//! deterministic services such that the DCDS simulates the machine
//! step-for-step and `G ¬halted` holds iff the machine does not halt.
//!
//! Encoding (following the proof of Theorem 4.1, with two pragmatic
//! adjustments noted below):
//!
//! * the visited tape segment is a graph `right/2` over cell ids, kept a
//!   linear path by declaring the **second component of `right` a key** and
//!   seeding a guard cell `c0` with a self-loop — any attempt of the
//!   `newCell` service to return an existing cell violates the key and the
//!   transition is filtered out;
//! * `sym/2` holds cell contents, `head/1` the head position, `state/1`
//!   the control state, `halted/0` the halt flag;
//! * one DCDS action `step` carries copy effects (tape structure, symbols
//!   of non-head cells) plus per-δ-entry transition effects.
//!
//! Adjustments w.r.t. the paper's effect listing: (1) instead of the
//! `ext`/`noext` split we extend the tape *eagerly* — whenever the head's
//! right neighbour has no symbol yet, a `newCell` call appends a fresh end
//! cell and the neighbour is initialised to blank; this keeps `sym`
//! functional without a consumable end-marker symbol. (2) Left moves at the
//! left end stay in place (matching the saturating semantics of
//! [`crate::tm::Tm::run`]).

use crate::tm::{Move, Tm};
use dcds_core::{Dcds, DcdsBuilder, ServiceKind};

/// Name of the constant encoding a tape symbol.
fn sym_const(c: char) -> String {
    if c.is_ascii_alphanumeric() {
        format!("sym_{c}")
    } else {
        format!("sym_{}", c as u32)
    }
}

/// Name of the constant encoding a control state.
fn state_const(tm: &Tm, s: usize) -> String {
    format!("q_{}", tm.states[s])
}

/// Compile `tm` (with the given initial tape) into a DCDS.
///
/// The resulting system uses the single deterministic service `newCell/1`
/// and is guarded by `true => step`.
pub fn tm_to_dcds(tm: &Tm, input: &[char]) -> Result<Dcds, String> {
    let mut b = DcdsBuilder::new()
        .relation("right", 2)
        .relation("sym", 2)
        .relation("head", 1)
        .relation("state", 1)
        .relation("halted", 0)
        .service("newCell", 1, ServiceKind::Deterministic);

    // Initial tape: guard cell c0 (self-loop), input cells c1.., and one
    // unsymed end cell.
    let cells: Vec<String> = (0..input.len().max(1) + 2)
        .map(|i| format!("c{i}"))
        .collect();
    b = b.init_fact("right", &[&cells[0], &cells[0]]);
    for i in 0..cells.len() - 1 {
        b = b.init_fact("right", &[&cells[i], &cells[i + 1]]);
    }
    let tape: Vec<char> = if input.is_empty() {
        vec![tm.blank]
    } else {
        input.to_vec()
    };
    for (i, &c) in tape.iter().enumerate() {
        let s = sym_const(c);
        b = b.init_fact("sym", &[&cells[i + 1], &s]);
    }
    b = b.init_fact("head", &[&cells[1]]);
    let q0 = state_const(tm, 0);
    b = b.init_fact("state", &[&q0]);

    // Key: the second component of `right` determines the first.
    b = b.constraint("right(X, Y) & right(Z, Y) -> X = Z");

    let tm_cl = tm.clone();
    b = b.action("step", &[], |a| {
        // Tape structure persists.
        a.effect("right(X, Y)", "right(X, Y)");
        // Symbols of non-head cells persist.
        a.effect("sym(X, S) & !head(X)", "sym(X, S)");
        // Eager extension: the head's right neighbour always gets a symbol
        // and a fresh successor cell.
        a.effect(
            "head(X) & right(X, Y) & !(exists S . sym(Y, S))",
            &format!("sym(Y, {}), right(Y, newCell(Y))", sym_const(tm_cl.blank)),
        );
        // Halting is absorbing: flag raised and state/head/tape preserved.
        let qh = state_const(&tm_cl, tm_cl.halt);
        a.effect(&format!("state({qh})"), &format!("state({qh}), halted()"));
        a.effect(&format!("state({qh}) & head(X)"), "head(X)");
        a.effect(&format!("state({qh}) & head(X) & sym(X, S)"), "sym(X, S)");
        a.effect("halted()", "halted()");
        // One effect (or two for Left) per δ entry.
        for (&(s, read), &(p, write, mv)) in &tm_cl.delta {
            let qs = state_const(&tm_cl, s);
            let qp = state_const(&tm_cl, p);
            let rd = sym_const(read);
            let wr = sym_const(write);
            match mv {
                Move::Stay => {
                    a.effect(
                        &format!("sym(X, {rd}) & head(X) & state({qs})"),
                        &format!("sym(X, {wr}), head(X), state({qp})"),
                    );
                }
                Move::Right => {
                    a.effect(
                        &format!("right(X, Y) & sym(X, {rd}) & head(X) & state({qs})"),
                        &format!("sym(X, {wr}), head(Y), state({qp})"),
                    );
                }
                Move::Left => {
                    // Interior: the left neighbour carries a symbol.
                    a.effect(
                        &format!("right(W, X) & sym(W, SW) & sym(X, {rd}) & head(X) & state({qs})"),
                        &format!("sym(X, {wr}), head(W), state({qp})"),
                    );
                    // Left end: the left neighbour is the unsymed guard —
                    // saturate in place.
                    a.effect(
                        &format!(
                            "right(W, X) & sym(X, {rd}) & head(X) & state({qs}) \
                             & !(exists S . sym(W, S))"
                        ),
                        &format!("sym(X, {wr}), head(X), state({qp})"),
                    );
                }
            }
        }
    });
    b = b.rule("true", "step");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::{busy_beaver_2, halting_machine, looping_machine, TmOutcome};
    use dcds_abstraction::det_abstraction;
    use dcds_core::explore::{explore_det, CommitmentOracle, Limits};
    use dcds_folang::Formula;
    use dcds_mucalc::{check, sugar, Mu};

    fn halted_somewhere(ts: &dcds_core::Ts, dcds: &Dcds) -> bool {
        let halted = dcds.data.schema.rel_id("halted").unwrap();
        ts.state_ids()
            .any(|s| ts.db(s).contains(halted, &dcds_reldata::Tuple::unit()))
    }

    #[test]
    fn halting_machine_raises_halted() {
        let tm = halting_machine();
        let dcds = tm_to_dcds(&tm, &[]).unwrap();
        let mut oracle = CommitmentOracle;
        let res = explore_det(
            &dcds,
            Limits {
                max_states: 500,
                max_depth: 4,
            },
            &mut oracle,
        );
        assert!(halted_somewhere(&res.ts, &dcds));
    }

    #[test]
    fn looping_machine_never_halts_and_is_run_bounded() {
        let tm = looping_machine();
        let dcds = tm_to_dcds(&tm, &[]).unwrap();
        // The looping machine is tape-bounded, so the DCDS is run-bounded:
        // the abstraction saturates, and G ¬halted holds on it.
        let abs = det_abstraction(&dcds, 3000);
        assert_eq!(abs.outcome, dcds_abstraction::AbsOutcome::Complete);
        assert!(!halted_somewhere(&abs.ts, &dcds));
        let halted = dcds.data.schema.rel_id("halted").unwrap();
        let prop = sugar::ag(Mu::Query(Formula::Atom(halted, vec![])).not());
        assert!(check(&prop, &abs.ts).unwrap());
    }

    #[test]
    fn busy_beaver_halts_at_matching_depth() {
        let tm = busy_beaver_2();
        let TmOutcome::Halted { steps, .. } = tm.run(&[], 100) else {
            panic!("BB2 halts");
        };
        let dcds = tm_to_dcds(&tm, &[]).unwrap();
        let mut oracle = CommitmentOracle;
        // Not halted strictly before `steps` transitions...
        let shallow = explore_det(
            &dcds,
            Limits {
                max_states: 4000,
                max_depth: steps,
            },
            &mut oracle,
        );
        assert!(!halted_somewhere(&shallow.ts, &dcds));
        // ... and halted somewhere at depth steps + 1 (the flag is raised
        // one step after entering the halt state).
        let mut oracle2 = CommitmentOracle;
        let deep = explore_det(
            &dcds,
            Limits {
                max_states: 20_000,
                max_depth: steps + 1,
            },
            &mut oracle2,
        );
        assert!(halted_somewhere(&deep.ts, &dcds));
    }

    #[test]
    fn key_constraint_keeps_right_linear() {
        let tm = busy_beaver_2();
        let dcds = tm_to_dcds(&tm, &[]).unwrap();
        let mut oracle = CommitmentOracle;
        let res = explore_det(
            &dcds,
            Limits {
                max_states: 2000,
                max_depth: 4,
            },
            &mut oracle,
        );
        let right = dcds.data.schema.rel_id("right").unwrap();
        for s in res.ts.state_ids() {
            // Every cell has at most one predecessor.
            let mut seen = std::collections::BTreeSet::new();
            for t in res.ts.db(s).tuples(right) {
                assert!(seen.insert(t[1]), "key violated in explored state");
            }
        }
    }

    #[test]
    fn input_is_laid_out_on_the_tape() {
        let tm = halting_machine();
        let dcds = tm_to_dcds(&tm, &['1', '0']).unwrap();
        let sym = dcds.data.schema.rel_id("sym").unwrap();
        assert_eq!(dcds.data.initial.cardinality(sym), 2);
    }
}
