//! Theorem 6.2: nondeterministic → deterministic services.
//!
//! Each nondeterministic `f/n` becomes a deterministic `f/(n+1)` whose
//! extra argument is a per-state *timestamp*: same-argument calls at
//! different steps become different-argument calls of the deterministic
//! service, recovering nondeterminism. Timestamps are produced by a
//! deterministic service `__newTs/1`, chained in `succ/2` (kept linear by
//! the Theorem 4.1 key trick with a looped guard node) with the most
//! recent one in `now/1`.

use dcds_core::{Action, BaseTerm, Dcds, ETerm, Effect, FuncId, ServiceCatalog, ServiceKind};
use dcds_folang::{ConjunctiveQuery, EqualityConstraint, Formula, QTerm, Ucq, Var};
use dcds_reldata::Tuple;

/// Rewrite a DCDS with (some) nondeterministic services into one whose
/// services are all deterministic, preserving behaviour (Theorem 6.2).
pub fn nondet_to_det(dcds: &Dcds) -> Result<Dcds, String> {
    let mut out = dcds.clone();
    // Schema: succ/2, now/1.
    let succ = out
        .data
        .schema
        .add_relation("__succ", 2)
        .map_err(|e| e.to_string())?;
    let now = out
        .data
        .schema
        .add_relation("__now", 1)
        .map_err(|e| e.to_string())?;
    // Initial timestamps: guard 0 with self-loop, current timestamp 1.
    let t0 = out.data.pool.intern("__ts0");
    let t1 = out.data.pool.intern("__ts1");
    out.data.initial.insert(succ, Tuple::from([t0, t0]));
    out.data.initial.insert(succ, Tuple::from([t0, t1]));
    out.data.initial.insert(now, Tuple::from([t1]));
    // Key: the second component of succ determines the first.
    out.data
        .constraints
        .push(EqualityConstraint::key(&out.data.schema, succ, &[1]));
    // Services: every f/n becomes deterministic f/(n+1); plus __newTs/1.
    let mut services = ServiceCatalog::new();
    for (_, decl) in dcds.process.services.iter() {
        services
            .add(decl.name(), decl.arity() + 1, ServiceKind::Deterministic)
            .map_err(|e| e.to_string())?;
    }
    let new_ts = services
        .add("__newTs", 1, ServiceKind::Deterministic)
        .map_err(|e| e.to_string())?;
    out.process.services = services;
    // Rewrite actions.
    let ts_var = Var::new("_TS");
    let mut actions: Vec<Action> = Vec::new();
    for action in &dcds.process.actions {
        let mut new_action = action.clone();
        for effect in &mut new_action.effects {
            let has_calls = effect
                .head
                .iter()
                .any(|(_, ts)| ts.iter().any(|t| matches!(t, ETerm::Call(_, _))));
            if !has_calls {
                continue;
            }
            // Bind the current timestamp in q+ and thread it into calls.
            for cq in &mut effect.qplus.disjuncts {
                cq.atoms.push((now, vec![QTerm::Var(ts_var.clone())]));
                if !cq.head.contains(&ts_var) {
                    cq.head.push(ts_var.clone());
                }
            }
            for (_, terms) in &mut effect.head {
                for t in terms.iter_mut() {
                    if let ETerm::Call(f, args) = t {
                        let mut new_args = args.clone();
                        new_args.push(BaseTerm::Var(ts_var.clone()));
                        *t = ETerm::Call(*f, new_args);
                    }
                }
            }
        }
        // Timestamp progression: now(x) ⇝ now(newTs(x)), succ(x, newTs(x));
        // succ accumulates.
        new_action.effects.push(Effect {
            qplus: Ucq::single(ConjunctiveQuery {
                head: vec![ts_var.clone()],
                atoms: vec![(now, vec![QTerm::Var(ts_var.clone())])],
                equalities: vec![],
            }),
            qminus: Formula::True,
            head: vec![
                (now, vec![ts_call(new_ts, &ts_var)]),
                (
                    succ,
                    vec![
                        ETerm::Base(BaseTerm::Var(ts_var.clone())),
                        ts_call(new_ts, &ts_var),
                    ],
                ),
            ],
        });
        let sx = Var::new("_S1");
        let sy = Var::new("_S2");
        new_action.effects.push(Effect {
            qplus: Ucq::single(ConjunctiveQuery {
                head: vec![sx.clone(), sy.clone()],
                atoms: vec![(succ, vec![QTerm::Var(sx.clone()), QTerm::Var(sy.clone())])],
                equalities: vec![],
            }),
            qminus: Formula::True,
            head: vec![(
                succ,
                vec![
                    ETerm::Base(BaseTerm::Var(sx)),
                    ETerm::Base(BaseTerm::Var(sy)),
                ],
            )],
        });
        actions.push(new_action);
    }
    out.process.actions = actions;
    out.validate().map_err(|e| e.to_string())?;
    Ok(out)
}

fn ts_call(new_ts: FuncId, ts_var: &Var) -> ETerm {
    ETerm::Call(new_ts, vec![BaseTerm::Var(ts_var.clone())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::det::{det_successors_by_commitment, DetState};
    use dcds_core::{DcdsBuilder, ServiceKind};

    fn example_5_1_nondet() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn rewriting_adds_timestamp_machinery() {
        let n = example_5_1_nondet();
        let d = nondet_to_det(&n).unwrap();
        assert!(d.is_deterministic());
        assert!(d.data.schema.rel_id("__succ").is_some());
        assert!(d.data.schema.rel_id("__now").is_some());
        assert_eq!(d.process.services.len(), 2);
        let f = d.process.services.func_id("f").unwrap();
        assert_eq!(d.process.services.arity(f), 2);
    }

    #[test]
    fn timestamps_decouple_same_argument_calls() {
        // Walk one all-fresh branch of the rewritten system: f is called at
        // step 1 (producing Q(v)), then again at step 3 (after v flowed back
        // into R) — with a strictly later timestamp argument, even though in
        // the original system both calls were plain f(·).
        let n = example_5_1_nondet();
        let d = nondet_to_det(&n).unwrap();
        let mut pool = d.data.pool.clone();
        let mut state = DetState::initial(&d);
        let mut f_calls: Vec<dcds_core::ServiceCall> = Vec::new();
        for _ in 0..4 {
            let succs = det_successors_by_commitment(&d, &state, &mut pool);
            // Prefer the successor whose new calls all returned fresh
            // (minted) values — one always exists.
            let next = succs
                .into_iter()
                .map(|(_, _, _, s)| s)
                .find(|s| {
                    s.call_map
                        .iter()
                        .filter(|(c, _)| !state.call_map.contains_key(c))
                        .all(|(_, v)| pool.is_minted(*v))
                })
                .expect("an all-fresh successor exists");
            state = next;
            f_calls = state
                .call_map
                .keys()
                .filter(|c| d.process.services.name(c.func) == "f")
                .cloned()
                .collect();
            if f_calls.len() >= 2 {
                break;
            }
        }
        assert!(
            f_calls.len() >= 2,
            "f must be called at least twice along the branch"
        );
        // All f calls carry pairwise distinct timestamp arguments.
        let timestamps: std::collections::BTreeSet<_> = f_calls.iter().map(|c| c.args[1]).collect();
        assert_eq!(timestamps.len(), f_calls.len());
    }

    #[test]
    fn succ_stays_linear() {
        let n = example_5_1_nondet();
        let d = nondet_to_det(&n).unwrap();
        let mut pool = d.data.pool.clone();
        let s0 = DetState::initial(&d);
        let succ_rel = d.data.schema.rel_id("__succ").unwrap();
        let mut frontier = vec![s0];
        for _ in 0..3 {
            let mut next = Vec::new();
            for st in &frontier {
                for (_, _, _, s) in det_successors_by_commitment(&d, st, &mut pool) {
                    // Key holds: each timestamp has one predecessor.
                    let mut seen = std::collections::BTreeSet::new();
                    for t in s.instance.tuples(succ_rel) {
                        assert!(seen.insert(t[1]));
                    }
                    next.push(s);
                }
            }
            frontier = next.into_iter().take(6).collect();
        }
    }

    #[test]
    fn projection_matches_original_reachability() {
        use dcds_core::explore::{explore_det, explore_nondet, CommitmentOracle, Limits};
        use dcds_reldata::Facts;
        use std::collections::BTreeSet;
        let n = example_5_1_nondet();
        let d = nondet_to_det(&n).unwrap();
        let limits = Limits {
            max_states: 600,
            max_depth: 2,
        };
        let mut o1 = CommitmentOracle;
        let nres = explore_nondet(&n, limits, &mut o1);
        let mut o2 = CommitmentOracle;
        let dres = explore_det(&d, limits, &mut o2);
        let orig: BTreeSet<_> = n.data.schema.rel_ids().collect();
        let rigid = n.rigid_constants();
        let keys = |ts: &dcds_core::Ts| -> BTreeSet<dcds_reldata::CanonKey> {
            ts.state_ids()
                .map(|s| Facts::from_instance(&ts.db(s).project(&orig)).canonical_key(&rigid))
                .collect()
        };
        assert_eq!(keys(&nres.ts), keys(&dres.ts));
    }
}
