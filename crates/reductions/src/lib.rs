//! # dcds-reductions
//!
//! The reductions and encodings the paper uses for its undecidability and
//! expressivity results, made executable:
//!
//! * a deterministic single-tape **Turing machine** substrate ([`tm`]) and
//!   the **TM → DCDS** compiler of Theorem 4.1 ([`mod@tm_to_dcds`]): the
//!   resulting DCDS simulates the machine step-for-step and the safety
//!   property `G ¬halted` tracks halting — the executable content of the
//!   undecidability proofs (Theorems 4.1, 4.6, 5.1, 5.5);
//! * **deterministic → nondeterministic** services (Theorem 6.1): history
//!   relations `R_f` with functional-dependency constraints force
//!   nondeterministic calls to behave deterministically
//!   ([`mod@det_to_nondet`]);
//! * **nondeterministic → deterministic** services (Theorem 6.2):
//!   a timestamp chain `succ`/`now` (kept linear by the same key trick as
//!   Theorem 4.1) disambiguates same-argument calls across steps
//!   ([`mod@nondet_to_det`]);
//! * **arbitrary FO integrity constraints → equality constraints**
//!   (Section 6): the `aux(a,b)` trick ([`fo_constraints`]);
//! * the **artifact-system model** and its translation into DCDSs
//!   (Section 6, "Connection with the artifact model") ([`artifact`]).

pub mod artifact;
pub mod det_to_nondet;
pub mod fo_constraints;
pub mod nondet_to_det;
pub mod tm;
pub mod tm_to_dcds;

pub use artifact::{ArtifactAction, ArtifactSystem, ArtifactType};
pub use det_to_nondet::det_to_nondet;
pub use fo_constraints::encode_fo_constraint;
pub use nondet_to_det::nondet_to_det;
pub use tm::{Move, Tm, TmBuilder, TmOutcome};
pub use tm_to_dcds::tm_to_dcds;
