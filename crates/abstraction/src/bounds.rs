//! Empirical run-/state-boundedness observation.
//!
//! Run-boundedness and state-boundedness are *undecidable* semantic
//! properties (Theorems 4.6 and 5.5); the static analyses of
//! `dcds-analysis` give sufficient conditions. These monitors complement
//! them on the semantic side: they explore bounded portions of the concrete
//! systems and report the witnessed bounds — useful for experiments
//! (EXPERIMENTS.md plots observed growth against the static verdicts) and
//! for sanity-checking that an allegedly (un)bounded example behaves as
//! the paper claims, within the horizon.

use dcds_core::det::{det_successors_by_commitment, DetState};
use dcds_core::nondet::nondet_successors_by_commitment;
use dcds_core::Dcds;
use dcds_reldata::{Facts, StateRef, StateStore, Value};
use std::collections::BTreeSet;

/// What a bounded exploration observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundObservation {
    /// Largest witnessed measure (per-run values for run-boundedness,
    /// per-state active-domain size for state-boundedness).
    pub max_observed: usize,
    /// True when exploration exhausted every branch within the horizon —
    /// the observation is then exact for that horizon, *not* a proof of
    /// boundedness.
    pub exhausted: bool,
    /// Number of runs / states examined.
    pub examined: usize,
}

/// Observe the run bound of a DCDS with deterministic services: the
/// maximum, over all commitment-representative runs of length ≤ `depth`,
/// of the number of distinct values met along the run.
pub fn observe_run_bound(dcds: &Dcds, depth: usize, max_runs: usize) -> BoundObservation {
    let mut pool = dcds.working_pool();
    let s0 = DetState::initial(dcds);
    let mut seen_values: BTreeSet<Value> = s0.instance.active_domain();
    let mut obs = BoundObservation {
        max_observed: seen_values.len(),
        exhausted: true,
        examined: 0,
    };
    let mut runs = 0usize;
    dfs_det(
        dcds,
        &s0,
        &mut seen_values,
        depth,
        &mut runs,
        max_runs,
        &mut obs,
        &mut pool,
    );
    obs.examined = runs;
    obs
}

#[allow(clippy::too_many_arguments)]
fn dfs_det(
    dcds: &Dcds,
    state: &DetState,
    values_on_run: &mut BTreeSet<Value>,
    depth: usize,
    runs: &mut usize,
    max_runs: usize,
    obs: &mut BoundObservation,
    pool: &mut dcds_reldata::ConstantPool,
) {
    obs.max_observed = obs.max_observed.max(values_on_run.len());
    if depth == 0 {
        *runs += 1;
        return;
    }
    if *runs >= max_runs {
        obs.exhausted = false;
        return;
    }
    let succs = det_successors_by_commitment(dcds, state, pool);
    if succs.is_empty() {
        *runs += 1;
        return;
    }
    for (_, _, _, next) in succs {
        let added: Vec<Value> = next
            .instance
            .active_domain()
            .into_iter()
            .filter(|v| values_on_run.insert(*v))
            .collect();
        dfs_det(
            dcds,
            &next,
            values_on_run,
            depth - 1,
            runs,
            max_runs,
            obs,
            pool,
        );
        for v in added {
            values_on_run.remove(&v);
        }
        if *runs >= max_runs {
            obs.exhausted = false;
            return;
        }
    }
}

/// Observe the state bound of a DCDS with nondeterministic services: the
/// maximum per-state active-domain size over commitment-representative
/// states reachable within `depth` steps.
pub fn observe_state_bound(dcds: &Dcds, depth: usize, max_states: usize) -> BoundObservation {
    let mut pool = dcds.working_pool();
    let mut frontier = vec![dcds.data.initial.clone()];
    let mut examined = 0usize;
    let mut max_observed = dcds.data.initial.active_domain().len();
    let mut exhausted = true;
    for _ in 0..depth {
        let mut next_frontier = Vec::new();
        for inst in &frontier {
            if examined >= max_states {
                exhausted = false;
                break;
            }
            examined += 1;
            for (_, _, _, next) in nondet_successors_by_commitment(dcds, inst, &mut pool) {
                max_observed = max_observed.max(next.active_domain().len());
                next_frontier.push(next);
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    BoundObservation {
        max_observed,
        exhausted,
        examined,
    }
}

/// [`observe_state_bound`] over the compact state store: the BFS frontier
/// holds [`StateRef`] handles (each successor stored as a delta over its
/// parent) instead of owned instances, so a wide frontier costs memory
/// proportional to the *changes* along it. Duplicate successors keep
/// duplicate frontier entries — this monitor deliberately does NOT dedup,
/// so `examined`, `max_observed`, and `exhausted` replay the owned
/// monitor's exactly.
pub fn observe_state_bound_compact(
    dcds: &Dcds,
    depth: usize,
    max_states: usize,
) -> BoundObservation {
    let mut pool = dcds.working_pool();
    let num_rels = dcds.data.schema.len() as u32;
    let mut store = StateStore::new();
    let r0 = store
        .insert(None, &Facts::from_instance(&dcds.data.initial))
        .state;
    let mut frontier: Vec<StateRef> = vec![r0];
    let mut examined = 0usize;
    let mut max_observed = dcds.data.initial.active_domain().len();
    let mut exhausted = true;
    for _ in 0..depth {
        let mut next_frontier = Vec::new();
        for &r in &frontier {
            if examined >= max_states {
                exhausted = false;
                break;
            }
            examined += 1;
            let inst = store.instance(r, num_rels);
            let parent_ids = store.resolve(r);
            for (_, _, _, next) in nondet_successors_by_commitment(dcds, &inst, &mut pool) {
                max_observed = max_observed.max(next.active_domain().len());
                let child = store
                    .insert_child(r, &parent_ids, &Facts::from_instance(&next))
                    .state;
                next_frontier.push(child);
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    BoundObservation {
        max_observed,
        exhausted,
        examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    fn example_4_3(kind: ServiceKind) -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, kind)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_5_2() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(X)");
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "Q(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn run_unbounded_example_grows_with_depth() {
        let dcds = example_4_3(ServiceKind::Deterministic);
        let shallow = observe_run_bound(&dcds, 2, 10_000);
        let deep = observe_run_bound(&dcds, 6, 10_000);
        assert!(deep.max_observed > shallow.max_observed);
    }

    #[test]
    fn state_bounded_example_stays_flat() {
        let dcds = example_4_3(ServiceKind::Nondeterministic);
        let obs = observe_state_bound(&dcds, 5, 10_000);
        assert_eq!(obs.max_observed, 1);
    }

    #[test]
    fn state_unbounded_example_grows() {
        let dcds = example_5_2();
        let obs = observe_state_bound(&dcds, 4, 10_000);
        assert!(obs.max_observed >= 3, "got {}", obs.max_observed);
    }

    #[test]
    fn exhaustion_flag_reports_budget() {
        let dcds = example_5_2();
        let obs = observe_state_bound(&dcds, 6, 3);
        assert!(!obs.exhausted);
    }

    #[test]
    fn compact_state_bound_matches_owned() {
        // Identical BoundObservation on every (depth, budget) profile —
        // including budget-truncated ones, where keeping duplicate
        // frontier entries (no dedup) is what preserves `examined`.
        for dcds in [example_4_3(ServiceKind::Nondeterministic), example_5_2()] {
            for (depth, budget) in [(5usize, 10_000usize), (4, 50), (6, 3), (0, 10)] {
                let owned = observe_state_bound(&dcds, depth, budget);
                let compact = observe_state_bound_compact(&dcds, depth, budget);
                assert_eq!(owned, compact, "depth={depth} budget={budget}");
            }
        }
    }
}
