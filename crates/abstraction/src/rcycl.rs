//! Algorithm RCYCL (Appendix C.3): constructing an eventually recycling
//! pruning of the concrete transition system of a DCDS with
//! nondeterministic services.
//!
//! Pseudocode from the paper, realised faithfully:
//!
//! ```text
//! Σ := {I₀}; ⇒ := ∅; UsedValues := ADOM(I₀); Visited := ∅
//! repeat
//!   pick state I ∈ Σ, action α, legal σ with (I, α, σ) ∉ Visited
//!   RecyclableValues := UsedValues − (ADOM(I₀) ∪ ADOM(I))
//!   pick V with |V| = |CALLS(DO(I, α, σ))|:
//!     V ⊆ RecyclableValues if enough recyclable values exist,
//!     else V ⊂ C − UsedValues (fresh)
//!   F := ADOM(I₀) ∪ ADOM(I) ∪ V
//!   for each θ ∈ EVALS_F(I, α, σ) with DO(I,α,σ)θ ⊨ E:
//!     Σ ∪= {I_next}; ⇒ ∪= {(I, I_next)}; UsedValues ∪= ADOM(I_next)
//!   Visited ∪= {(I, α, σ)}
//! until Σ and ⇒ no longer change
//! ```
//!
//! The nondeterministic "picks" are resolved deterministically (worklist
//! order; lowest recyclable values first), which Theorem 5.4 explicitly
//! allows ("the particular choices and their order do not matter"). For a
//! state-bounded input every run terminates with a finite eventually
//! recycling pruning `Θ_S ∼ Υ_S`; for state-unbounded inputs we stop at
//! `max_states` and report truncation.

use dcds_core::do_op::{
    do_action_indexed, legal_assignments_indexed, publish_query_stats_delta, query_stats_snapshot,
    state_index, PreInstance,
};
use dcds_core::nondet::{evals_over, nondet_step_with_pre};
use dcds_core::par::{configured_threads, par_map_obs, EngineCounters};
use dcds_core::{Dcds, StateId, Ts};
use dcds_obs::{event, span, Obs};
use dcds_reldata::{ConstantPool, Instance, Value};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Result of running RCYCL.
#[derive(Debug, Clone)]
pub struct RcyclResult {
    /// The pruning (a transition system over instances).
    pub ts: Ts,
    /// Did the algorithm saturate (true) or hit `max_states` (false)?
    pub complete: bool,
    /// All values ever used (the final `UsedValues`).
    pub used_values: BTreeSet<Value>,
    /// Number of `(I, α, σ)` triples processed.
    pub triples_processed: usize,
    /// The constant pool extended with minted fresh values.
    pub pool: ConstantPool,
    /// Observability counters. RCYCL deduplicates by *exact* instance
    /// equality (the pruning recycles values, so isomorphic states really
    /// are equal), hence the canonicalisation counters stay zero here;
    /// `states_expanded` / `successors_generated` are the load metrics.
    pub counters: EngineCounters,
}

/// Run Algorithm RCYCL with a state budget and the configured thread count
/// (see [`configured_threads`]).
///
/// The `EVALS_F` enumeration is `|F|^n` for `n` calls per step; steps whose
/// enumeration would exceed an internal budget (2·10^4 evaluations) are
/// skipped and the result is marked incomplete — exactly the honest
/// behaviour for state-unbounded systems such as Example 5.3, whose call
/// count doubles every step. (State-bounded systems sit far below the
/// budget: their per-step call count is fixed by the specification and
/// their `F` recycles a bounded value pool.)
pub fn rcycl(dcds: &Dcds, max_states: usize) -> RcyclResult {
    rcycl_opts(dcds, max_states, configured_threads())
}

/// [`rcycl`] with an explicit worker-thread count. Output is identical for
/// every `threads` value (including 1, the serial ablation baseline).
///
/// Unlike the deterministic abstraction, RCYCL's outer loop cannot be
/// level-parallelised without changing the answer: `UsedValues` evolves
/// per `(I, α, σ)` triple and feeds the very next triple's
/// `RecyclableValues` pick. What *is* embarrassingly parallel is the inside
/// of a triple — the up-to-`|F|^n` evaluations θ are independent
/// constraint-checked query evaluations against one shared `DO(I, ασ)`
/// pre-instance — and the per-state `DO` precomputation. Both are farmed
/// out with [`par_map`](dcds_core::par::par_map) and merged serially in enumeration order, so the
/// pruning, `UsedValues`, and the pool match the serial run exactly.
pub fn rcycl_opts(dcds: &Dcds, max_states: usize, threads: usize) -> RcyclResult {
    rcycl_traced(dcds, max_states, threads, &Obs::disabled())
}

/// [`rcycl_opts`] with an observability handle: one span per dequeued
/// state, θ-fan-out metrics, and rate-limited heartbeats. A disabled
/// handle makes this exactly `rcycl_opts`.
pub fn rcycl_traced(dcds: &Dcds, max_states: usize, threads: usize, obs: &Obs) -> RcyclResult {
    const MAX_EVALS_PER_STEP: f64 = 20_000.0;
    let _run = span!(obs, "rcycl", threads = threads, max_states = max_states);
    let query_stats0 = query_stats_snapshot(dcds);
    let rigid = dcds.rigid_constants();
    let threads = threads.max(1);
    let mut pool = dcds.working_pool();
    let mut counters = EngineCounters::default();

    let mut ts = Ts::new(dcds.data.initial.clone());
    let mut index: HashMap<Instance, StateId> = HashMap::new();
    index.insert(dcds.data.initial.clone(), ts.initial());
    let mut used_values: BTreeSet<Value> = dcds.data.initial.active_domain();
    used_values.extend(rigid.iter().copied());

    // Worklist of states whose (α, σ) triples are not yet Visited. A state
    // is re-enqueued when new legal assignments can appear — they cannot
    // (legality depends only on I), so one pass per state suffices; the
    // `Visited` set still guards against duplicates from re-added states.
    let mut queue: VecDeque<StateId> = VecDeque::new();
    queue.push_back(ts.initial());
    let mut visited_states: BTreeSet<StateId> = BTreeSet::new();
    let mut complete = true;
    let mut triples = 0usize;

    while let Some(sid) = queue.pop_front() {
        if !visited_states.insert(sid) {
            continue;
        }
        counters.states_expanded += 1;
        // No levels to hang events on: report every 1024 dequeued states.
        if counters.states_expanded % 1024 == 0 {
            event!(
                obs,
                "progress",
                engine = "rcycl",
                expanded = counters.states_expanded,
                states = ts.num_states(),
                queued = queue.len(),
                triples = triples,
            );
        }
        let mut state_span = span!(obs, "rcycl_state", queue = queue.len());
        obs.heartbeat(|| {
            format!(
                "rcycl: {} states, {} queued, {} triples processed",
                ts.num_states(),
                queue.len(),
                triples
            )
        });
        let inst = ts.db(sid).clone();
        // `DO(I, ασ)` depends only on the state, not on `UsedValues`:
        // build one hash index for the dequeued state and precompute every
        // triple's pre-instance in parallel against it.
        let state_idx = state_index(dcds, &inst);
        let triples_for_state = legal_assignments_indexed(dcds, &inst, Some(&state_idx));
        let pres: Vec<PreInstance> =
            par_map_obs(&triples_for_state, threads, obs, "do", |(action, sigma)| {
                do_action_indexed(dcds, &inst, *action, sigma, Some(&state_idx))
            });
        state_span.set("triples", pres.len() as u64);
        for pre in &pres {
            triples += 1;
            let calls = pre.calls();
            let n = calls.len();
            // RecyclableValues := UsedValues − (ADOM(I₀) ∪ ADOM(I)).
            let mut recyclable: Vec<Value> = used_values
                .iter()
                .copied()
                .filter(|v| !rigid.contains(v) && !inst.active_domain().contains(v))
                .collect();
            recyclable.sort_unstable();
            let v_set: Vec<Value> = if recyclable.len() >= n {
                recyclable.into_iter().take(n).collect()
            } else {
                // Fresh values from C − UsedValues.
                (0..n).map(|_| pool.mint("v")).collect()
            };
            // F := ADOM(I₀) ∪ ADOM(I) ∪ V.
            let mut f_set: BTreeSet<Value> = inst.active_domain();
            f_set.extend(rigid.iter().copied());
            f_set.extend(v_set.iter().copied());
            if (f_set.len() as f64).powi(n as i32) > MAX_EVALS_PER_STEP {
                complete = false;
                obs.counter_add("rcycl.eval_budget_skips", 1);
                continue;
            }
            // The θ fan-out: independent evaluations of one pre-instance,
            // merged below in enumeration order.
            let thetas = evals_over(&calls, &f_set);
            obs.histogram("rcycl.theta_fanout", thetas.len() as u64);
            let nexts: Vec<Option<Instance>> =
                par_map_obs(&thetas, threads, obs, "theta", |theta| {
                    nondet_step_with_pre(dcds, pre, theta)
                });
            for next in nexts.into_iter().flatten() {
                counters.successors_generated += 1;
                let next_id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        if ts.num_states() >= max_states {
                            complete = false;
                            continue;
                        }
                        let id = ts.add_state(next.clone());
                        index.insert(next, id);
                        queue.push_back(id);
                        id
                    }
                };
                used_values.extend(ts.db(next_id).active_domain());
                ts.add_edge(sid, next_id);
            }
        }
    }

    obs.counter_add("rcycl.triples_processed", triples as u64);
    obs.gauge_max("rcycl.used_values", used_values.len() as i64);
    counters.publish(obs, "rcycl");
    publish_query_stats_delta(dcds, obs, &query_stats0);
    event!(
        obs,
        "progress",
        engine = "rcycl",
        expanded = counters.states_expanded,
        states = ts.num_states(),
        queued = 0u64,
        triples = triples,
    );
    obs.progress_flush(|| {
        format!(
            "rcycl done: {} states, {triples} triples (complete: {complete})",
            ts.num_states()
        )
    });

    RcyclResult {
        ts,
        complete,
        used_values,
        triples_processed: triples,
        pool,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    /// Example 4.3 under nondeterministic services (Example 5.1 / Fig. 7).
    fn example_5_1() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    /// Example 5.2 (state-unbounded accumulator).
    fn example_5_2() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(X)");
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "Q(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn example_5_1_terminates_small() {
        // Figure 7b: the pruning is tiny (states of size 1; f's results are
        // recycled). The paper draws 4 states; our deterministic pick order
        // may produce a slightly different—but finite and bisimilar—pruning.
        let res = rcycl(&example_5_1(), 100);
        assert!(res.complete);
        assert!(res.ts.num_states() <= 10, "got {}", res.ts.num_states());
        assert_eq!(res.ts.max_state_adom(), 1);
    }

    #[test]
    fn example_5_2_truncates() {
        // State-unbounded: Q accumulates fresh values; RCYCL cannot
        // saturate.
        let res = rcycl(&example_5_2(), 80);
        assert!(!res.complete);
        assert_eq!(res.ts.num_states(), 80);
        // Growing states witness the unboundedness.
        assert!(res.ts.max_state_adom() >= 3);
    }

    #[test]
    fn every_state_satisfies_constraints() {
        let dcds = example_5_1();
        let res = rcycl(&dcds, 100);
        for s in res.ts.state_ids() {
            assert!(dcds.data.satisfies_constraints(res.ts.db(s)));
        }
    }

    #[test]
    fn pruning_is_finitely_branching() {
        let res = rcycl(&example_5_1(), 100);
        for s in res.ts.state_ids() {
            assert!(res.ts.successors(s).len() <= 4);
        }
    }

    #[test]
    fn thread_counts_agree_exactly() {
        // The θ fan-out parallelism must not change the pruning: same
        // states in the same order, same edges, same UsedValues, same pool.
        for (dcds, budget) in [(example_5_1(), 100usize), (example_5_2(), 80)] {
            let runs: Vec<RcyclResult> = [1usize, 2, 8]
                .into_iter()
                .map(|t| rcycl_opts(&dcds, budget, t))
                .collect();
            for other in &runs[1..] {
                assert_eq!(runs[0].ts, other.ts);
                assert_eq!(runs[0].complete, other.complete);
                assert_eq!(runs[0].used_values, other.used_values);
                assert_eq!(runs[0].triples_processed, other.triples_processed);
                assert_eq!(runs[0].pool.len(), other.pool.len());
                assert_eq!(runs[0].counters, other.counters);
            }
        }
    }

    #[test]
    fn recycling_bounds_used_values() {
        // For the state-bounded example the total set of used values stays
        // small (3b-style bound), far below what unbounded minting would
        // produce.
        let res = rcycl(&example_5_1(), 100);
        assert!(res.used_values.len() <= 6, "got {}", res.used_values.len());
    }
}
