//! Abstract transition system for deterministic services (Theorem 4.3).
//!
//! The concrete system is infinitely branching: at each step the new
//! service calls may return any constants. The abstraction keeps, per
//! reachable state and legal `ασ`, *one successor per equality commitment*
//! of the new calls against the state's known values, and then quotients
//! states by isomorphism of the full `⟨I, M⟩` structure (database + call
//! map) fixing the rigid constants. Theorem 4.3: for run-bounded systems
//! the result is finite and history-preserving bisimilar to the concrete
//! transition system; our tests machine-check instances of that statement
//! with the `dcds-bisim` checkers against bounded concrete prefixes.
//!
//! # Construction
//!
//! The BFS is **level-synchronised** and built from four phases per level,
//! so the expensive work parallelises over the whole frontier while every
//! order-sensitive effect stays serial:
//!
//! 1. *enumerate* (parallel): per frontier state, legal assignments,
//!    `DO(I, ασ)` pre-instances, and the equality commitments of the new
//!    calls — none of which touch the constant pool; a parallel *census*
//!    pass also builds each frontier state's value-occurrence census
//!    ([`dcds_reldata::SigCensus`]) so successor signatures can be derived
//!    incrementally instead of from scratch;
//! 2. *mint* (serial, frontier order): instantiate each commitment's fresh
//!    cells from the shared [`ConstantPool`] — the exact mint sequence a
//!    serial loop would produce;
//! 3. *step* (parallel, over all `(state, ασ, commitment)` tasks):
//!    [`det_step_with_pre`], the successor's [`Facts`] encoding, its
//!    invariant signature — derived from the source state's census by the
//!    fact diff — and, when the level-start index already has a matching
//!    signature bucket, its canonical key;
//! 4. *merge* (serial, task order): deduplicate against the class index,
//!    allocate state ids, record edges, apply the state budget.
//!
//! Because phases 2 and 4 replay the serial engine's effect order exactly,
//! the output (`Ts`, states, outcome, pool) is **bit-identical for every
//! thread count** — `dcds_core::par::par_map` returns results in input
//! order regardless of scheduling. The determinism tests assert this.
//!
//! # Deduplication
//!
//! The class index groups isomorphism classes by their cheap
//! [`Facts::signature`] and keeps an exact-match `HashMap<CanonKey, _>`
//! in front of the groups. A successor whose signature group is empty is
//! provably a new class — no canonicalisation happens at all (the common
//! case; see the `sig_filter_skips` counter). Only on a signature hit is
//! the canonical key computed (lazily, both for the probe and — once,
//! ever — for each resident class), after which a single hash probe of
//! the exact map decides membership: the per-probe cost is independent of
//! how many classes share the signature. The branch-and-bound key search
//! handles symmetric instances in a single descent, so *every* class is
//! keyed — the former permutation-budget bail-out and its
//! backtracking-matcher fallback are gone.

use dcds_core::det::{det_step_with_pre, DetState};
use dcds_core::do_op::{
    do_action_indexed, legal_assignments_indexed, publish_query_stats_delta, query_stats_snapshot,
    state_index, PreInstance,
};
use dcds_core::par::{configured_threads, par_map_obs, EngineCounters};
use dcds_core::{enumerate_commitments, ActionId, CommitTarget, Commitment, Dcds, StateId, Ts};
use dcds_folang::Assignment;
use dcds_obs::{event, span, Obs};
use dcds_reldata::{CanonKey, CanonStats, ConstantPool, Facts, SigCensus, Value};
use std::collections::{BTreeSet, HashMap};

/// Whether an abstraction construction saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsOutcome {
    /// The iso-quotient BFS saturated: the abstraction is exact.
    Complete,
    /// The state limit was hit — consistent with (though not proof of)
    /// run-unboundedness.
    Truncated,
}

/// The result of the deterministic abstraction.
#[derive(Debug, Clone)]
pub struct DetAbstraction {
    /// The abstract transition system (states labeled by instances).
    pub ts: Ts,
    /// The full `⟨I, M⟩` state behind each abstract state.
    pub states: Vec<DetState>,
    /// Saturated or truncated.
    pub outcome: AbsOutcome,
    /// The constant pool extended with the representative fresh values the
    /// construction minted (needed to display the states).
    pub pool: ConstantPool,
    /// Observability counters (exact and thread-count independent).
    pub counters: EngineCounters,
}

/// State-deduplication strategy for the abstraction BFS — exposed so the
/// benchmark suite can ablate the design choice DESIGN.md makes (canonical
/// keys give O(1) lookup at the cost of canonicalisation per colliding
/// state; pairwise matching avoids canonicalisation but scans the class
/// list). Both strategies are pre-filtered by the invariant signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupStrategy {
    /// Canonical-form keys, computed lazily per signature bucket (the
    /// default).
    CanonicalKey,
    /// Signature-bucketed scan with the backtracking isomorphism matcher.
    PairwiseIso,
}

/// Options for [`det_abstraction_opts`].
#[derive(Debug, Clone, Copy)]
pub struct AbsOptions {
    /// Deduplication strategy.
    pub strategy: DedupStrategy,
    /// Worker threads for the parallel phases. `1` is the serial engine
    /// (same output, no worker pool) — the ablation baseline.
    pub threads: usize,
    /// Canonicalise *every* successor instead of only on signature-bucket
    /// hits — the pre-fast-path cost model, kept as an ablation baseline
    /// for the benchmark harness. Output is identical either way.
    pub eager_keys: bool,
    /// Frontier states stepped per batch inside one BFS level of the
    /// compact engine. Bounds the transient per-level scratch
    /// (pre-instances, stepped successors) without altering any output:
    /// all serial decisions still run in global frontier/task order.
    /// Ignored by the legacy (owned-instance) engines. `0` is treated
    /// as `1`.
    pub level_chunk: usize,
}

/// Default [`AbsOptions::level_chunk`]: small enough that a 100k-wide
/// frontier's scratch stays in the tens of megabytes, large enough that
/// parallel phases keep every worker busy.
pub const DEFAULT_LEVEL_CHUNK: usize = 4096;

impl Default for AbsOptions {
    fn default() -> Self {
        AbsOptions {
            strategy: DedupStrategy::CanonicalKey,
            threads: configured_threads(),
            eager_keys: false,
            level_chunk: DEFAULT_LEVEL_CHUNK,
        }
    }
}

/// Build the deterministic abstract transition system, up to `max_states`
/// isomorphism classes.
pub fn det_abstraction(dcds: &Dcds, max_states: usize) -> DetAbstraction {
    det_abstraction_opts(dcds, max_states, AbsOptions::default())
}

/// [`det_abstraction`] with an explicit deduplication strategy.
pub fn det_abstraction_with(
    dcds: &Dcds,
    max_states: usize,
    strategy: DedupStrategy,
) -> DetAbstraction {
    det_abstraction_opts(
        dcds,
        max_states,
        AbsOptions {
            strategy,
            ..AbsOptions::default()
        },
    )
}

/// One signature's isomorphism classes, split by key status.
#[derive(Debug, Default)]
pub(crate) struct SigGroup {
    /// Every member class, in insertion order — the scan order of the
    /// [`DedupStrategy::PairwiseIso`] ablation.
    pub(crate) members: Vec<usize>,
    /// Admitted without a key attempt; lazily keyed (once, ever) when a
    /// keyed probe first collides with this signature.
    pub(crate) unkeyed: Vec<usize>,
    /// Number of members whose key lives in the exact-match map.
    pub(crate) keyed: u64,
}

/// Fold one canonical-key computation into the engine counters.
pub(crate) fn credit_canon(counters: &mut EngineCounters, stats: CanonStats) {
    counters.canon_keys_computed += 1;
    counters.canon_orders_enumerated += stats.orders_enumerated;
    counters.canon_prune_cutoffs += stats.prune_cutoffs;
}

/// Publish the `canon.*` metrics stanza — pruning effectiveness per run,
/// alongside the `abs.*` counters [`EngineCounters::publish`] emits.
pub(crate) fn publish_canon(obs: &Obs, counters: &EngineCounters) {
    obs.counter_add("canon.keys_computed", counters.canon_keys_computed);
    obs.counter_add("canon.orders_enumerated", counters.canon_orders_enumerated);
    obs.counter_add("canon.prune_cutoffs", counters.canon_prune_cutoffs);
}

/// Index of the isomorphism classes seen so far: an exact-match map over
/// canonical keys in front of signature groups.
///
/// Canonical keys are computed lazily: a class admitted through an empty
/// signature group never pays for canonicalisation unless a later probe
/// collides with its signature. Keyed classes are found with **one hash
/// probe** of the global `exact` map — equal keys imply isomorphism,
/// index classes are pairwise non-isomorphic, and isomorphic fact sets
/// share a signature, so at most one class can match and a hit is always
/// inside the probe's own signature group. The pruned key search succeeds
/// on every input, so under `CanonicalKey` each class is keyed at most
/// once, ever, and no probe falls back to the backtracking matcher.
///
/// Counter semantics (uniform across both [`DedupStrategy`] variants):
/// every probe credits `iso_checks_avoided` with the classes the
/// signature filter excluded (`total − |group|`; all of them when the
/// group is empty, which also counts one `sig_filter_skips`). Under
/// `CanonicalKey` a keyed probe additionally credits one avoided check
/// per keyed group member (the exact-map probe stands in for comparing
/// against each of them), `canon_keys_computed` counts every key search
/// exactly once (with `canon_orders_enumerated` / `canon_prune_cutoffs`
/// summing the search effort), and `iso_checks_performed` counts each
/// backtracking-matcher call of the `PairwiseIso` ablation.
struct ClassIndex {
    strategy: DedupStrategy,
    rigid: BTreeSet<Value>,
    /// Per class: the fact encoding (probe target for the matchers).
    class_facts: Vec<Facts>,
    /// Canonical key → class, global across signatures.
    exact: HashMap<CanonKey, usize>,
    /// Signature → its classes, grouped by key status.
    groups: HashMap<u64, SigGroup>,
}

impl ClassIndex {
    fn new(strategy: DedupStrategy, rigid: BTreeSet<Value>) -> Self {
        ClassIndex {
            strategy,
            rigid,
            class_facts: Vec::new(),
            exact: HashMap::new(),
            groups: HashMap::new(),
        }
    }

    /// Is this signature's group non-empty? (Workers consult the
    /// level-start snapshot to decide whether to canonicalise eagerly.)
    fn bucket_occupied(&self, sig: u64) -> bool {
        self.groups.get(&sig).is_some_and(|g| !g.members.is_empty())
    }

    /// Find the class of `facts`, if already present. `probe_key` carries a
    /// key a worker may have computed speculatively (`None` = not
    /// attempted); the slot is filled in if the merge has to compute one,
    /// so a subsequent [`ClassIndex::insert`] can reuse it.
    fn find(
        &mut self,
        facts: &Facts,
        sig: u64,
        probe_key: &mut Option<CanonKey>,
        counters: &mut EngineCounters,
    ) -> Option<usize> {
        let ClassIndex {
            strategy,
            rigid,
            class_facts,
            exact,
            groups,
        } = self;
        let total = class_facts.len() as u64;
        let Some(group) = groups.get_mut(&sig).filter(|g| !g.members.is_empty()) else {
            // The signature proves the class is new: every resident
            // class's pairwise check is avoided, under both strategies.
            counters.sig_filter_skips += 1;
            counters.iso_checks_avoided += total;
            return None;
        };
        // The signature filter rules out every class outside this group.
        counters.iso_checks_avoided += total - group.members.len() as u64;
        if *strategy == DedupStrategy::PairwiseIso {
            for &ix in &group.members {
                counters.iso_checks_performed += 1;
                if class_facts[ix].isomorphic(facts, rigid) {
                    return Some(ix);
                }
            }
            return None;
        }
        // CanonicalKey strategy: materialise the probe's key on first need.
        if probe_key.is_none() {
            let (k, stats) = facts.canonical_key_stats(rigid);
            credit_canon(counters, stats);
            *probe_key = Some(k);
        }
        let pk = probe_key.as_ref().unwrap();
        // Key every unkeyed resident of the group — each at most once over
        // the whole construction — so the exact-map probe below replaces a
        // scan of the group.
        for ix in std::mem::take(&mut group.unkeyed) {
            let (ck, stats) = class_facts[ix].canonical_key_stats(rigid);
            credit_canon(counters, stats);
            exact.insert(ck, ix);
            group.keyed += 1;
        }
        // One hash probe stands in for a key comparison against every
        // keyed member of the group.
        counters.iso_checks_avoided += group.keyed;
        exact.get(pk).copied()
    }

    /// Admit a new class. `probe_key` is whatever [`ClassIndex::find`] (or
    /// a worker) computed — possibly nothing, which is the signature fast
    /// path's whole point.
    fn insert(&mut self, facts: Facts, sig: u64, probe_key: Option<CanonKey>) {
        let ix = self.class_facts.len();
        self.class_facts.push(facts);
        let group = self.groups.entry(sig).or_default();
        group.members.push(ix);
        match probe_key {
            Some(k) => {
                self.exact.insert(k, ix);
                group.keyed += 1;
            }
            None => group.unkeyed.push(ix),
        }
    }
}

/// What the parallel enumeration phase computes per `(state, ασ)`: the
/// action, its assignment, the pre-instance, and the equality commitments
/// over the not-yet-mapped calls.
type EnumeratedStep = (ActionId, Assignment, PreInstance, Vec<Commitment>);

/// One phase-3 task: a `(frontier state, ασ, commitment)` triple with its
/// minted evaluation choice.
struct StepTask<'a> {
    frontier_ix: usize,
    source: StateId,
    pre: &'a PreInstance,
    choice: std::collections::BTreeMap<dcds_core::ServiceCall, Value>,
}

/// A stepped successor awaiting the serial merge: the state, its facts,
/// its signature, and the eagerly-computed canonical key with the search
/// stats the merge will account for in task order.
pub(crate) type SteppedChild = (DetState, Facts, u64, Option<(CanonKey, CanonStats)>);

/// The outcome of one phase-3 task.
struct StepResult {
    source: StateId,
    /// `None` when the commitment representative violates the constraints.
    next: Option<SteppedChild>,
}

/// [`det_abstraction`] with explicit options. Output is identical for
/// every `opts.threads` value (including 1); see the module docs.
pub fn det_abstraction_opts(dcds: &Dcds, max_states: usize, opts: AbsOptions) -> DetAbstraction {
    det_abstraction_traced(dcds, max_states, opts, &Obs::disabled())
}

/// [`det_abstraction_opts`] with an observability handle: an overall span,
/// one `frontier_level` span per BFS level, frontier/dedup metrics, and
/// rate-limited heartbeats. With a disabled handle this is exactly
/// `det_abstraction_opts` — no clock reads, no allocation.
///
/// The registry is only updated from the serial phases (and from the final
/// [`EngineCounters::publish`]), so every metric except the `*_us` timing
/// histograms is bit-identical at every thread count.
pub fn det_abstraction_traced(
    dcds: &Dcds,
    max_states: usize,
    opts: AbsOptions,
    obs: &Obs,
) -> DetAbstraction {
    let _run = span!(
        obs,
        "det_abstraction",
        threads = opts.threads,
        max_states = max_states
    );
    let query_stats0 = query_stats_snapshot(dcds);
    let rigid = dcds.rigid_constants();
    let num_rels = dcds.data.schema.len();
    let threads = opts.threads.max(1);
    let mut pool = dcds.working_pool();
    let mut counters = EngineCounters::default();

    let s0 = DetState::initial(dcds);
    let mut ts = Ts::new(s0.instance.clone());
    let mut states = vec![s0.clone()];
    let mut index = ClassIndex::new(opts.strategy, rigid.clone());
    let f0 = s0.to_facts(num_rels);
    let sig0 = f0.signature(&rigid);
    let key0 = if opts.strategy == DedupStrategy::CanonicalKey {
        let (k, stats) = f0.canonical_key_stats(&rigid);
        credit_canon(&mut counters, stats);
        Some(k)
    } else {
        None
    };
    index.insert(f0, sig0, key0);

    let mut frontier: Vec<StateId> = vec![ts.initial()];
    let mut outcome = AbsOutcome::Complete;
    let mut level = 0usize;

    while !frontier.is_empty() {
        counters.states_expanded += frontier.len() as u64;
        let mut level_span = span!(
            obs,
            "frontier_level",
            level = level,
            frontier = frontier.len()
        );
        obs.histogram("abs.frontier_states", frontier.len() as u64);
        obs.gauge_max("abs.max_frontier", frontier.len() as i64);
        obs.heartbeat(|| {
            format!(
                "abstraction level {level}: frontier {}, {} classes total",
                frontier.len(),
                ts.num_states()
            )
        });

        // Phase 1 (parallel): legal assignments, pre-instances, and
        // commitments per frontier state. Nothing here touches the pool.
        let enumerated: Vec<Vec<EnumeratedStep>> =
            par_map_obs(&frontier, threads, obs, "enumerate", |&sid| {
                let state = &states[sid.index()];
                let idx = state_index(dcds, &state.instance);
                legal_assignments_indexed(dcds, &state.instance, Some(&idx))
                    .into_iter()
                    .map(|(action, sigma)| {
                        let pre =
                            do_action_indexed(dcds, &state.instance, action, &sigma, Some(&idx));
                        let new_calls: Vec<dcds_core::ServiceCall> = pre
                            .calls()
                            .into_iter()
                            .filter(|c| !state.call_map.contains_key(c))
                            .collect();
                        let mut known: BTreeSet<Value> = state.known_values();
                        known.extend(rigid.iter().copied());
                        let known: Vec<Value> = known.into_iter().collect();
                        let commitments = enumerate_commitments(&new_calls, &known);
                        (action, sigma, pre, commitments)
                    })
                    .collect()
            });

        // Census (parallel): each frontier state's value-occurrence
        // census, so every successor's signature derives from a fact diff
        // instead of a from-scratch pass.
        let censuses: Vec<SigCensus> = par_map_obs(&frontier, threads, obs, "census", |&sid| {
            let f = states[sid.index()].to_facts(num_rels);
            SigCensus::new(f.iter(), &rigid)
        });

        // Phase 2 (serial, frontier order): mint the fresh cells of every
        // commitment — the exact mint sequence of the serial engine.
        let mut tasks: Vec<StepTask> = Vec::new();
        for (frontier_ix, (sid, per_state)) in frontier.iter().zip(&enumerated).enumerate() {
            for (_action, _sigma, pre, commitments) in per_state {
                for commitment in commitments {
                    let cells = dcds_core::commitment::fresh_cell_count(commitment);
                    let fresh: Vec<Value> = (0..cells).map(|_| pool.mint("v")).collect();
                    let choice = commitment
                        .iter()
                        .map(|(c, t)| {
                            let v = match t {
                                CommitTarget::Known(v) => *v,
                                CommitTarget::Fresh(cell) => fresh[*cell],
                            };
                            (c.clone(), v)
                        })
                        .collect();
                    tasks.push(StepTask {
                        frontier_ix,
                        source: *sid,
                        pre,
                        choice,
                    });
                }
            }
        }

        // Phase 3 (parallel): evaluate every commitment representative,
        // encode it, and — on a signature hit against the level-start
        // index — canonicalise it eagerly so the serial merge rarely has
        // to.
        let step_timer = obs.timer();
        let stepped: Vec<StepResult> = par_map_obs(&tasks, threads, obs, "step", |task| {
            let state = &states[frontier[task.frontier_ix].index()];
            let next = det_step_with_pre(dcds, state, task.pre, &task.choice).map(|next| {
                let facts = next.to_facts(num_rels);
                let sig = censuses[task.frontier_ix].child_signature(|| facts.iter(), facts.len());
                let key = if opts.strategy == DedupStrategy::CanonicalKey
                    && (opts.eager_keys || index.bucket_occupied(sig))
                {
                    Some(facts.canonical_key_stats(&rigid))
                } else {
                    None
                };
                (next, facts, sig, key)
            });
            StepResult {
                source: task.source,
                next,
            }
        });
        drop(tasks);
        obs.time_us("abs.step_phase_us", step_timer);

        // Phase 4 (serial, task order): deduplicate, allocate ids, record
        // edges — byte-for-byte the serial engine's merge order.
        let merge_timer = obs.timer();
        let mut next_frontier: Vec<StateId> = Vec::new();
        let mut dedup_hits = 0u64;
        let mut edges_added = 0u64;
        for result in stepped {
            let Some((next, facts, sig, key)) = result.next else {
                continue;
            };
            counters.successors_generated += 1;
            // Worker canonicalised eagerly; account for it exactly once.
            if let Some((_, stats)) = &key {
                credit_canon(&mut counters, *stats);
            }
            let mut key: Option<CanonKey> = key.map(|(k, _)| k);
            let found = index.find(&facts, sig, &mut key, &mut counters);
            let next_id = match found {
                Some(class_ix) => {
                    dedup_hits += 1;
                    StateId::from_index(class_ix)
                }
                None => {
                    if ts.num_states() >= max_states {
                        outcome = AbsOutcome::Truncated;
                        continue;
                    }
                    let id = ts.add_state(next.instance.clone());
                    states.push(next);
                    index.insert(facts, sig, key);
                    next_frontier.push(id);
                    id
                }
            };
            ts.add_edge(result.source, next_id);
            edges_added += 1;
        }
        obs.time_us("abs.merge_phase_us", merge_timer);
        level_span.set("new_classes", next_frontier.len() as u64);
        event!(
            obs,
            "level",
            engine = "det_abstraction",
            level = level,
            frontier = frontier.len(),
            new_classes = next_frontier.len(),
            states = ts.num_states(),
            edges = edges_added,
            dedup_hits = dedup_hits,
        );
        frontier = next_frontier;
        level += 1;
    }

    obs.counter_add("abs.levels", level as u64);
    counters.publish(obs, "abs");
    publish_canon(obs, &counters);
    publish_query_stats_delta(dcds, obs, &query_stats0);
    obs.progress_flush(|| {
        format!(
            "abstraction done: {} classes, {} levels ({outcome:?})",
            ts.num_states(),
            level
        )
    });

    DetAbstraction {
        ts,
        states,
        outcome,
        pool,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    fn example_4_1() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_4_2() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .constraint("P(X) & Q(Y, Z) -> X = Y")
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_4_3() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn dedup_strategies_agree() {
        for dcds in [example_4_1(), example_4_2()] {
            let a = det_abstraction_with(&dcds, 200, DedupStrategy::CanonicalKey);
            let b = det_abstraction_with(&dcds, 200, DedupStrategy::PairwiseIso);
            assert_eq!(a.ts.num_states(), b.ts.num_states());
            assert_eq!(a.ts.num_edges(), b.ts.num_edges());
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn example_4_1_saturates_finite() {
        // Figure 3b: the abstraction of the weakly acyclic Example 4.1 is
        // finite. Initial state + 5 commitment successors (some of which
        // merge deeper), each looping once calls are recorded.
        let abs = det_abstraction(&example_4_1(), 200);
        assert_eq!(abs.outcome, AbsOutcome::Complete);
        // 1 initial + 5 first-level iso classes + their (deterministic)
        // successors which fold back into finitely many classes.
        assert!(abs.ts.num_states() >= 6);
        assert!(abs.ts.num_states() <= 20, "got {}", abs.ts.num_states());
    }

    #[test]
    fn example_4_2_constraint_prunes() {
        // Figure 2b: the equality constraint forces f(a) = a; only g(a)
        // branches (known or fresh): strictly fewer states than Example 4.1.
        let abs1 = det_abstraction(&example_4_1(), 200);
        let abs2 = det_abstraction(&example_4_2(), 200);
        assert_eq!(abs2.outcome, AbsOutcome::Complete);
        assert!(abs2.ts.num_states() < abs1.ts.num_states());
        // Initial state has exactly 2 successors in Figure 2b.
        assert_eq!(abs2.ts.successors(abs2.ts.initial()).len(), 2);
    }

    #[test]
    fn example_4_3_truncates() {
        // Figure 4: run-unbounded — the call map keeps growing, no finite
        // quotient exists (Theorem 4.5's discussion); construction truncates.
        let abs = det_abstraction(&example_4_3(), 60);
        assert_eq!(abs.outcome, AbsOutcome::Truncated);
        assert_eq!(abs.ts.num_states(), 60);
    }

    #[test]
    fn abstraction_states_satisfy_constraints() {
        let dcds = example_4_2();
        let abs = det_abstraction(&dcds, 200);
        for s in abs.ts.state_ids() {
            assert!(dcds.data.satisfies_constraints(abs.ts.db(s)));
        }
    }

    #[test]
    fn deterministic_closure_no_new_calls_loop() {
        // Once every issued call is recorded, states self-loop (Figure 3b's
        // bottom row): every non-initial state has at least one successor.
        let abs = det_abstraction(&example_4_1(), 200);
        for s in abs.ts.state_ids() {
            assert!(
                !abs.ts.successors(s).is_empty(),
                "state {s:?} has no successors"
            );
        }
    }

    #[test]
    fn thread_counts_agree_exactly() {
        // The determinism contract at unit-test scale (the integration
        // suite covers more systems): states, edges, outcome, and the pool
        // are identical for 1, 2, and 8 workers.
        for dcds in [example_4_1(), example_4_2(), example_4_3()] {
            let runs: Vec<DetAbstraction> = [1usize, 2, 8]
                .into_iter()
                .map(|threads| {
                    det_abstraction_opts(
                        &dcds,
                        60,
                        AbsOptions {
                            strategy: DedupStrategy::CanonicalKey,
                            threads,
                            ..AbsOptions::default()
                        },
                    )
                })
                .collect();
            for other in &runs[1..] {
                assert_eq!(runs[0].ts, other.ts);
                assert_eq!(runs[0].states, other.states);
                assert_eq!(runs[0].outcome, other.outcome);
                assert_eq!(runs[0].pool.len(), other.pool.len());
                assert_eq!(runs[0].counters, other.counters);
            }
        }
    }

    #[test]
    fn eager_keys_ablation_gives_identical_output() {
        // The fast path only skips work, never changes the quotient.
        for dcds in [example_4_1(), example_4_2(), example_4_3()] {
            let lazy = det_abstraction(&dcds, 60);
            let eager = det_abstraction_opts(
                &dcds,
                60,
                AbsOptions {
                    eager_keys: true,
                    ..AbsOptions::default()
                },
            );
            assert_eq!(lazy.ts, eager.ts);
            assert_eq!(lazy.outcome, eager.outcome);
            // Eager canonicalises at least as often.
            assert!(eager.counters.canon_keys_computed >= lazy.counters.canon_keys_computed);
        }
    }

    /// Unary fact sets over explicit raw values, for driving the index
    /// directly.
    fn unary_facts(color: u32, values: &[usize]) -> Facts {
        let mut f = Facts::new();
        for &v in values {
            f.insert(color, dcds_reldata::Tuple::new([Value::from_index(v)]));
        }
        f
    }

    /// A perfect matching on `2n` rigid tags, each pair sharing one fresh
    /// value: facts `E(t_i, v_p)` and `E(t_j, v_p)` for every matched pair
    /// `{i, j}`. Every matching of the same `2n` tags has the same
    /// signature (the signature never relates non-rigid values across
    /// facts), distinct matchings are non-isomorphic (tags are fixed
    /// pointwise), and canonical keys are cheap (each fresh value's rigid
    /// neighbours give it a singleton refinement class).
    fn matching_facts(pairs: &[(usize, usize)], fresh_base: usize) -> Facts {
        let mut f = Facts::new();
        for (p, &(i, j)) in pairs.iter().enumerate() {
            let v = Value::from_index(fresh_base + p);
            f.insert(0, dcds_reldata::Tuple::new([Value::from_index(i), v]));
            f.insert(0, dcds_reldata::Tuple::new([Value::from_index(j), v]));
        }
        f
    }

    /// All perfect matchings of `0..2n`, in a deterministic order, up to
    /// `limit`.
    fn perfect_matchings(tags: &[usize], limit: usize, out: &mut Vec<Vec<(usize, usize)>>) {
        fn rec(
            rest: &[usize],
            acc: &mut Vec<(usize, usize)>,
            limit: usize,
            out: &mut Vec<Vec<(usize, usize)>>,
        ) {
            if out.len() >= limit {
                return;
            }
            let Some((&first, rest)) = rest.split_first() else {
                out.push(acc.clone());
                return;
            };
            for k in 0..rest.len() {
                let mut remaining: Vec<usize> = rest.to_vec();
                let partner = remaining.remove(k);
                acc.push((first, partner));
                rec(&remaining, acc, limit, out);
                acc.pop();
            }
        }
        rec(tags, &mut Vec::new(), limit, out);
    }

    #[test]
    fn empty_group_probe_counters_uniform_across_strategies() {
        // Satellite fix: an empty-signature-group probe must credit the
        // signature filter identically under both strategies — one
        // `sig_filter_skips` and one avoided check per resident class —
        // without computing any canonical key.
        let rigid = BTreeSet::new();
        let mut deltas = Vec::new();
        for strategy in [DedupStrategy::CanonicalKey, DedupStrategy::PairwiseIso] {
            let mut index = ClassIndex::new(strategy, rigid.clone());
            let mut counters = EngineCounters::default();
            for class in [unary_facts(0, &[0]), unary_facts(0, &[1, 2])] {
                let sig = class.signature(&rigid);
                let mut key = None;
                assert_eq!(index.find(&class, sig, &mut key, &mut counters), None);
                index.insert(class, sig, key);
            }
            let probe = unary_facts(1, &[3]);
            let sig = probe.signature(&rigid);
            let before = counters;
            let mut key = None;
            assert_eq!(index.find(&probe, sig, &mut key, &mut counters), None);
            assert!(key.is_none(), "empty-group probe must not compute a key");
            deltas.push((
                counters.sig_filter_skips - before.sig_filter_skips,
                counters.iso_checks_avoided - before.iso_checks_avoided,
                counters.iso_checks_performed - before.iso_checks_performed,
                counters.canon_keys_computed - before.canon_keys_computed,
            ));
        }
        assert_eq!(deltas[0], (1, 2, 0, 0));
        assert_eq!(deltas[0], deltas[1], "strategies must account identically");
    }

    #[test]
    fn keyed_index_resolves_thousands_of_same_signature_classes() {
        // The collision-heavy regression: perfect matchings of 12 tags all
        // share one signature, so the old per-group linear scan made the
        // k-th admission pay O(k) key comparisons. The exact-match map
        // must resolve every probe without a single backtracking call.
        let tags: Vec<usize> = (0..12).collect();
        let rigid: BTreeSet<Value> = tags.iter().map(|&t| Value::from_index(t)).collect();
        let mut matchings = Vec::new();
        perfect_matchings(&tags, 1500, &mut matchings);
        assert_eq!(matchings.len(), 1500);

        let mut index = ClassIndex::new(DedupStrategy::CanonicalKey, rigid.clone());
        let mut counters = EngineCounters::default();
        let sig0 = matching_facts(&matchings[0], 100).signature(&rigid);
        for m in &matchings {
            let facts = matching_facts(m, 100);
            let sig = facts.signature(&rigid);
            assert_eq!(sig, sig0, "matchings must collide on one signature");
            let mut key = None;
            assert_eq!(index.find(&facts, sig, &mut key, &mut counters), None);
            index.insert(facts, sig, key);
        }
        // Re-probe every class under a fresh-value renaming: each must hit
        // its own class, purely through the exact map.
        for (expect_ix, m) in matchings.iter().enumerate() {
            let probe = matching_facts(m, 5000 + expect_ix);
            let mut key = None;
            assert_eq!(
                index.find(&probe, sig0, &mut key, &mut counters),
                Some(expect_ix)
            );
        }
        assert_eq!(
            counters.iso_checks_performed, 0,
            "keyed classes must never reach the backtracking matcher"
        );
        // One key per admission probe (the first class is keyed lazily
        // when the second probe collides, the rest at their own probe) and
        // one per re-probe — each class's resident key computed once, ever.
        assert_eq!(
            counters.canon_keys_computed,
            2 * matchings.len() as u64,
            "every key must be computed exactly once"
        );
    }

    #[test]
    fn symmetric_classes_resolve_through_the_exact_map() {
        // Nine interchangeable fresh values defeat colour refinement — the
        // case that used to exceed the permutation budget and fall back to
        // the backtracking matcher. The branch-and-bound search collapses
        // the whole 9! orbit into a single descent, so the probe resolves
        // through the exact-match map with zero isomorphism checks.
        let rigid = BTreeSet::new();
        let mut index = ClassIndex::new(DedupStrategy::CanonicalKey, rigid.clone());
        let mut counters = EngineCounters::default();
        let a = unary_facts(0, &(100..109).collect::<Vec<_>>());
        let sig = a.signature(&rigid);
        let mut key = None;
        assert_eq!(index.find(&a, sig, &mut key, &mut counters), None);
        index.insert(a, sig, key);

        let b = unary_facts(0, &(200..209).collect::<Vec<_>>());
        assert_eq!(b.signature(&rigid), sig);
        let mut key = None;
        assert_eq!(index.find(&b, sig, &mut key, &mut counters), Some(0));
        assert!(key.is_some(), "symmetric class must key successfully");
        // Probe key + lazily keying the resident class.
        assert_eq!(counters.canon_keys_computed, 2);
        assert_eq!(counters.iso_checks_performed, 0);
        // One descent each; transposition pruning cuts the other 9!-1
        // orders with 9*8/2 = 36 cutoffs per key search.
        assert_eq!(counters.canon_orders_enumerated, 2);
        assert_eq!(counters.canon_prune_cutoffs, 72);
    }

    #[test]
    fn signature_fast_path_skips_canonicalisation() {
        // Most dedup probes in a saturating construction are fresh classes:
        // the signature bucket is empty and no canonical key is computed.
        let abs = det_abstraction(&example_4_1(), 200);
        assert!(abs.counters.sig_filter_skips > 0);
        assert!(
            abs.counters.canon_keys_computed < abs.counters.successors_generated + 1,
            "fast path never fired: {:?}",
            abs.counters
        );
        assert!(abs.counters.states_expanded >= abs.ts.num_states() as u64);
    }
}
