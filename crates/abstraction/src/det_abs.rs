//! Abstract transition system for deterministic services (Theorem 4.3).
//!
//! The concrete system is infinitely branching: at each step the new
//! service calls may return any constants. The abstraction keeps, per
//! reachable state and legal `ασ`, *one successor per equality commitment*
//! of the new calls against the state's known values, and then quotients
//! states by isomorphism of the full `⟨I, M⟩` structure (database + call
//! map) fixing the rigid constants. Theorem 4.3: for run-bounded systems
//! the result is finite and history-preserving bisimilar to the concrete
//! transition system; our tests machine-check instances of that statement
//! with the `dcds-bisim` checkers against bounded concrete prefixes.

use dcds_core::det::{det_successors_by_commitment, DetState};
use dcds_core::{Dcds, StateId, Ts};
use dcds_reldata::{CanonKey, ConstantPool};
use std::collections::{HashMap, VecDeque};

/// Whether an abstraction construction saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsOutcome {
    /// The iso-quotient BFS saturated: the abstraction is exact.
    Complete,
    /// The state limit was hit — consistent with (though not proof of)
    /// run-unboundedness.
    Truncated,
}

/// The result of the deterministic abstraction.
#[derive(Debug, Clone)]
pub struct DetAbstraction {
    /// The abstract transition system (states labeled by instances).
    pub ts: Ts,
    /// The full `⟨I, M⟩` state behind each abstract state.
    pub states: Vec<DetState>,
    /// Saturated or truncated.
    pub outcome: AbsOutcome,
    /// The constant pool extended with the representative fresh values the
    /// construction minted (needed to display the states).
    pub pool: ConstantPool,
}

/// State-deduplication strategy for the abstraction BFS — exposed so the
/// benchmark suite can ablate the design choice DESIGN.md makes (canonical
/// keys give O(1) lookup at the cost of canonicalisation per state;
/// pairwise matching avoids canonicalisation but scans the class list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupStrategy {
    /// Canonical-form keys in a hash map (the default).
    CanonicalKey,
    /// Linear scan with the backtracking isomorphism matcher.
    PairwiseIso,
}

/// Build the deterministic abstract transition system, up to `max_states`
/// isomorphism classes.
pub fn det_abstraction(dcds: &Dcds, max_states: usize) -> DetAbstraction {
    det_abstraction_with(dcds, max_states, DedupStrategy::CanonicalKey)
}

/// [`det_abstraction`] with an explicit deduplication strategy.
pub fn det_abstraction_with(
    dcds: &Dcds,
    max_states: usize,
    strategy: DedupStrategy,
) -> DetAbstraction {
    let rigid = dcds.rigid_constants();
    let num_rels = dcds.data.schema.len();
    let mut pool = dcds.data.pool.clone();

    let s0 = DetState::initial(dcds);
    let mut ts = Ts::new(s0.instance.clone());
    let mut states = vec![s0.clone()];
    let mut index: HashMap<CanonKey, StateId> = HashMap::new();
    let mut class_facts: Vec<dcds_reldata::Facts> = vec![s0.to_facts(num_rels)];
    if strategy == DedupStrategy::CanonicalKey {
        index.insert(class_facts[0].canonical_key(&rigid), ts.initial());
    }
    let mut queue: VecDeque<StateId> = VecDeque::new();
    queue.push_back(ts.initial());
    let mut outcome = AbsOutcome::Complete;

    while let Some(sid) = queue.pop_front() {
        let state = states[sid.index()].clone();
        for (_action, _sigma, _commitment, next) in
            det_successors_by_commitment(dcds, &state, &mut pool)
        {
            let facts = next.to_facts(num_rels);
            let existing = match strategy {
                DedupStrategy::CanonicalKey => {
                    index.get(&facts.canonical_key(&rigid)).copied()
                }
                DedupStrategy::PairwiseIso => (0..class_facts.len())
                    .find(|&ix| class_facts[ix].isomorphic(&facts, &rigid))
                    .map(StateId::from_index),
            };
            let next_id = match existing {
                Some(id) => id,
                None => {
                    if ts.num_states() >= max_states {
                        outcome = AbsOutcome::Truncated;
                        continue;
                    }
                    let id = ts.add_state(next.instance.clone());
                    states.push(next.clone());
                    if strategy == DedupStrategy::CanonicalKey {
                        index.insert(facts.canonical_key(&rigid), id);
                    }
                    class_facts.push(facts);
                    queue.push_back(id);
                    id
                }
            };
            ts.add_edge(sid, next_id);
        }
    }
    DetAbstraction {
        ts,
        states,
        outcome,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    fn example_4_1() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_4_2() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .constraint("P(X) & Q(Y, Z) -> X = Y")
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_4_3() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn dedup_strategies_agree() {
        for dcds in [example_4_1(), example_4_2()] {
            let a = det_abstraction_with(&dcds, 200, DedupStrategy::CanonicalKey);
            let b = det_abstraction_with(&dcds, 200, DedupStrategy::PairwiseIso);
            assert_eq!(a.ts.num_states(), b.ts.num_states());
            assert_eq!(a.ts.num_edges(), b.ts.num_edges());
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn example_4_1_saturates_finite() {
        // Figure 3b: the abstraction of the weakly acyclic Example 4.1 is
        // finite. Initial state + 5 commitment successors (some of which
        // merge deeper), each looping once calls are recorded.
        let abs = det_abstraction(&example_4_1(), 200);
        assert_eq!(abs.outcome, AbsOutcome::Complete);
        // 1 initial + 5 first-level iso classes + their (deterministic)
        // successors which fold back into finitely many classes.
        assert!(abs.ts.num_states() >= 6);
        assert!(abs.ts.num_states() <= 20, "got {}", abs.ts.num_states());
    }

    #[test]
    fn example_4_2_constraint_prunes() {
        // Figure 2b: the equality constraint forces f(a) = a; only g(a)
        // branches (known or fresh): strictly fewer states than Example 4.1.
        let abs1 = det_abstraction(&example_4_1(), 200);
        let abs2 = det_abstraction(&example_4_2(), 200);
        assert_eq!(abs2.outcome, AbsOutcome::Complete);
        assert!(abs2.ts.num_states() < abs1.ts.num_states());
        // Initial state has exactly 2 successors in Figure 2b.
        assert_eq!(abs2.ts.successors(abs2.ts.initial()).len(), 2);
    }

    #[test]
    fn example_4_3_truncates() {
        // Figure 4: run-unbounded — the call map keeps growing, no finite
        // quotient exists (Theorem 4.5's discussion); construction truncates.
        let abs = det_abstraction(&example_4_3(), 60);
        assert_eq!(abs.outcome, AbsOutcome::Truncated);
        assert_eq!(abs.ts.num_states(), 60);
    }

    #[test]
    fn abstraction_states_satisfy_constraints() {
        let dcds = example_4_2();
        let abs = det_abstraction(&dcds, 200);
        for s in abs.ts.state_ids() {
            assert!(dcds.data.satisfies_constraints(abs.ts.db(s)));
        }
    }

    #[test]
    fn deterministic_closure_no_new_calls_loop() {
        // Once every issued call is recorded, states self-loop (Figure 3b's
        // bottom row): every non-initial state has at least one successor.
        let abs = det_abstraction(&example_4_1(), 200);
        for s in abs.ts.state_ids() {
            assert!(
                !abs.ts.successors(s).is_empty(),
                "state {s:?} has no successors"
            );
        }
    }
}
