//! Arena-backed variants of the state-space engines.
//!
//! [`det_abstraction_compact`] and [`rcycl_compact`] build the same
//! abstract transition systems as [`crate::det_abs::det_abstraction`] and
//! [`crate::rcycl::rcycl`] — same states in the same order, same edges,
//! same pool, same counters, at every thread count — but store states in a
//! [`StateStore`]: each state is a delta over its parent, every fact
//! payload is interned once, and per-state memory is proportional to the
//! *change* a transition made rather than the instance. That is what takes
//! the engines from the legacy path's ~10⁴-state comfort zone to
//! million-state budgets with flat per-state memory (see
//! `BENCH_scale.json`).
//!
//! Two further compact-path mechanics:
//!
//! * **Copy-on-write indexes.** A successor's [`InstanceIndex`] is derived
//!   from its parent's via [`InstanceIndex::rebuild_delta`]: untouched
//!   relations share the parent's path groups behind an `Arc`, only the
//!   relations the transition touched are rebuilt — O(|touched|) instead
//!   of O(|instance|). Probe results are bit-identical to a from-scratch
//!   build, so query evaluation is unchanged.
//! * **Store-handle dedup.** The class index keeps [`StateRef`] handles
//!   instead of owned [`Facts`]; the facts of a resident class are
//!   materialised from the store only when a signature bucket collides
//!   (the rare path). The dedup decisions and counter increments replay
//!   the legacy engine's exactly.
//!
//! The legacy owned-`Instance` engines remain the **differential oracle**:
//! the test suite asserts `compact.to_ts() == legacy.ts` (plus outcome,
//! pool, and counters) across workloads and thread counts.

use crate::det_abs::{
    credit_canon, publish_canon, AbsOptions, AbsOutcome, DedupStrategy, SigGroup, SteppedChild,
};
use dcds_core::det::{det_step_with_pre, DetState};
use dcds_core::do_op::{
    do_action_indexed, legal_assignments_indexed, publish_query_stats_delta, query_stats_snapshot,
    state_index, PreInstance,
};
use dcds_core::nondet::{evals_over, nondet_step_with_pre};
use dcds_core::par::{configured_threads, par_map_obs, EngineCounters};
use dcds_core::{
    enumerate_commitments, ActionId, CommitTarget, Commitment, CompactTs, Dcds, StateId,
};
use dcds_folang::Assignment;
use dcds_obs::{event, span, Obs};
use dcds_reldata::{
    CanonKey, ConstantPool, Facts, InstanceIndex, RelId, SigCensus, StateRef, StateStore, Value,
};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// Publish the store's high-water marks. Called from serial phases only,
/// so the gauges are bit-identical at every thread count.
fn publish_store_gauges(obs: &Obs, store: &StateStore) {
    let stats = store.stats();
    obs.gauge_max("store.bytes", stats.bytes as i64);
    obs.gauge_max("store.facts_interned", stats.facts_interned as i64);
    obs.gauge_max("store.delta_states", stats.delta_states as i64);
}

/// Result of the compact deterministic abstraction. Compared to
/// [`crate::det_abs::DetAbstraction`] there is no `states: Vec<DetState>`
/// — retaining every ⟨I, M⟩ state as an owned structure is exactly what
/// the compact path exists to avoid. The full fact encoding of any state
/// is still available through [`CompactTs::store`].
#[derive(Debug)]
pub struct CompactDetAbstraction {
    /// The abstract transition system, states in the store.
    pub ts: CompactTs,
    /// Saturated or truncated.
    pub outcome: AbsOutcome,
    /// The constant pool extended with minted representatives.
    pub pool: ConstantPool,
    /// Engine counters — bit-identical to the legacy engine's.
    pub counters: EngineCounters,
}

/// Keyed class index over store handles. The mirror of the legacy
/// `ClassIndex` with `Facts` payloads replaced by [`StateRef`]s: keyed
/// classes resolve with one probe of the global `exact` map — the pruned
/// key search succeeds on every input, so no probe ever reaches a
/// backtracking matcher — and the facts of a resident class are
/// materialised from the store only when a lazy key is computed (at most
/// once per class, ever). Every counter increment and every dedup
/// decision replays the legacy logic exactly (the differential tests
/// assert `counters` equality).
struct StoreClassIndex {
    strategy: DedupStrategy,
    rigid: BTreeSet<Value>,
    /// Per class: the store handle of its representative state.
    refs: Vec<StateRef>,
    /// Canonical key → class, global across signatures.
    exact: HashMap<CanonKey, usize>,
    /// Signature → its classes, grouped by key status.
    groups: HashMap<u64, SigGroup>,
}

impl StoreClassIndex {
    fn new(strategy: DedupStrategy, rigid: BTreeSet<Value>) -> Self {
        StoreClassIndex {
            strategy,
            rigid,
            refs: Vec::new(),
            exact: HashMap::new(),
            groups: HashMap::new(),
        }
    }

    fn bucket_occupied(&self, sig: u64) -> bool {
        self.groups.get(&sig).is_some_and(|g| !g.members.is_empty())
    }

    fn find(
        &mut self,
        store: &StateStore,
        facts: &Facts,
        sig: u64,
        probe_key: &mut Option<CanonKey>,
        counters: &mut EngineCounters,
    ) -> Option<usize> {
        let StoreClassIndex {
            strategy,
            rigid,
            refs,
            exact,
            groups,
        } = self;
        let total = refs.len() as u64;
        let Some(group) = groups.get_mut(&sig).filter(|g| !g.members.is_empty()) else {
            counters.sig_filter_skips += 1;
            counters.iso_checks_avoided += total;
            return None;
        };
        counters.iso_checks_avoided += total - group.members.len() as u64;
        if *strategy == DedupStrategy::PairwiseIso {
            for &ix in &group.members {
                counters.iso_checks_performed += 1;
                if store.facts(refs[ix]).isomorphic(facts, rigid) {
                    return Some(ix);
                }
            }
            return None;
        }
        // CanonicalKey strategy: materialise the probe's key on first need.
        if probe_key.is_none() {
            let (k, stats) = facts.canonical_key_stats(rigid);
            credit_canon(counters, stats);
            *probe_key = Some(k);
        }
        let pk = probe_key.as_ref().unwrap();
        // Key every unkeyed resident — materialising its facts from the
        // store exactly once over the whole construction.
        for ix in std::mem::take(&mut group.unkeyed) {
            let (ck, stats) = store.facts(refs[ix]).canonical_key_stats(rigid);
            credit_canon(counters, stats);
            exact.insert(ck, ix);
            group.keyed += 1;
        }
        counters.iso_checks_avoided += group.keyed;
        exact.get(pk).copied()
    }

    fn insert(&mut self, state: StateRef, sig: u64, probe_key: Option<CanonKey>) {
        let ix = self.refs.len();
        self.refs.push(state);
        let group = self.groups.entry(sig).or_default();
        group.members.push(ix);
        match probe_key {
            Some(k) => {
                self.exact.insert(k, ix);
                group.keyed += 1;
            }
            None => group.unkeyed.push(ix),
        }
    }
}

/// A frontier state of the compact BFS: its id, its transient ⟨I, M⟩
/// structure (dropped when the level completes), and its copy-on-write
/// query index (shared with its children until they are expanded).
struct FrontierState {
    id: StateId,
    state: DetState,
    index: Arc<InstanceIndex>,
}

type EnumeratedStep = (ActionId, Assignment, PreInstance, Vec<Commitment>);

struct StepTask<'a> {
    frontier_ix: usize,
    source: StateId,
    pre: &'a PreInstance,
    choice: std::collections::BTreeMap<dcds_core::ServiceCall, Value>,
}

struct StepResult {
    source: StateId,
    frontier_ix: usize,
    /// `None` when the commitment representative violates the constraints.
    /// An eagerly-computed key carries its search stats so the serial merge
    /// can account for the worker's effort deterministically.
    next: Option<SteppedChild>,
}

/// A state admitted during the merge phase, awaiting its COW index.
struct PendingChild {
    id: StateId,
    state: DetState,
    /// Index into the *current* frontier of the parent it stepped from.
    parent_ix: usize,
    /// Relations its delta touched; `None` = stored as a root (rebuild
    /// everything).
    touched: Option<Vec<RelId>>,
}

/// [`crate::det_abs::det_abstraction`] over the compact state store.
pub fn det_abstraction_compact(dcds: &Dcds, max_states: usize) -> CompactDetAbstraction {
    det_abstraction_compact_opts(dcds, max_states, AbsOptions::default())
}

/// [`det_abstraction_compact`] with explicit options.
pub fn det_abstraction_compact_opts(
    dcds: &Dcds,
    max_states: usize,
    opts: AbsOptions,
) -> CompactDetAbstraction {
    det_abstraction_compact_traced(dcds, max_states, opts, &Obs::disabled())
}

/// [`det_abstraction_compact_opts`] with an observability handle. Adds
/// the `store.*` gauge family on top of the legacy engine's metrics; the
/// phase structure (and therefore the output) mirrors
/// [`crate::det_abs::det_abstraction_traced`] exactly, with one extra
/// parallel phase per level that derives the new frontier's COW indexes
/// while the parent indexes are still alive.
pub fn det_abstraction_compact_traced(
    dcds: &Dcds,
    max_states: usize,
    opts: AbsOptions,
    obs: &Obs,
) -> CompactDetAbstraction {
    let _run = span!(
        obs,
        "det_abstraction_compact",
        threads = opts.threads,
        max_states = max_states
    );
    let query_stats0 = query_stats_snapshot(dcds);
    let rigid = dcds.rigid_constants();
    let num_rels = dcds.data.schema.len();
    let threads = opts.threads.max(1);
    let level_chunk = opts.level_chunk.max(1);
    let mut pool = dcds.working_pool();
    let mut counters = EngineCounters::default();
    let paths = dcds.plans().access_paths();

    let mut store = StateStore::new();
    let s0 = DetState::initial(dcds);
    let f0 = s0.to_facts(num_rels);
    let r0 = store.insert(None, &f0).state;
    let mut refs: Vec<StateRef> = vec![r0];
    let mut succ: Vec<Vec<StateId>> = vec![Vec::new()];

    let mut index = StoreClassIndex::new(opts.strategy, rigid.clone());
    let sig0 = f0.signature(&rigid);
    let key0 = if opts.strategy == DedupStrategy::CanonicalKey {
        let (k, stats) = f0.canonical_key_stats(&rigid);
        credit_canon(&mut counters, stats);
        Some(k)
    } else {
        None
    };
    index.insert(r0, sig0, key0);

    let idx0 = Arc::new(state_index(dcds, &s0.instance));
    let mut frontier: Vec<FrontierState> = vec![FrontierState {
        id: StateId::from_index(0),
        state: s0,
        index: idx0,
    }];
    let mut outcome = AbsOutcome::Complete;
    let mut level = 0usize;

    while !frontier.is_empty() {
        counters.states_expanded += frontier.len() as u64;
        let mut level_span = span!(
            obs,
            "frontier_level",
            level = level,
            frontier = frontier.len()
        );
        obs.histogram("abs.frontier_states", frontier.len() as u64);
        obs.gauge_max("abs.max_frontier", frontier.len() as i64);
        obs.heartbeat(|| {
            format!(
                "abstraction level {level}: frontier {}, {} classes total",
                frontier.len(),
                refs.len()
            )
        });

        // Wide levels are processed in fixed-size frontier chunks so the
        // per-level scratch (pre-instances, stepped successors) stays
        // bounded instead of materialising millions of instances at once
        // — at large budgets that allocation churn, not dedup, is what
        // collapses throughput. Chunking preserves global task order
        // (mint order, dedup decisions, counters) exactly: every serial
        // decision still happens in frontier/task order, so the output
        // is bit-identical to the unchunked legacy engine.
        let mut next_frontier: Vec<FrontierState> = Vec::new();
        let mut new_classes = 0u64;
        let mut dedup_hits = 0u64;
        let mut edges_added = 0u64;
        for chunk in frontier.chunks(level_chunk) {
            // Phase 1 (parallel): legal assignments, pre-instances, and
            // commitments per frontier state — probing the state's COW index.
            let enumerated: Vec<Vec<EnumeratedStep>> =
                par_map_obs(chunk, threads, obs, "enumerate", |entry| {
                    let state = &entry.state;
                    legal_assignments_indexed(dcds, &state.instance, Some(&entry.index))
                        .into_iter()
                        .map(|(action, sigma)| {
                            let pre = do_action_indexed(
                                dcds,
                                &state.instance,
                                action,
                                &sigma,
                                Some(&entry.index),
                            );
                            let new_calls: Vec<dcds_core::ServiceCall> = pre
                                .calls()
                                .into_iter()
                                .filter(|c| !state.call_map.contains_key(c))
                                .collect();
                            let mut known: BTreeSet<Value> = state.known_values();
                            known.extend(rigid.iter().copied());
                            let known: Vec<Value> = known.into_iter().collect();
                            let commitments = enumerate_commitments(&new_calls, &known);
                            (action, sigma, pre, commitments)
                        })
                        .collect()
                });

            // Census (parallel): each chunk state's value-occurrence
            // census, so every successor's signature derives from a fact
            // diff instead of a from-scratch pass.
            let censuses: Vec<SigCensus> = par_map_obs(chunk, threads, obs, "census", |entry| {
                let f = entry.state.to_facts(num_rels);
                SigCensus::new(f.iter(), &rigid)
            });

            // Phase 2 (serial, frontier order): mint fresh cells.
            let mut tasks: Vec<StepTask> = Vec::new();
            for (frontier_ix, (entry, per_state)) in chunk.iter().zip(&enumerated).enumerate() {
                for (_action, _sigma, pre, commitments) in per_state {
                    for commitment in commitments {
                        let cells = dcds_core::commitment::fresh_cell_count(commitment);
                        let fresh: Vec<Value> = (0..cells).map(|_| pool.mint("v")).collect();
                        let choice = commitment
                            .iter()
                            .map(|(c, t)| {
                                let v = match t {
                                    CommitTarget::Known(v) => *v,
                                    CommitTarget::Fresh(cell) => fresh[*cell],
                                };
                                (c.clone(), v)
                            })
                            .collect();
                        tasks.push(StepTask {
                            frontier_ix,
                            source: entry.id,
                            pre,
                            choice,
                        });
                    }
                }
            }

            // Phase 3 (parallel): step, encode, sign, eager-key on bucket hit.
            let step_timer = obs.timer();
            let stepped: Vec<StepResult> = par_map_obs(&tasks, threads, obs, "step", |task| {
                let state = &chunk[task.frontier_ix].state;
                let next = det_step_with_pre(dcds, state, task.pre, &task.choice).map(|next| {
                    let facts = next.to_facts(num_rels);
                    let sig =
                        censuses[task.frontier_ix].child_signature(|| facts.iter(), facts.len());
                    let key = if opts.strategy == DedupStrategy::CanonicalKey
                        && (opts.eager_keys || index.bucket_occupied(sig))
                    {
                        Some(facts.canonical_key_stats(&rigid))
                    } else {
                        None
                    };
                    (next, facts, sig, key)
                });
                StepResult {
                    source: task.source,
                    frontier_ix: task.frontier_ix,
                    next,
                }
            });
            drop(tasks);
            obs.time_us("abs.step_phase_us", step_timer);

            // Phase 4 (serial, task order): dedup against the class index,
            // insert survivors into the store as deltas over their parent.
            let merge_timer = obs.timer();
            let mut pending: Vec<PendingChild> = Vec::new();
            // Children of one parent arrive consecutively: resolve the
            // parent's fact ids once and reuse them for the whole group.
            let mut resolved_parent: Option<(StateId, Vec<dcds_reldata::FactId>)> = None;
            for result in stepped {
                let Some((next, facts, sig, key)) = result.next else {
                    continue;
                };
                counters.successors_generated += 1;
                // Worker canonicalised eagerly; account for it exactly once.
                if let Some((_, stats)) = &key {
                    credit_canon(&mut counters, *stats);
                }
                let mut key: Option<CanonKey> = key.map(|(k, _)| k);
                let found = index.find(&store, &facts, sig, &mut key, &mut counters);
                let next_id = match found {
                    Some(class_ix) => {
                        dedup_hits += 1;
                        StateId::from_index(class_ix)
                    }
                    None => {
                        if refs.len() >= max_states {
                            outcome = AbsOutcome::Truncated;
                            continue;
                        }
                        let parent_ref = refs[result.source.index()];
                        if resolved_parent.as_ref().map(|(s, _)| *s) != Some(result.source) {
                            resolved_parent = Some((result.source, store.resolve(parent_ref)));
                        }
                        let parent_ids = &resolved_parent.as_ref().unwrap().1;
                        let ins = store.insert_child(parent_ref, parent_ids, &facts);
                        debug_assert!(!ins.existing, "new iso class duplicates a stored state");
                        let id = StateId::from_index(refs.len());
                        debug_assert_eq!(ins.state.index(), id.index());
                        refs.push(ins.state);
                        succ.push(Vec::new());
                        index.insert(ins.state, sig, key);
                        let touched = store.delta_rels(ins.state, num_rels as u32);
                        pending.push(PendingChild {
                            id,
                            state: next,
                            parent_ix: result.frontier_ix,
                            touched,
                        });
                        id
                    }
                };
                let out = &mut succ[result.source.index()];
                if !out.contains(&next_id) {
                    out.push(next_id);
                    edges_added += 1;
                }
            }
            obs.time_us("abs.merge_phase_us", merge_timer);
            new_classes += pending.len() as u64;

            // Phase 5 (parallel): derive the new frontier's COW indexes while
            // the parent indexes are still alive.
            next_frontier.extend(par_map_obs(&pending, threads, obs, "index", |child| {
                let idx = match &child.touched {
                    Some(touched) => InstanceIndex::rebuild_delta(
                        &chunk[child.parent_ix].index,
                        &child.state.instance,
                        touched,
                        paths.iter().cloned(),
                    ),
                    None => state_index(dcds, &child.state.instance),
                };
                FrontierState {
                    id: child.id,
                    state: child.state.clone(),
                    index: Arc::new(idx),
                }
            }));
        }
        publish_store_gauges(obs, &store);
        level_span.set("new_classes", new_classes);
        event!(
            obs,
            "level",
            engine = "det_abstraction_compact",
            level = level,
            frontier = frontier.len(),
            new_classes = new_classes,
            states = refs.len(),
            edges = edges_added,
            dedup_hits = dedup_hits,
            store_bytes = store.stats().bytes,
        );
        frontier = next_frontier;
        level += 1;
    }

    obs.counter_add("abs.levels", level as u64);
    counters.publish(obs, "abs");
    publish_canon(obs, &counters);
    publish_store_gauges(obs, &store);
    publish_query_stats_delta(dcds, obs, &query_stats0);
    obs.progress_flush(|| {
        format!(
            "abstraction done: {} classes, {} levels ({outcome:?})",
            refs.len(),
            level
        )
    });

    CompactDetAbstraction {
        ts: CompactTs::from_parts(store, refs, succ, num_rels as u32),
        outcome,
        pool,
        counters,
    }
}

/// Result of the compact RCYCL pruning; mirrors
/// [`crate::rcycl::RcyclResult`] with the states held in the store.
#[derive(Debug)]
pub struct CompactRcycl {
    /// The pruning, states in the store.
    pub ts: CompactTs,
    /// Did the algorithm saturate (true) or hit `max_states` (false)?
    pub complete: bool,
    /// All values ever used (the final `UsedValues`).
    pub used_values: BTreeSet<Value>,
    /// Number of `(I, α, σ)` triples processed.
    pub triples_processed: usize,
    /// The constant pool extended with minted fresh values.
    pub pool: ConstantPool,
    /// Engine counters — bit-identical to the legacy engine's.
    pub counters: EngineCounters,
}

/// [`crate::rcycl::rcycl`] over the compact state store.
pub fn rcycl_compact(dcds: &Dcds, max_states: usize) -> CompactRcycl {
    rcycl_compact_opts(dcds, max_states, configured_threads())
}

/// [`rcycl_compact`] with an explicit worker-thread count.
pub fn rcycl_compact_opts(dcds: &Dcds, max_states: usize, threads: usize) -> CompactRcycl {
    rcycl_compact_traced(dcds, max_states, threads, &Obs::disabled())
}

/// [`rcycl_compact_opts`] with an observability handle. The worklist
/// carries each queued state's COW index (derived from its parent's at
/// enqueue time), so expanding a state never rebuilds untouched
/// relations' path groups.
pub fn rcycl_compact_traced(
    dcds: &Dcds,
    max_states: usize,
    threads: usize,
    obs: &Obs,
) -> CompactRcycl {
    const MAX_EVALS_PER_STEP: f64 = 20_000.0;
    let _run = span!(
        obs,
        "rcycl_compact",
        threads = threads,
        max_states = max_states
    );
    let query_stats0 = query_stats_snapshot(dcds);
    let rigid = dcds.rigid_constants();
    let num_rels = dcds.data.schema.len() as u32;
    let threads = threads.max(1);
    let mut pool = dcds.working_pool();
    let mut counters = EngineCounters::default();
    let paths = dcds.plans().access_paths();

    let mut store = StateStore::new();
    let r0 = store
        .insert(None, &Facts::from_instance(&dcds.data.initial))
        .state;
    let mut refs: Vec<StateRef> = vec![r0];
    let mut succ: Vec<Vec<StateId>> = vec![Vec::new()];
    let mut used_values: BTreeSet<Value> = dcds.data.initial.active_domain();
    used_values.extend(rigid.iter().copied());

    let idx0 = Arc::new(state_index(dcds, &dcds.data.initial));
    let mut queue: VecDeque<(StateId, Arc<InstanceIndex>)> = VecDeque::new();
    queue.push_back((StateId::from_index(0), idx0));
    let mut visited_states: BTreeSet<StateId> = BTreeSet::new();
    let mut complete = true;
    let mut triples = 0usize;

    while let Some((sid, state_idx)) = queue.pop_front() {
        if !visited_states.insert(sid) {
            continue;
        }
        counters.states_expanded += 1;
        if counters.states_expanded % 1024 == 0 {
            event!(
                obs,
                "progress",
                engine = "rcycl_compact",
                expanded = counters.states_expanded,
                states = refs.len(),
                queued = queue.len(),
                triples = triples,
                store_bytes = store.stats().bytes,
            );
        }
        let mut state_span = span!(obs, "rcycl_state", queue = queue.len());
        obs.heartbeat(|| {
            format!(
                "rcycl: {} states, {} queued, {} triples processed",
                refs.len(),
                queue.len(),
                triples
            )
        });
        let inst = store.instance(refs[sid.index()], num_rels);
        let parent_ref = refs[sid.index()];
        let parent_ids = store.resolve(parent_ref);
        let triples_for_state = legal_assignments_indexed(dcds, &inst, Some(&state_idx));
        let pres: Vec<PreInstance> =
            par_map_obs(&triples_for_state, threads, obs, "do", |(action, sigma)| {
                do_action_indexed(dcds, &inst, *action, sigma, Some(&state_idx))
            });
        state_span.set("triples", pres.len() as u64);
        for pre in &pres {
            triples += 1;
            let calls = pre.calls();
            let n = calls.len();
            let mut recyclable: Vec<Value> = used_values
                .iter()
                .copied()
                .filter(|v| !rigid.contains(v) && !inst.active_domain().contains(v))
                .collect();
            recyclable.sort_unstable();
            let v_set: Vec<Value> = if recyclable.len() >= n {
                recyclable.into_iter().take(n).collect()
            } else {
                (0..n).map(|_| pool.mint("v")).collect()
            };
            let mut f_set: BTreeSet<Value> = inst.active_domain();
            f_set.extend(rigid.iter().copied());
            f_set.extend(v_set.iter().copied());
            if (f_set.len() as f64).powi(n as i32) > MAX_EVALS_PER_STEP {
                complete = false;
                obs.counter_add("rcycl.eval_budget_skips", 1);
                continue;
            }
            let thetas = evals_over(&calls, &f_set);
            obs.histogram("rcycl.theta_fanout", thetas.len() as u64);
            let nexts: Vec<Option<dcds_reldata::Instance>> =
                par_map_obs(&thetas, threads, obs, "theta", |theta| {
                    nondet_step_with_pre(dcds, pre, theta)
                });
            for next in nexts.into_iter().flatten() {
                counters.successors_generated += 1;
                let facts = Facts::from_instance(&next);
                // Look up before inserting: an over-budget successor must
                // leave no trace in the (append-only) store, or its
                // dedup entry would later alias a never-allocated id.
                let next_id = match store.find(&facts) {
                    Some(existing) => StateId::from_index(existing.index()),
                    None => {
                        if refs.len() >= max_states {
                            complete = false;
                            continue;
                        }
                        let ins = store.insert_child(parent_ref, &parent_ids, &facts);
                        debug_assert!(!ins.existing);
                        let id = StateId::from_index(refs.len());
                        debug_assert_eq!(ins.state.index(), id.index());
                        refs.push(ins.state);
                        succ.push(Vec::new());
                        let touched = store.delta_rels(ins.state, num_rels);
                        let child_idx = match touched {
                            Some(t) => InstanceIndex::rebuild_delta(
                                &state_idx,
                                &next,
                                &t,
                                paths.iter().cloned(),
                            ),
                            None => state_index(dcds, &next),
                        };
                        queue.push_back((id, Arc::new(child_idx)));
                        id
                    }
                };
                used_values.extend(next.active_domain());
                let out = &mut succ[sid.index()];
                if !out.contains(&next_id) {
                    out.push(next_id);
                }
            }
        }
        publish_store_gauges(obs, &store);
    }

    obs.counter_add("rcycl.triples_processed", triples as u64);
    obs.gauge_max("rcycl.used_values", used_values.len() as i64);
    counters.publish(obs, "rcycl");
    publish_store_gauges(obs, &store);
    publish_query_stats_delta(dcds, obs, &query_stats0);
    event!(
        obs,
        "progress",
        engine = "rcycl_compact",
        expanded = counters.states_expanded,
        states = refs.len(),
        queued = 0u64,
        triples = triples,
        store_bytes = store.stats().bytes,
    );
    obs.progress_flush(|| {
        format!(
            "rcycl done: {} states, {triples} triples (complete: {complete})",
            refs.len()
        )
    });

    CompactRcycl {
        ts: CompactTs::from_parts(store, refs, succ, num_rels),
        complete,
        used_values,
        triples_processed: triples,
        pool,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_abs::{det_abstraction_opts, DedupStrategy};
    use crate::rcycl::rcycl_opts;
    use dcds_core::{DcdsBuilder, ServiceKind};

    fn example_4_1() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_4_3() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_5_1() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_5_2() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(X)");
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "Q(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn det_compact_matches_legacy_at_every_thread_count() {
        for dcds in [example_4_1(), example_4_3()] {
            for strategy in [DedupStrategy::CanonicalKey, DedupStrategy::PairwiseIso] {
                for threads in [1usize, 2, 4, 8] {
                    let opts = AbsOptions {
                        strategy,
                        threads,
                        ..AbsOptions::default()
                    };
                    let legacy = det_abstraction_opts(&dcds, 60, opts);
                    let compact = det_abstraction_compact_opts(&dcds, 60, opts);
                    assert_eq!(compact.ts.to_ts(), legacy.ts, "{strategy:?} t={threads}");
                    assert_eq!(compact.outcome, legacy.outcome);
                    assert_eq!(compact.pool.len(), legacy.pool.len());
                    assert_eq!(compact.counters, legacy.counters);
                }
            }
        }
    }

    #[test]
    fn rcycl_compact_matches_legacy_at_every_thread_count() {
        for (dcds, budget) in [(example_5_1(), 100usize), (example_5_2(), 80)] {
            for threads in [1usize, 2, 4, 8] {
                let legacy = rcycl_opts(&dcds, budget, threads);
                let compact = rcycl_compact_opts(&dcds, budget, threads);
                assert_eq!(compact.ts.to_ts(), legacy.ts, "t={threads}");
                assert_eq!(compact.complete, legacy.complete);
                assert_eq!(compact.used_values, legacy.used_values);
                assert_eq!(compact.triples_processed, legacy.triples_processed);
                assert_eq!(compact.pool.len(), legacy.pool.len());
                assert_eq!(compact.counters, legacy.counters);
            }
        }
    }

    #[test]
    fn store_index_resolves_same_signature_collisions_exactly() {
        // Mirror of the legacy `ClassIndex` collision regression: perfect
        // matchings of 10 rigid tags all share one signature; the
        // store-backed index must resolve every probe through the exact
        // map without materialising facts for a backtracking call.
        fn matching_facts(pairs: &[(usize, usize)], fresh_base: usize) -> Facts {
            let mut f = Facts::new();
            for (p, &(i, j)) in pairs.iter().enumerate() {
                let v = Value::from_index(fresh_base + p);
                f.insert(0, dcds_reldata::Tuple::new([Value::from_index(i), v]));
                f.insert(0, dcds_reldata::Tuple::new([Value::from_index(j), v]));
            }
            f
        }
        fn matchings(
            rest: &[usize],
            acc: &mut Vec<(usize, usize)>,
            out: &mut Vec<Vec<(usize, usize)>>,
        ) {
            let Some((&first, rest)) = rest.split_first() else {
                out.push(acc.clone());
                return;
            };
            for k in 0..rest.len() {
                let mut remaining: Vec<usize> = rest.to_vec();
                let partner = remaining.remove(k);
                acc.push((first, partner));
                matchings(&remaining, acc, out);
                acc.pop();
            }
        }
        let tags: Vec<usize> = (0..10).collect();
        let rigid: BTreeSet<Value> = tags.iter().map(|&t| Value::from_index(t)).collect();
        let mut all = Vec::new();
        matchings(&tags, &mut Vec::new(), &mut all);
        assert_eq!(all.len(), 945); // (2·5 − 1)!! pairings of 10 tags

        let mut store = StateStore::new();
        let mut index = StoreClassIndex::new(DedupStrategy::CanonicalKey, rigid.clone());
        let mut counters = EngineCounters::default();
        let sig0 = matching_facts(&all[0], 100).signature(&rigid);
        for m in &all {
            let facts = matching_facts(m, 100);
            let sig = facts.signature(&rigid);
            assert_eq!(sig, sig0);
            let mut key = None;
            assert_eq!(
                index.find(&store, &facts, sig, &mut key, &mut counters),
                None
            );
            let r = store.insert(None, &facts).state;
            index.insert(r, sig, key);
        }
        for (expect_ix, m) in all.iter().enumerate() {
            let probe = matching_facts(m, 5000 + expect_ix);
            let mut key = None;
            assert_eq!(
                index.find(&store, &probe, sig0, &mut key, &mut counters),
                Some(expect_ix)
            );
        }
        assert_eq!(counters.iso_checks_performed, 0);
        assert_eq!(counters.canon_keys_computed, 2 * all.len() as u64);
    }

    #[test]
    fn compact_store_saves_fact_slots() {
        // The truncating Example 4.3 run: successors extend their parent,
        // so almost every state is a delta and the delta-share is high.
        let compact = det_abstraction_compact(&example_4_3(), 60);
        let stats = compact.ts.store_stats();
        assert_eq!(stats.states(), 60);
        assert!(stats.delta_states > 40, "stats: {stats:?}");
        assert!(stats.delta_share() > 0.3, "stats: {stats:?}");
        assert!(stats.bytes > 0);
    }
}
