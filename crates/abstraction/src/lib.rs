//! # dcds-abstraction
//!
//! Finite faithful abstractions of DCDS transition systems — the
//! constructive core of the paper's decidability results:
//!
//! * [`det_abs`] — the abstract transition system for **deterministic**
//!   services (Theorem 4.3): states are `⟨I, M⟩` pairs quotiented by
//!   isomorphism (rigid on `ADOM(I₀)` and specification constants),
//!   successors are one representative per equality commitment. For
//!   run-bounded systems the construction saturates into a finite system
//!   history-preserving bisimilar to the concrete one (Figures 2b, 3b); for
//!   run-unbounded systems it provably cannot saturate (Figure 4b) and
//!   reports truncation.
//! * [`mod@rcycl`] — **Algorithm RCYCL** (Appendix C.3) for
//!   **nondeterministic** services: builds an *eventually recycling
//!   pruning* by preferring recycled values (`UsedValues` bookkeeping) over
//!   fresh ones; terminates for state-bounded systems (Theorem 5.4),
//!   yielding a finite system persistence-preserving bisimilar to the
//!   concrete one (Figure 7b).
//! * [`pruning`] — validation that a finite system really is a pruning:
//!   per-state coverage of every satisfiable equality commitment.
//! * [`bounds`] — empirical run-/state-boundedness monitors (the semantic
//!   properties are undecidable — Theorems 4.6, 5.5 — so these measure
//!   witnesses up to exploration limits).

pub mod bounds;
pub mod compact;
pub mod det_abs;
pub mod pruning;
pub mod rcycl;

pub use bounds::{
    observe_run_bound, observe_state_bound, observe_state_bound_compact, BoundObservation,
};
pub use compact::{
    det_abstraction_compact, det_abstraction_compact_opts, det_abstraction_compact_traced,
    rcycl_compact, rcycl_compact_opts, rcycl_compact_traced, CompactDetAbstraction, CompactRcycl,
};
pub use det_abs::{
    det_abstraction, det_abstraction_opts, det_abstraction_traced, det_abstraction_with,
    AbsOptions, AbsOutcome, DedupStrategy, DetAbstraction, DEFAULT_LEVEL_CHUNK,
};
pub use pruning::{
    commitment_coverage_holds, commitment_coverage_holds_compact,
    commitment_coverage_holds_compact_traced, commitment_coverage_holds_traced,
};
pub use rcycl::{rcycl, rcycl_opts, rcycl_traced, RcyclResult};
