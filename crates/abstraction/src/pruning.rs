//! Pruning validation (Appendix C.3).
//!
//! A finite system `Θ` is a *pruning* of the concrete `Υ` when (i) it
//! contains `I₀`, (ii) every equality commitment represented among a
//! state's successors in `Υ` is represented among its successors in `Θ`,
//! and (iii) branching is finite. (iii) is structural; (i) is trivial; this
//! module machine-checks (ii): for every state and every legal `ασ`, every
//! *satisfiable* equality commitment must have a `Θ`-successor realising
//! its isomorphism type.

use dcds_core::nondet::nondet_successors_by_commitment;
use dcds_core::{CompactTs, Dcds, Ts};
use dcds_obs::{span, Obs};
use dcds_reldata::Facts;
use std::collections::BTreeSet;

/// Check commitment coverage of a candidate pruning: for each state `I` of
/// `ts`, each commitment-representative successor `I_rep` of `I` (computed
/// from the semantics) must be matched by some `ts`-successor isomorphic to
/// `I_rep` fixing the rigid constants *and* the values of `ADOM(I)`
/// (the commitment speaks about identity w.r.t. the current state's
/// values).
pub fn commitment_coverage_holds(dcds: &Dcds, ts: &Ts) -> bool {
    commitment_coverage_holds_traced(dcds, ts, &Obs::disabled())
}

/// [`commitment_coverage_holds`] with an observability handle: one overall
/// span, per-state heartbeats, and coverage-check counters.
pub fn commitment_coverage_holds_traced(dcds: &Dcds, ts: &Ts, obs: &Obs) -> bool {
    let mut run = span!(obs, "commitment_coverage", states = ts.num_states());
    let rigid = dcds.rigid_constants();
    let mut pool = dcds.working_pool();
    let mut reps_checked = 0u64;
    for s in ts.state_ids() {
        obs.heartbeat(|| {
            format!(
                "coverage: state {}/{}, {} representatives checked",
                s.index(),
                ts.num_states(),
                reps_checked
            )
        });
        let inst = ts.db(s);
        let reps = nondet_successors_by_commitment(dcds, inst, &mut pool);
        for (_, _, _, rep) in &reps {
            reps_checked += 1;
            // Fix rigid constants and the current state's adom pointwise.
            let mut fixed: BTreeSet<_> = rigid.clone();
            fixed.extend(inst.active_domain());
            let rep_facts = Facts::from_instance(rep);
            let covered = ts
                .successors(s)
                .iter()
                .any(|&t| Facts::from_instance(ts.db(t)).isomorphic(&rep_facts, &fixed));
            if !covered {
                obs.counter_add("coverage.reps_checked", reps_checked);
                run.set("covered", false);
                return false;
            }
        }
    }
    obs.counter_add("coverage.reps_checked", reps_checked);
    run.set("covered", true);
    true
}

/// [`commitment_coverage_holds`] over a store-backed system (e.g. the
/// output of [`crate::rcycl_compact`]): candidate successors' fact sets
/// are materialised straight from the [`dcds_reldata::StateStore`] — no
/// owned `Instance` per isomorphism probe. Verdict and check order are
/// identical to the owned checker on `ts.to_ts()`.
pub fn commitment_coverage_holds_compact(dcds: &Dcds, ts: &CompactTs) -> bool {
    commitment_coverage_holds_compact_traced(dcds, ts, &Obs::disabled())
}

/// [`commitment_coverage_holds_compact`] with an observability handle;
/// same spans and counters as the owned checker.
pub fn commitment_coverage_holds_compact_traced(dcds: &Dcds, ts: &CompactTs, obs: &Obs) -> bool {
    let mut run = span!(obs, "commitment_coverage", states = ts.num_states());
    let rigid = dcds.rigid_constants();
    let mut pool = dcds.working_pool();
    let mut reps_checked = 0u64;
    let store = ts.store();
    for s in ts.state_ids() {
        obs.heartbeat(|| {
            format!(
                "coverage: state {}/{}, {} representatives checked",
                s.index(),
                ts.num_states(),
                reps_checked
            )
        });
        let inst = ts.db(s);
        let reps = nondet_successors_by_commitment(dcds, &inst, &mut pool);
        for (_, _, _, rep) in &reps {
            reps_checked += 1;
            let mut fixed: BTreeSet<_> = rigid.clone();
            fixed.extend(inst.active_domain());
            let rep_facts = Facts::from_instance(rep);
            let covered = ts
                .successors(s)
                .iter()
                .any(|&t| store.facts(ts.state_ref(t)).isomorphic(&rep_facts, &fixed));
            if !covered {
                obs.counter_add("coverage.reps_checked", reps_checked);
                run.set("covered", false);
                return false;
            }
        }
    }
    obs.counter_add("coverage.reps_checked", reps_checked);
    run.set("covered", true);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rcycl::rcycl;
    use dcds_core::{DcdsBuilder, ServiceKind, Ts};

    fn example_5_1() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn rcycl_output_covers_all_commitments() {
        let dcds = example_5_1();
        let res = rcycl(&dcds, 100);
        assert!(res.complete);
        assert!(commitment_coverage_holds(&dcds, &res.ts));
    }

    #[test]
    fn compact_coverage_agrees_with_owned() {
        let dcds = example_5_1();
        let owned = rcycl(&dcds, 100);
        let compact = crate::rcycl_compact(&dcds, 100);
        assert!(commitment_coverage_holds(&dcds, &owned.ts));
        assert!(commitment_coverage_holds_compact(&dcds, &compact.ts));
    }

    #[test]
    fn dropping_a_branch_breaks_coverage() {
        let dcds = example_5_1();
        let res = rcycl(&dcds, 100);
        // Rebuild the system with one state's edges removed, reusing the
        // original's shared state handles: O(states), no instance copies.
        let mut broken = Ts::new_shared(res.ts.db_shared(res.ts.initial()));
        let mut map = vec![broken.initial(); res.ts.num_states()];
        for s in res.ts.state_ids().skip(1) {
            map[s.index()] = broken.add_state_shared(res.ts.db_shared(s));
        }
        let mut first = true;
        for s in res.ts.state_ids() {
            for &t in res.ts.successors(s) {
                if first {
                    // Drop the first edge found.
                    first = false;
                    continue;
                }
                broken.add_edge(map[s.index()], map[t.index()]);
            }
        }
        assert!(!commitment_coverage_holds(&dcds, &broken));
    }
}
