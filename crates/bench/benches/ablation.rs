//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **state deduplication** in the deterministic abstraction: canonical
//!   keys (hash lookup, pays canonicalisation per state) vs pairwise
//!   isomorphism matching (no canonicalisation, scans the class list);
//! * **atom-guided quantifier evaluation** in the reference FO evaluator:
//!   guided (iterate guard tuples) vs plain `|adom|^k` enumeration —
//!   exercised on the guard-shaped constraints the DCDS framework uses
//!   everywhere (`∀~x. R(~x) → ...`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcds_abstraction::{det_abstraction_with, DedupStrategy};
use dcds_bench::{examples, travel};
use dcds_folang::{holds_closed, holds_unguided, parse_formula, Assignment};
use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};
use std::hint::black_box;

fn bench_dedup_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10);
    let systems = [
        ("example_4_1", examples::example_4_1()),
        ("example_4_2", examples::example_4_2()),
        ("audit_small", travel::audit_system_small()),
    ];
    for (name, dcds) in &systems {
        group.bench_with_input(BenchmarkId::new("canonical_key", name), dcds, |b, d| {
            b.iter(|| {
                black_box(det_abstraction_with(d, 2_000, DedupStrategy::CanonicalKey))
                    .ts
                    .num_states()
            })
        });
        group.bench_with_input(BenchmarkId::new("pairwise_iso", name), dcds, |b, d| {
            b.iter(|| {
                black_box(det_abstraction_with(d, 2_000, DedupStrategy::PairwiseIso))
                    .ts
                    .num_states()
            })
        });
    }
    group.finish();
}

/// A wide instance for the guard-shaped constraint: `n` rows of `R/4`.
fn guard_setup(n: usize) -> (Schema, ConstantPool, Instance, dcds_folang::Formula) {
    let mut schema = Schema::new();
    let r = schema.add_relation("R", 4).unwrap();
    let mut pool = ConstantPool::new();
    let ok = pool.intern("ok");
    let mut inst = Instance::new();
    for i in 0..n {
        let row: Vec<_> = (0..3).map(|j| pool.intern(&format!("v{i}_{j}"))).collect();
        inst.insert(r, Tuple::from([row[0], row[1], row[2], ok]));
    }
    let f = parse_formula(
        "forall X1, X2, X3, P . R(X1, X2, X3, P) -> P = ok",
        &mut schema,
        &mut pool,
    )
    .unwrap();
    (schema, pool, inst, f)
}

fn bench_guided_quantifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_guided_eval");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let (_, _, inst, f) = guard_setup(n);
        group.bench_with_input(BenchmarkId::new("guided", n), &n, |b, _| {
            b.iter(|| black_box(holds_closed(&f, &inst)).unwrap())
        });
        // The unguided path enumerates |adom|^4 = (3n+1)^4 assignments.
        group.bench_with_input(BenchmarkId::new("unguided", n), &n, |b, _| {
            b.iter(|| black_box(holds_unguided(&f, &inst, &Assignment::new())).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dedup_strategies, bench_guided_quantifiers);
criterion_main!(benches);
