//! Figure regeneration as measured benchmarks: one benchmark per paper
//! figure/table, so `cargo bench` re-derives every published artifact and
//! times it. The printed reports themselves come from the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use dcds_bench::figures;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig2_example_4_2", |b| {
        b.iter(|| black_box(figures::fig2()).len())
    });
    group.bench_function("fig3_example_4_1", |b| {
        b.iter(|| black_box(figures::fig3()).len())
    });
    group.bench_function("fig4_run_unbounded", |b| {
        b.iter(|| black_box(figures::fig4()).len())
    });
    group.bench_function("fig5_dependency_graphs", |b| {
        b.iter(|| black_box(figures::fig5()).len())
    });
    group.bench_function("fig6_state_unbounded", |b| {
        b.iter(|| black_box(figures::fig6()).len())
    });
    group.bench_function("fig7_rcycl", |b| {
        b.iter(|| black_box(figures::fig7()).len())
    });
    group.bench_function("fig8_dataflow_graphs", |b| {
        b.iter(|| black_box(figures::fig8()).len())
    });
    group.bench_function("fig9_request_system", |b| {
        b.iter(|| black_box(figures::fig9()).len())
    });
    group.bench_function("fig10_audit_system", |b| {
        b.iter(|| black_box(figures::fig10()).len())
    });
    group.finish();
}

fn bench_table1_and_travel(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_decidability_matrix", |b| {
        b.iter(|| black_box(figures::table1()).len())
    });
    group.bench_function("appendix_e_travel_verify", |b| {
        b.iter(|| black_box(figures::travel_verify()).len())
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_table1_and_travel);
criterion_main!(benches);
