//! Scaling of the finite-abstraction constructions.
//!
//! * deterministic abstraction (Theorem 4.3) over weakly acyclic service
//!   chains of growing depth;
//! * Algorithm RCYCL (Theorem 5.4) over the paper examples and the travel
//!   request system;
//! * the contrast rows of Figures 4/6: budgeted truncation on the
//!   run-/state-unbounded examples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcds_abstraction::{det_abstraction, rcycl};
use dcds_bench::{examples, synthetic, travel};
use dcds_core::ServiceKind;
use std::hint::black_box;

fn bench_det_abstraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("det_abstraction");
    group.sample_size(10);
    for n in [1usize, 2, 3] {
        let dcds = synthetic::service_chain(n);
        group.bench_with_input(BenchmarkId::new("service_chain", n), &dcds, |b, d| {
            b.iter(|| black_box(det_abstraction(d, 2_000)).ts.num_states())
        });
    }
    let ex41 = examples::example_4_1();
    group.bench_function("example_4_1", |b| {
        b.iter(|| black_box(det_abstraction(&ex41, 200)).ts.num_states())
    });
    let ex42 = examples::example_4_2();
    group.bench_function("example_4_2", |b| {
        b.iter(|| black_box(det_abstraction(&ex42, 200)).ts.num_states())
    });
    // Figure 4 row: budgeted truncation on the run-unbounded Example 4.3.
    let ex43 = examples::example_4_3(ServiceKind::Deterministic);
    group.bench_function("example_4_3_truncated_60", |b| {
        b.iter(|| black_box(det_abstraction(&ex43, 60)).ts.num_states())
    });
    group.finish();
}

fn bench_rcycl(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcycl");
    group.sample_size(10);
    let ex51 = examples::example_5_1();
    group.bench_function("example_5_1", |b| {
        b.iter(|| black_box(rcycl(&ex51, 100)).ts.num_states())
    });
    // Figure 6 row: budgeted truncation on the state-unbounded Example 5.2.
    let ex52 = examples::example_5_2();
    group.bench_function("example_5_2_truncated_60", |b| {
        b.iter(|| black_box(rcycl(&ex52, 60)).ts.num_states())
    });
    let req = travel::request_system_small();
    group.bench_function("travel_request_small", |b| {
        b.iter(|| black_box(rcycl(&req, 5_000)).ts.num_states())
    });
    let ladder = synthetic::flush_ladder();
    group.bench_function("flush_ladder", |b| {
        b.iter(|| black_box(rcycl(&ladder, 2_000)).ts.num_states())
    });
    group.finish();
}

criterion_group!(benches, bench_det_abstraction, bench_rcycl);
criterion_main!(benches);
