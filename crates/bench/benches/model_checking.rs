//! Model-checking cost: the direct FO µ-calculus evaluator vs the
//! `PROP(Φ)` propositionalisation followed by propositional µ-calculus
//! model checking (Theorem 4.4's pipeline), over abstractions of growing
//! size and formulas of growing quantifier and fixpoint depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcds_abstraction::rcycl;
use dcds_bench::{examples, travel};
use dcds_core::Ts;
use dcds_folang::{Formula, QTerm};
use dcds_mucalc::{check, check_prop, propositionalize, sugar, Mu};
use std::hint::black_box;

/// AG (∃x. LIVE(x) ∧ R(x) ∨ Q(x)) over Example 5.1's pruning.
fn sample_formula(dcds: &dcds_core::Dcds) -> Mu {
    let r = dcds.data.schema.rel_id("R").unwrap();
    let q = dcds.data.schema.rel_id("Q").unwrap();
    sugar::ag(Mu::exists(
        "X",
        Mu::live("X").and(
            Mu::Query(Formula::Atom(r, vec![QTerm::var("X")]))
                .or(Mu::Query(Formula::Atom(q, vec![QTerm::var("X")]))),
        ),
    ))
}

/// A formula with `depth` nested alternating quantifiers.
fn deep_quantifiers(dcds: &dcds_core::Dcds, depth: usize) -> Mu {
    let r = dcds.data.schema.rel_id("R").unwrap();
    let mut f = Mu::Query(Formula::Atom(r, vec![QTerm::var("X0")]));
    for i in (0..depth).rev() {
        let v = format!("X{i}");
        f = if i % 2 == 0 {
            Mu::exists(v.as_str(), Mu::live(&v).and(f))
        } else {
            Mu::forall(v.as_str(), Mu::live(&v).implies(f))
        };
    }
    // Close over X0 when depth is 0.
    if depth == 0 {
        f = Mu::exists("X0", Mu::live("X0").and(f));
    }
    sugar::ef(f)
}

fn bench_direct_vs_prop(c: &mut Criterion) {
    let dcds = examples::example_5_1();
    let res = rcycl(&dcds, 100);
    let phi = sample_formula(&dcds);
    let mut group = c.benchmark_group("mc_direct_vs_prop");
    group.bench_function("direct", |b| {
        b.iter(|| black_box(check(&phi, &res.ts).unwrap()))
    });
    group.bench_function("prop_pipeline", |b| {
        b.iter(|| {
            let p = propositionalize(&phi, &res.ts.adom_union()).unwrap();
            black_box(check_prop(&p, &res.ts))
        })
    });
    // Pre-translated (amortised) propositional checking.
    let p = propositionalize(&phi, &res.ts.adom_union()).unwrap();
    group.bench_function("prop_only", |b| {
        b.iter(|| black_box(check_prop(&p, &res.ts)))
    });
    group.finish();
}

fn bench_quantifier_depth(c: &mut Criterion) {
    let dcds = examples::example_5_1();
    let res = rcycl(&dcds, 100);
    let mut group = c.benchmark_group("mc_quantifier_depth");
    for depth in [1usize, 2, 3, 4] {
        let phi = deep_quantifiers(&dcds, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &phi, |b, f| {
            b.iter(|| black_box(check(f, &res.ts).unwrap()))
        });
    }
    group.finish();
}

fn bench_fixpoint_iteration(c: &mut Criterion) {
    // Fixpoint iteration cost over a larger system: the travel request
    // pruning.
    let req = travel::request_system_small();
    let res = rcycl(&req, 5_000);
    let status = req.data.schema.rel_id("Status").unwrap();
    let conf = req.data.pool.get("requestConfirmed").unwrap();
    let goal = Mu::Query(Formula::Atom(status, vec![QTerm::Const(conf)]));
    let formulas: Vec<(&str, Mu)> = vec![
        ("EF_confirmed", sugar::ef(goal.clone())),
        ("AG_EF_confirmed", sugar::ag(sugar::ef(goal.clone()))),
        (
            "nested_AG_EF_AG",
            sugar::ag(sugar::ef(sugar::ag(goal.clone().not().or(goal)))),
        ),
    ];
    let mut group = c.benchmark_group("mc_fixpoints_travel");
    group.sample_size(10);
    let _ = &res.ts as &Ts;
    for (name, phi) in &formulas {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(check(phi, &res.ts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_direct_vs_prop,
    bench_quantifier_depth,
    bench_fixpoint_iteration
);
criterion_main!(benches);
