//! PTIME static analyses: weak acyclicity and GR(⁺)-acyclicity scaling
//! with the size of the process layer (Theorems 4.8 / Section 5.4's PTIME
//! claims made measurable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcds_analysis::{
    dataflow_graph, dependency_graph, gr_acyclicity, is_weakly_acyclic, position_ranks,
};
use dcds_bench::synthetic::{self, RandomParams};
use dcds_core::ServiceKind;
use std::hint::black_box;

fn bench_weak_acyclicity(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak_acyclicity");
    for n in [4usize, 16, 64, 256] {
        let dcds = synthetic::service_chain(n);
        group.bench_with_input(BenchmarkId::new("service_chain", n), &dcds, |b, d| {
            b.iter(|| {
                let dg = dependency_graph(d);
                black_box(is_weakly_acyclic(&dg))
            })
        });
    }
    for n in [4usize, 16, 64, 256] {
        let dcds = synthetic::service_cycle(n);
        group.bench_with_input(BenchmarkId::new("service_cycle", n), &dcds, |b, d| {
            b.iter(|| {
                let dg = dependency_graph(d);
                black_box(is_weakly_acyclic(&dg))
            })
        });
    }
    group.finish();
}

fn bench_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("position_ranks");
    for n in [8usize, 32, 128] {
        let dcds = synthetic::service_chain(n);
        let dg = dependency_graph(&dcds);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dg, |b, g| {
            b.iter(|| black_box(position_ranks(g)))
        });
    }
    group.finish();
}

fn bench_gr_acyclicity(c: &mut Criterion) {
    let mut group = c.benchmark_group("gr_acyclicity");
    for width in [1usize, 2, 4, 8] {
        let dcds = synthetic::accumulator(width);
        group.bench_with_input(BenchmarkId::new("accumulator", width), &dcds, |b, d| {
            b.iter(|| {
                let df = dataflow_graph(d);
                black_box((
                    gr_acyclicity::is_gr_acyclic(&df),
                    gr_acyclicity::is_gr_plus_acyclic(&df),
                ))
            })
        });
    }
    for seed in [1u64, 2, 3] {
        let dcds = synthetic::random_dcds(
            seed,
            RandomParams {
                relations: 8,
                services: 3,
                effects: 16,
                call_probability: 0.35,
                kind: ServiceKind::Nondeterministic,
            },
        );
        group.bench_with_input(BenchmarkId::new("random", seed), &dcds, |b, d| {
            b.iter(|| {
                let df = dataflow_graph(d);
                black_box(gr_acyclicity::is_gr_acyclic(&df))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weak_acyclicity,
    bench_ranks,
    bench_gr_acyclicity
);
criterion_main!(benches);
