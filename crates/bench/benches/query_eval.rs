//! Query-evaluation cost: the naive active-domain FO evaluator (reference
//! semantics) vs the join-based UCQ engine used inside `DO(I, ασ)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcds_folang::ast::{QTerm, Var};
use dcds_folang::ucq::{ConjunctiveQuery, Ucq};
use dcds_folang::{answers, eval_ucq};
use dcds_reldata::{ConstantPool, Instance, RelId, Schema, Tuple};
use std::hint::black_box;

/// A chain instance: E(c_i, c_{i+1}) for i < n, plus unary P on even nodes.
fn chain_instance(n: usize) -> (Schema, ConstantPool, Instance, RelId, RelId) {
    let mut schema = Schema::new();
    let e = schema.add_relation("E", 2).unwrap();
    let p = schema.add_relation("P", 1).unwrap();
    let mut pool = ConstantPool::new();
    let cs: Vec<_> = (0..n).map(|i| pool.intern(&format!("c{i}"))).collect();
    let mut inst = Instance::new();
    for i in 0..n - 1 {
        inst.insert(e, Tuple::from([cs[i], cs[i + 1]]));
    }
    for i in (0..n).step_by(2) {
        inst.insert(p, Tuple::from([cs[i]]));
    }
    (schema, pool, inst, e, p)
}

/// The 3-hop path CQ: ans(X, W) :- E(X,Y), E(Y,Z), E(Z,W), P(X).
fn path_cq(e: RelId, p: RelId) -> Ucq {
    Ucq::single(ConjunctiveQuery {
        head: vec![Var::new("X"), Var::new("W")],
        atoms: vec![
            (e, vec![QTerm::var("X"), QTerm::var("Y")]),
            (e, vec![QTerm::var("Y"), QTerm::var("Z")]),
            (e, vec![QTerm::var("Z"), QTerm::var("W")]),
            (p, vec![QTerm::var("X")]),
        ],
        equalities: vec![],
    })
}

fn bench_evaluators(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_eval_3hop_path");
    for n in [8usize, 16, 32] {
        let (_, _, inst, e, p) = chain_instance(n);
        let ucq = path_cq(e, p);
        let formula = ucq.to_formula();
        group.bench_with_input(BenchmarkId::new("join", n), &n, |b, _| {
            b.iter(|| black_box(eval_ucq(&ucq, &inst)).len())
        });
        // The reference evaluator enumerates |adom|^5 assignments — keep n
        // small enough to terminate in sane time.
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| black_box(answers(&formula, &inst)).len())
            });
        }
    }
    group.finish();
}

fn bench_do_shape_queries(c: &mut Criterion) {
    // The effect-body shape used everywhere in the DCDS semantics: small
    // CQs with one or two atoms over small instances, executed thousands of
    // times per abstraction step.
    let (_, _, inst, e, p) = chain_instance(16);
    let small = Ucq::single(ConjunctiveQuery {
        head: vec![Var::new("X"), Var::new("Y")],
        atoms: vec![
            (e, vec![QTerm::var("X"), QTerm::var("Y")]),
            (p, vec![QTerm::var("X")]),
        ],
        equalities: vec![],
    });
    c.bench_function("query_eval_effect_shape", |b| {
        b.iter(|| black_box(eval_ucq(&small, &inst)).len())
    });
}

criterion_group!(benches, bench_evaluators, bench_do_shape_queries);
criterion_main!(benches);
