//! The paper's running examples as reusable constructors.

use dcds_core::{Dcds, DcdsBuilder, ServiceKind};

/// Example 4.1: deterministic `f/1`, `g/1`, no constraints.
///
/// ```text
/// I₀ = {P(a), Q(a,a)},  ρ = {true ↦ α}
/// α : { Q(a,a) ∧ P(x) ⇝ R(x),  P(x) ⇝ P(x), Q(f(x), g(x)) }
/// ```
pub fn example_4_1() -> Dcds {
    DcdsBuilder::new()
        .relation("Q", 2)
        .relation("P", 1)
        .relation("R", 1)
        .service("f", 1, ServiceKind::Deterministic)
        .service("g", 1, ServiceKind::Deterministic)
        .init_fact("P", &["a"])
        .init_fact("Q", &["a", "a"])
        .action("alpha", &[], |a| {
            a.effect("Q(a,a) & P(X)", "R(X)");
            a.effect("P(X)", "P(X), Q(f(X), g(X))");
        })
        .rule("true", "alpha")
        .build()
        .expect("example 4.1 is well-formed")
}

/// Example 4.2: Example 4.1 plus the equality constraint
/// `P(x) ∧ Q(y,z) → x = y` (forces `f(a) = a`).
pub fn example_4_2() -> Dcds {
    DcdsBuilder::new()
        .relation("Q", 2)
        .relation("P", 1)
        .relation("R", 1)
        .service("f", 1, ServiceKind::Deterministic)
        .service("g", 1, ServiceKind::Deterministic)
        .init_fact("P", &["a"])
        .init_fact("Q", &["a", "a"])
        .constraint("P(X) & Q(Y, Z) -> X = Y")
        .action("alpha", &[], |a| {
            a.effect("Q(a,a) & P(X)", "R(X)");
            a.effect("P(X)", "P(X), Q(f(X), g(X))");
        })
        .rule("true", "alpha")
        .build()
        .expect("example 4.2 is well-formed")
}

/// Example 4.3 (deterministic) / Example 5.1 (nondeterministic): the
/// `R`/`Q` ping-pong through service `f` — run-unbounded, state-bounded.
///
/// ```text
/// I₀ = {R(a)},  α : { R(x) ⇝ Q(f(x)),  Q(x) ⇝ R(x) }
/// ```
pub fn example_4_3(kind: ServiceKind) -> Dcds {
    DcdsBuilder::new()
        .relation("R", 1)
        .relation("Q", 1)
        .service("f", 1, kind)
        .init_fact("R", &["a"])
        .action("alpha", &[], |a| {
            a.effect("R(X)", "Q(f(X))");
            a.effect("Q(X)", "R(X)");
        })
        .rule("true", "alpha")
        .build()
        .expect("example 4.3 is well-formed")
}

/// Example 5.1 = Example 4.3 with nondeterministic `f`.
pub fn example_5_1() -> Dcds {
    example_4_3(ServiceKind::Nondeterministic)
}

/// Example 5.2: the accumulator — state-unbounded.
///
/// ```text
/// α : { R(x) ⇝ R(x),  R(x) ⇝ Q(f(x)),  Q(x) ⇝ Q(x) }
/// ```
pub fn example_5_2() -> Dcds {
    DcdsBuilder::new()
        .relation("R", 1)
        .relation("Q", 1)
        .service("f", 1, ServiceKind::Nondeterministic)
        .init_fact("R", &["a"])
        .action("alpha", &[], |a| {
            a.effect("R(X)", "R(X)");
            a.effect("R(X)", "Q(f(X))");
            a.effect("Q(X)", "Q(X)");
        })
        .rule("true", "alpha")
        .build()
        .expect("example 5.2 is well-formed")
}

/// Example 5.3: the doubler — `R(x) ⇝ R(f(x)), R(g(x))`, state-unbounded
/// without accumulation.
pub fn example_5_3() -> Dcds {
    DcdsBuilder::new()
        .relation("R", 1)
        .service("f", 1, ServiceKind::Nondeterministic)
        .service("g", 1, ServiceKind::Nondeterministic)
        .init_fact("R", &["a"])
        .action("alpha", &[], |a| {
            a.effect("R(X)", "R(f(X)), R(g(X))");
        })
        .rule("true", "alpha")
        .build()
        .expect("example 5.3 is well-formed")
}

/// The Theorem 4.5 system: `ρ = {R(x) ↦ α(x)}`, `α(p) : true ⇝ Q(f(p))` —
/// run-bounded, yet no finite abstraction satisfies the same full-µL
/// formulas (the Φₙ family).
pub fn theorem_4_5_system() -> Dcds {
    DcdsBuilder::new()
        .relation("R", 1)
        .relation("Q", 1)
        .service("f", 1, ServiceKind::Deterministic)
        .init_fact("R", &["a"])
        .action("alpha", &["X"], |a| {
            a.effect("true", "Q(f(X))");
        })
        .rule("R(X)", "alpha")
        .build()
        .expect("theorem 4.5 system is well-formed")
}

/// The Theorem 5.2 system: infinite data words. Each state carries one
/// `LABEL` and one `DATUM` produced by a fresh nullary nondeterministic
/// call — state-bounded with bound 2.
pub fn theorem_5_2_system(labels: &[&str]) -> Dcds {
    let mut b = DcdsBuilder::new()
        .relation("LABEL", 1)
        .relation("DATUM", 1)
        .relation("Seed", 0)
        .service("f", 0, ServiceKind::Nondeterministic)
        .init_fact("Seed", &[]);
    for &l in labels {
        b = b.action(&format!("emit_{l}"), &[], move |a| {
            a.effect("true", &format!("LABEL({l}), DATUM(f()), Seed()"));
        });
        b = b.rule("true", &format!("emit_{l}"));
    }
    b.build().expect("theorem 5.2 system is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_validate() {
        example_4_1();
        example_4_2();
        example_4_3(ServiceKind::Deterministic);
        example_5_1();
        example_5_2();
        example_5_3();
        theorem_4_5_system();
        theorem_5_2_system(&["a", "b"]);
    }

    #[test]
    fn static_verdicts_match_the_paper() {
        use dcds_analysis::{dataflow_graph, dependency_graph, gr_acyclicity, is_weakly_acyclic};
        // Table of Section 4.3 / 5.4 verdicts.
        assert!(is_weakly_acyclic(&dependency_graph(&example_4_1())));
        assert!(is_weakly_acyclic(&dependency_graph(&example_4_2())));
        assert!(!is_weakly_acyclic(&dependency_graph(&example_4_3(
            ServiceKind::Deterministic
        ))));
        assert!(gr_acyclicity::is_gr_acyclic(
            &dataflow_graph(&example_5_1())
        ));
        assert!(!gr_acyclicity::is_gr_acyclic(&dataflow_graph(
            &example_5_2()
        )));
        assert!(!gr_acyclicity::is_gr_acyclic(&dataflow_graph(
            &example_5_3()
        )));
    }

    #[test]
    fn theorem_5_2_system_is_state_bounded() {
        let dcds = theorem_5_2_system(&["a", "b"]);
        let obs = dcds_abstraction::observe_state_bound(&dcds, 3, 500);
        assert!(obs.max_observed <= 2);
    }
}
