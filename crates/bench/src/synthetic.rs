//! Parametric synthetic DCDS families for scaling benchmarks.

use crate::rng::SplitMix64;
use dcds_core::{Dcds, DcdsBuilder, ServiceKind};

/// A weakly acyclic copy chain: `R0 → R1 → ... → Rn` (one copy effect per
/// link, no services). Run-bounded trivially.
pub fn copy_chain(n: usize) -> Dcds {
    let mut b = DcdsBuilder::new();
    for i in 0..=n {
        b = b.relation(&format!("R{i}"), 1);
    }
    b = b.init_fact("R0", &["a"]);
    b = b.action("step", &[], |a| {
        for i in 0..n {
            a.effect(&format!("R{i}(X)"), &format!("R{}(X)", i + 1));
        }
        a.effect("R0(X)", "R0(X)");
    });
    b.rule("true", "step").build().expect("copy chain")
}

/// A weakly acyclic service chain: `Ri →* R(i+1)` via a deterministic call
/// per link. Rank of `Rn` is `n`: stresses the rank computation and the
/// deterministic abstraction depth.
pub fn service_chain(n: usize) -> Dcds {
    let mut b = DcdsBuilder::new();
    for i in 0..=n {
        b = b.relation(&format!("R{i}"), 1);
    }
    for i in 0..n {
        b = b.service(&format!("f{i}"), 1, ServiceKind::Deterministic);
    }
    b = b.init_fact("R0", &["a"]);
    b = b.action("step", &[], |a| {
        for i in 0..n {
            a.effect(&format!("R{i}(X)"), &format!("R{}(f{i}(X))", i + 1));
        }
        a.effect("R0(X)", "R0(X)");
    });
    b.rule("true", "step").build().expect("service chain")
}

/// A ring of `n` relations with one special edge closing the cycle — NOT
/// weakly acyclic for any `n ≥ 1` (generalises Example 4.3).
pub fn service_cycle(n: usize) -> Dcds {
    let n = n.max(1);
    let mut b = DcdsBuilder::new();
    for i in 0..n {
        b = b.relation(&format!("R{i}"), 1);
    }
    b = b.service("f", 1, ServiceKind::Deterministic);
    b = b.init_fact("R0", &["a"]);
    b = b.action("step", &[], |a| {
        for i in 0..n - 1 {
            a.effect(&format!("R{i}(X)"), &format!("R{}(X)", i + 1));
        }
        a.effect(&format!("R{}(X)", n - 1), "R0(f(X))");
    });
    b.rule("true", "step").build().expect("service cycle")
}

/// `width` parallel Example-5.2 accumulators — NOT GR-acyclic; the state
/// grows by up to `width` fresh values per step.
pub fn accumulator(width: usize) -> Dcds {
    let width = width.max(1);
    let mut b = DcdsBuilder::new().relation("Src", 1);
    for i in 0..width {
        b = b.relation(&format!("Acc{i}"), 1);
        b = b.service(&format!("f{i}"), 1, ServiceKind::Nondeterministic);
    }
    b = b.init_fact("Src", &["a"]);
    b = b.action("step", &[], |a| {
        a.effect("Src(X)", "Src(X)");
        for i in 0..width {
            a.effect("Src(X)", &format!("Acc{i}(f{i}(X))"));
            a.effect(&format!("Acc{i}(X)"), &format!("Acc{i}(X)"));
        }
    });
    b.rule("true", "step").build().expect("accumulator")
}

/// A GR⁺ flush ladder: a generator action feeds fresh values into `Buf`,
/// a *separate* consumer action copies `Buf` to `Out` without sustaining
/// `Buf` — not GR-acyclic (generate cycle into recall cycle) but GR⁺
/// (the generator and the recall loop never fire together).
pub fn flush_ladder() -> Dcds {
    DcdsBuilder::new()
        .relation("Tick", 0)
        .relation("Buf", 1)
        .relation("Out", 1)
        .relation("Phase", 1)
        .service("gen", 0, ServiceKind::Nondeterministic)
        .init_fact("Tick", &[])
        .init_fact("Phase", &["produce"])
        .fo_constraint("forall P . Phase(P) -> P = 'produce' | P = 'consume'")
        .action("produce", &[], |a| {
            a.effect("Tick()", "Tick(), Phase('consume'), Buf(gen())");
            // Out persists through the produce phase — this closes the
            // recall cycle that makes the system non-GR-acyclic...
            a.effect("Out(X)", "Out(X)");
        })
        .action("consume", &[], |a| {
            a.effect("Tick()", "Tick(), Phase('produce')");
            // ... but consume *replaces* Out (it does not sustain it), so
            // the recall cycle is flushed whenever fresh values flow in:
            // GR+-acyclic, state-bounded.
            a.effect("Buf(X)", "Out(X)");
        })
        .rule("Phase('produce')", "produce")
        .rule("Phase('consume')", "consume")
        .build()
        .expect("flush ladder")
}

/// `width` independent Example-4.3 rings with deterministic services:
/// every step applies each `fᵢ` to that ring's freshest value, so the
/// service-call maps grow without bound and (almost) every commitment
/// successor is a brand-new isomorphism class, while the commitments over
/// the `width` simultaneous calls give wide branching. The stress profile
/// for the abstraction dedup index — big fact encodings, expensive
/// canonical keys, empty signature buckets.
pub fn parallel_rings(width: usize) -> Dcds {
    let width = width.max(1);
    let mut b = DcdsBuilder::new();
    for i in 0..width {
        b = b
            .relation(&format!("R{i}"), 1)
            .relation(&format!("Q{i}"), 1)
            .service(&format!("f{i}"), 1, ServiceKind::Deterministic)
            .init_fact(&format!("R{i}"), &["a"]);
    }
    b = b.action("step", &[], |a| {
        for i in 0..width {
            a.effect(&format!("R{i}(X)"), &format!("Q{i}(f{i}(X))"));
            a.effect(&format!("Q{i}(X)"), &format!("R{i}(X)"));
        }
    });
    b.rule("true", "step").build().expect("parallel rings")
}

/// `width` nondeterministic ping-pong rings (Example 5.1 style) advanced
/// one at a time by a cycling phase token. Every state holds exactly
/// `width + 2` facts (one slot per ring, `Tick`, `Phase`), so the state
/// *size* is flat no matter how far exploration runs, while the reachable
/// space is the product of the per-ring configurations × `width` phases —
/// exponential in `width`. Branching per state is one service call over a
/// bounded active domain, so the fanout is `O(width)` and RCYCL streams
/// through millions of states without the per-state cost creeping up:
/// the scale workload for the compact state store (each successor differs
/// from its parent in one ring slot plus the phase token — tiny deltas).
pub fn phased_rings(width: usize) -> Dcds {
    let width = width.max(1);
    let mut b = DcdsBuilder::new().relation("Tick", 0).relation("Phase", 1);
    for i in 0..width {
        b = b
            .relation(&format!("R{i}"), 1)
            .relation(&format!("Q{i}"), 1)
            .service(&format!("f{i}"), 1, ServiceKind::Nondeterministic)
            .init_fact(&format!("R{i}"), &["a"]);
    }
    b = b.init_fact("Tick", &[]).init_fact("Phase", &["p0"]);
    for i in 0..width {
        let next = (i + 1) % width;
        b = b.action(&format!("step{i}"), &[], |a| {
            // Advance ring `i`; the phase token is replaced, not
            // sustained, so exactly one ring moves per transition.
            a.effect("Tick()", &format!("Tick(), Phase('p{next}')"));
            a.effect(&format!("R{i}(X)"), &format!("Q{i}(f{i}(X))"));
            a.effect(&format!("Q{i}(X)"), &format!("R{i}(X)"));
            for j in 0..width {
                if j != i {
                    a.effect(&format!("R{j}(X)"), &format!("R{j}(X)"));
                    a.effect(&format!("Q{j}(X)"), &format!("Q{j}(X)"));
                }
            }
        });
        b = b.rule(&format!("Phase('p{i}')"), &format!("step{i}"));
    }
    b.build().expect("phased rings")
}

/// The dedup-collision stress family: `n` rigid seed tags, one
/// deterministic call per phase, and constraints that force each call
/// result to be either fresh or equal to one *unpaired* earlier result.
/// The abstract states at level `k` are exactly the involutions of the
/// first `k` tags, and two states whose paired tag-sets coincide are
/// indistinguishable to [`dcds_reldata::Facts::signature`] (the signature
/// never relates non-rigid values across facts) while being pairwise
/// non-isomorphic — so all `(2m − 1)!!` matchings of a paired set land in
/// ONE signature group (10 395 classes for 12 paired tags). A linear
/// group scan makes admission quadratic in the group size; the exact-match
/// key index keeps it O(1) per probe. Canonical keys stay cheap: every
/// shared value's rigid neighbours give it a singleton refinement class.
pub fn collision_pairs(n: usize) -> Dcds {
    let n = n.max(2);
    let mut b = DcdsBuilder::new()
        .relation("Tick", 0)
        .relation("Seed", 1)
        .relation("Phase", 1)
        .relation("E", 2)
        .service("f", 1, ServiceKind::Deterministic)
        .init_fact("Tick", &[])
        .init_fact("Phase", &["p0"]);
    for k in 0..n {
        b = b.init_fact("Seed", &[&format!("a{k}")]);
    }
    // (i) A call result never collides with a rigid constant (tags or
    // phase tokens) — those successors would be junk classes.
    let mut fresh_only = String::from("forall X, V . E(X, V) -> ");
    for k in 0..n {
        fresh_only.push_str(&format!("V != 'a{k}' & "));
    }
    for k in 0..=n {
        fresh_only.push_str(&format!("V != 'p{k}'"));
        if k < n {
            fresh_only.push_str(" & ");
        }
    }
    b = b.fo_constraint(&fresh_only);
    // (ii) At most two tags share a result: pairs, never triples.
    b = b.fo_constraint("forall X, Y, Z, V . E(X, V) & E(Y, V) & E(Z, V) -> X = Y | X = Z | Y = Z");
    for k in 0..n {
        let next = k + 1;
        b = b.action(&format!("step{k}"), &[], move |a| {
            a.effect(
                "Tick()",
                &format!("Tick(), Phase('p{next}'), E('a{k}', f('a{k}'))"),
            );
            a.effect("Seed(X)", "Seed(X)");
            a.effect("E(X, Y)", "E(X, Y)");
        });
        b = b.rule(&format!("Phase('p{k}')"), &format!("step{k}"));
    }
    b.build().expect("collision pairs")
}

/// Parameters for random DCDS generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomParams {
    /// Number of unary relations.
    pub relations: usize,
    /// Number of unary services.
    pub services: usize,
    /// Number of effects in the single action.
    pub effects: usize,
    /// Probability that an effect head is a service call (vs a copy).
    pub call_probability: f64,
    /// Deterministic or nondeterministic services.
    pub kind: ServiceKind,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            relations: 4,
            services: 2,
            effects: 6,
            call_probability: 0.4,
            kind: ServiceKind::Deterministic,
        }
    }
}

/// Generate a pseudo-random DCDS (deterministic in the seed): unary
/// relations, effects copying or service-mapping between random pairs.
/// Used to benchmark the static analyses on varied graph shapes.
pub fn random_dcds(seed: u64, params: RandomParams) -> Dcds {
    let mut rng = SplitMix64::new(seed);
    let mut b = DcdsBuilder::new();
    for i in 0..params.relations {
        b = b.relation(&format!("R{i}"), 1);
    }
    for i in 0..params.services {
        b = b.service(&format!("f{i}"), 1, params.kind);
    }
    b = b.init_fact("R0", &["a"]);
    let relations = params.relations.max(1);
    let services = params.services;
    let effects = params.effects;
    let call_probability = params.call_probability;
    let mut specs: Vec<(String, String)> = Vec::new();
    for _ in 0..effects {
        let src = rng.gen_range(relations);
        let dst = rng.gen_range(relations);
        let body = format!("R{src}(X)");
        let head = if services > 0 && rng.gen_bool(call_probability) {
            let f = rng.gen_range(services);
            format!("R{dst}(f{f}(X))")
        } else {
            format!("R{dst}(X)")
        };
        specs.push((body, head));
    }
    b = b.action("step", &[], |a| {
        for (body, head) in &specs {
            a.effect(body, head);
        }
    });
    b.rule("true", "step").build().expect("random dcds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_analysis::{dataflow_graph, dependency_graph, gr_acyclicity, is_weakly_acyclic};

    #[test]
    fn chains_are_weakly_acyclic() {
        for n in [1, 3, 8] {
            assert!(is_weakly_acyclic(&dependency_graph(&copy_chain(n))));
            assert!(is_weakly_acyclic(&dependency_graph(&service_chain(n))));
        }
    }

    #[test]
    fn cycles_are_not_weakly_acyclic() {
        for n in [1, 2, 5] {
            assert!(!is_weakly_acyclic(&dependency_graph(&service_cycle(n))));
        }
    }

    #[test]
    fn service_chain_ranks_grow() {
        let dcds = service_chain(5);
        let dg = dependency_graph(&dcds);
        let ranks = dcds_analysis::position_ranks(&dg).unwrap();
        assert_eq!(ranks.iter().copied().max().unwrap(), 5);
    }

    #[test]
    fn accumulators_are_not_gr_acyclic() {
        for w in [1, 3] {
            let df = dataflow_graph(&accumulator(w));
            assert!(!gr_acyclicity::is_gr_acyclic(&df));
            assert!(!gr_acyclicity::is_gr_plus_acyclic(&df));
        }
    }

    #[test]
    fn flush_ladder_is_gr_plus_only() {
        let df = dataflow_graph(&flush_ladder());
        assert!(!gr_acyclicity::is_gr_acyclic(&df));
        assert!(gr_acyclicity::is_gr_plus_acyclic(&df));
    }

    #[test]
    fn flush_ladder_is_state_bounded_in_practice() {
        let res = dcds_abstraction::rcycl(&flush_ladder(), 2000);
        assert!(res.complete);
    }

    #[test]
    fn phased_rings_states_are_fixed_size() {
        let dcds = phased_rings(3);
        let res = dcds_abstraction::rcycl(&dcds, 3000);
        // Every state: 3 ring slots + Tick + Phase — flat regardless of
        // how deep exploration went.
        for s in res.ts.state_ids() {
            assert_eq!(res.ts.db(s).len(), 5);
        }
        // The product space dwarfs small budgets.
        assert!(!res.complete);
        assert_eq!(res.ts.num_states(), 3000);
    }

    #[test]
    fn collision_pairs_states_are_involutions() {
        // Level k of the abstraction holds exactly the involutions of the
        // first k tags (telephone numbers T(k)): each call result is fresh
        // or paired with one unpaired earlier result. For n = 5 the
        // saturated system has T(0) + ... + T(5) = 1+1+2+4+10+26 states.
        use dcds_abstraction::{det_abstraction_with, AbsOutcome, DedupStrategy};
        let dcds = collision_pairs(5);
        let keyed = det_abstraction_with(&dcds, 500, DedupStrategy::CanonicalKey);
        assert_eq!(keyed.outcome, AbsOutcome::Complete);
        assert_eq!(keyed.ts.num_states(), 44);
        let pairwise = det_abstraction_with(&dcds, 500, DedupStrategy::PairwiseIso);
        assert_eq!(pairwise.ts.num_states(), 44);
        assert_eq!(keyed.ts.num_edges(), pairwise.ts.num_edges());
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let p = RandomParams::default();
        let a = random_dcds(42, p);
        let b = random_dcds(42, p);
        assert_eq!(
            a.process.actions[0].effects.len(),
            b.process.actions[0].effects.len()
        );
        let dga = dependency_graph(&a);
        let dgb = dependency_graph(&b);
        assert_eq!(dga.graph.num_edges(), dgb.graph.num_edges());
    }
}
