//! Regeneration of the paper's figures and table.
//!
//! The paper is a theory paper: its "evaluation" artifacts are worked
//! transition systems (Figures 2–4, 6, 7), dataflow/dependency graphs
//! (Figures 5, 8, 9, 10) and the decidability matrix (Table 1). Each
//! function here rebuilds one of them from the implemented machinery and
//! renders a plain-text report; the `fig*`/`table1` binaries print them and
//! EXPERIMENTS.md records the expected-vs-observed shapes.

use crate::examples;
use crate::travel;
use dcds_abstraction::{det_abstraction, observe_run_bound, observe_state_bound, rcycl};
use dcds_analysis::{
    dataflow_dot, dataflow_graph, dependency_graph, depgraph_dot, gr_acyclicity, is_weakly_acyclic,
    position_ranks,
};
use dcds_core::explore::{explore_det, explore_nondet, CommitmentOracle, Limits};
use dcds_core::{Dcds, ServiceKind, Ts};
use dcds_folang::Formula;
use dcds_mucalc::{check, check_prop, propositionalize, sugar, Mu};
use dcds_reldata::InstanceDisplay;
use std::fmt::Write as _;

fn ts_summary(
    ts: &Ts,
    dcds: &Dcds,
    pool: &dcds_reldata::ConstantPool,
    label: &str,
    list_states: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{label}: {} states, {} edges, max |adom(state)| = {}",
        ts.num_states(),
        ts.num_edges(),
        ts.max_state_adom()
    );
    if list_states {
        for s in ts.state_ids() {
            let succ: Vec<String> = ts
                .successors(s)
                .iter()
                .map(|t| format!("s{}", t.index()))
                .collect();
            let _ = writeln!(
                out,
                "  s{}: {{{}}} -> [{}]",
                s.index(),
                InstanceDisplay::new(ts.db(s), &dcds.data.schema, pool),
                succ.join(", ")
            );
        }
    }
    out
}

/// Figure 2: concrete (prefix) and abstract transition systems of Example
/// 4.2 (deterministic services + the equality constraint forcing
/// `f(a) = a`).
pub fn fig2() -> String {
    let dcds = examples::example_4_2();
    let mut out = String::from(
        "Figure 2 — Example 4.2 (deterministic, equality constraint P(x)&Q(y,z) -> x=y)\n\n",
    );
    let mut oracle = CommitmentOracle;
    let concrete = explore_det(
        &dcds,
        Limits {
            max_states: 64,
            max_depth: 2,
        },
        &mut oracle,
    );
    out += &ts_summary(
        &concrete.ts,
        &dcds,
        &concrete.pool,
        "concrete prefix (depth 2, one representative per commitment)",
        false,
    );
    let abs = det_abstraction(&dcds, 100);
    out += &ts_summary(
        &abs.ts,
        &dcds,
        &abs.pool,
        "abstract transition system",
        true,
    );
    let _ = writeln!(
        out,
        "\nabstraction outcome: {:?} (paper: finite, f(a) |-> a forced; initial state has 2 successors — ours has {})",
        abs.outcome,
        abs.ts.successors(abs.ts.initial()).len()
    );
    out
}

/// Figure 3: Example 4.1 without the constraint — more commitments survive.
pub fn fig3() -> String {
    let dcds = examples::example_4_1();
    let mut out = String::from("Figure 3 — Example 4.1 (deterministic, no constraints)\n\n");
    let mut oracle = CommitmentOracle;
    let concrete = explore_det(
        &dcds,
        Limits {
            max_states: 64,
            max_depth: 2,
        },
        &mut oracle,
    );
    out += &ts_summary(
        &concrete.ts,
        &dcds,
        &concrete.pool,
        "concrete prefix (depth 2, one representative per commitment)",
        false,
    );
    let abs = det_abstraction(&dcds, 100);
    out += &ts_summary(
        &abs.ts,
        &dcds,
        &abs.pool,
        "abstract transition system",
        true,
    );
    let _ = writeln!(
        out,
        "\nabstraction outcome: {:?} (paper: finite; initial state has 5 successors \
         (commitments of f(a), g(a) vs {{a}}) — ours has {})",
        abs.outcome,
        abs.ts.successors(abs.ts.initial()).len()
    );
    out
}

/// Figure 4: Example 4.3 under deterministic services — run-unbounded;
/// the abstraction cannot saturate, and per-run value counts grow with
/// depth.
pub fn fig4() -> String {
    let dcds = examples::example_4_3(ServiceKind::Deterministic);
    let mut out = String::from(
        "Figure 4 — Example 4.3 (deterministic): run-unbounded f-chain a, f(a), f(f(a)), ...\n\n",
    );
    let _ = writeln!(out, "depth  max distinct values on a run");
    for depth in 1..=6 {
        let obs = observe_run_bound(&dcds, depth, 100_000);
        let _ = writeln!(out, "{depth:>5}  {}", obs.max_observed);
    }
    let abs = det_abstraction(&dcds, 80);
    let _ = writeln!(
        out,
        "\nabstraction with budget 80 states: {:?} (paper: no faithful finite abstraction exists)",
        abs.outcome
    );
    out
}

/// Figure 5: dependency graphs and weak-acyclicity verdicts.
pub fn fig5() -> String {
    let mut out = String::from("Figure 5 — dependency graphs (weak acyclicity)\n\n");
    let a = examples::example_4_1();
    let dg_a = dependency_graph(&a);
    let _ = writeln!(
        out,
        "(a) Examples 4.1/4.2 — weakly acyclic: {}\n{}",
        is_weakly_acyclic(&dg_a),
        depgraph_dot(&dg_a, &a)
    );
    let b = examples::example_4_3(ServiceKind::Deterministic);
    let dg_b = dependency_graph(&b);
    let _ = writeln!(
        out,
        "(b) Example 4.3 — weakly acyclic: {}\n{}",
        is_weakly_acyclic(&dg_b),
        depgraph_dot(&dg_b, &b)
    );
    out
}

/// Figure 6: Example 5.2 — state-unbounded accumulation; RCYCL cannot
/// saturate and witnessed state sizes grow with depth.
pub fn fig6() -> String {
    let dcds = examples::example_5_2();
    let mut out =
        String::from("Figure 6 — Example 5.2 (nondeterministic): Q accumulates fresh values\n\n");
    let _ = writeln!(out, "depth  max |adom(state)| witnessed");
    for depth in 1..=4 {
        let obs = observe_state_bound(&dcds, depth, 50_000);
        let _ = writeln!(out, "{depth:>5}  {}", obs.max_observed);
    }
    let res = rcycl(&dcds, 100);
    let _ = writeln!(
        out,
        "\nRCYCL with budget 100 states: complete = {} (paper: state-unbounded, pruning has \
         infinitely many growing states)",
        res.complete
    );
    out
}

/// Figure 7: Example 4.3 under nondeterministic services (Example 5.1) —
/// state-bounded; RCYCL terminates with a small pruning.
pub fn fig7() -> String {
    let dcds = examples::example_5_1();
    let mut out = String::from(
        "Figure 7 — Example 4.3 with nondeterministic f: state-bounded, RCYCL saturates\n\n",
    );
    let mut oracle = CommitmentOracle;
    let concrete = explore_nondet(
        &dcds,
        Limits {
            max_states: 64,
            max_depth: 3,
        },
        &mut oracle,
    );
    out += &ts_summary(
        &concrete.ts,
        &dcds,
        &concrete.pool,
        "concrete prefix (depth 3, one representative per commitment)",
        false,
    );
    let res = rcycl(&dcds, 100);
    out += &ts_summary(&res.ts, &dcds, &res.pool, "RCYCL pruning", true);
    let _ = writeln!(
        out,
        "\nRCYCL complete = {}, used values = {}, triples processed = {} \
         (paper: finite abstraction with 1-tuple states)",
        res.complete,
        res.used_values.len(),
        res.triples_processed
    );
    out
}

/// Figure 8: dataflow graphs and GR-acyclicity verdicts.
pub fn fig8() -> String {
    let mut out = String::from("Figure 8 — dataflow graphs (GR-acyclicity)\n\n");
    let cases: [(&str, Dcds); 3] = [
        ("(a) Example 4.3/5.1", examples::example_5_1()),
        ("(b) Example 5.2", examples::example_5_2()),
        ("(c) Example 5.3", examples::example_5_3()),
    ];
    for (label, dcds) in cases {
        let df = dataflow_graph(&dcds);
        let _ = writeln!(
            out,
            "{label} — GR-acyclic: {}, GR+-acyclic: {}\n{}",
            gr_acyclicity::is_gr_acyclic(&df),
            gr_acyclicity::is_gr_plus_acyclic(&df),
            dataflow_dot(&df, &dcds)
        );
    }
    out
}

/// Figure 9: the travel request system's dataflow graph — not GR-acyclic,
/// GR⁺-acyclic.
pub fn fig9() -> String {
    let dcds = travel::request_system();
    let df = dataflow_graph(&dcds);
    let mut out = String::from("Figure 9 — travel request system dataflow graph\n\n");
    let _ = writeln!(
        out,
        "GR-acyclic: {} (paper: no)\nGR+-acyclic: {} (paper: yes — InitiateRequest's \
         generate edges are disjoint from the Verify/Update recall loops)\n",
        gr_acyclicity::is_gr_acyclic(&df),
        gr_acyclicity::is_gr_plus_acyclic(&df)
    );
    out += &dataflow_dot(&df, &dcds);
    out
}

/// Figure 10: the audit system's dependency graph — weakly acyclic.
pub fn fig10() -> String {
    let dcds = travel::audit_system();
    let dg = dependency_graph(&dcds);
    let mut out = String::from("Figure 10 — audit system dependency graph\n\n");
    let ranks = position_ranks(&dg);
    let _ = writeln!(
        out,
        "weakly acyclic: {} (paper: yes)\nmax position rank: {:?}\n",
        is_weakly_acyclic(&dg),
        ranks.as_ref().map(|r| r.iter().copied().max().unwrap_or(0))
    );
    out += &depgraph_dot(&dg, &dcds);
    out
}

/// One row of Table 1 evidence.
fn cell(out: &mut String, setting: &str, logic: &str, verdict: &str, evidence: &str) {
    let _ = writeln!(out, "{setting:<28} {logic:<5} {verdict:<28} {evidence}");
}

/// Table 1: the (un)decidability matrix, each cell demonstrated by running
/// the corresponding construction.
pub fn table1() -> String {
    let mut out =
        String::from("Table 1 — (un)decidability of verification (U undecidable, D decidable)\n\n");
    cell(
        &mut out,
        "SETTING",
        "LOGIC",
        "VERDICT",
        "EVIDENCE (this run)",
    );

    // --- Deterministic, unrestricted: U (even propositional LTL). ---
    // Evidence: the Theorem 4.1 reduction executes — G !halted tracks TM
    // halting on concrete machines.
    {
        use dcds_reductions::tm::{halting_machine, looping_machine};
        use dcds_reductions::tm_to_dcds;
        let halting = tm_to_dcds(&halting_machine(), &[]).unwrap();
        let mut oracle = CommitmentOracle;
        let exp = explore_det(
            &halting,
            Limits {
                max_states: 400,
                max_depth: 4,
            },
            &mut oracle,
        );
        let halted_rel = halting.data.schema.rel_id("halted").unwrap();
        let reached = exp.ts.state_ids().any(|s| {
            exp.ts
                .db(s)
                .contains(halted_rel, &dcds_reldata::Tuple::unit())
        });
        let looping = tm_to_dcds(&looping_machine(), &[]).unwrap();
        let abs = det_abstraction(&looping, 3000);
        let halted_rel2 = looping.data.schema.rel_id("halted").unwrap();
        let safe = check(
            &sugar::ag(Mu::Query(Formula::Atom(halted_rel2, vec![])).not()),
            &abs.ts,
        )
        .unwrap();
        cell(
            &mut out,
            "deterministic, unrestricted",
            "muL/muLA/muLP",
            "U (Thm 4.1, even prop. LTL)",
            &format!(
                "TM reduction runs: halting machine raises `halted` ({reached}); looping machine satisfies G!halted on its saturated abstraction ({safe})"
            ),
        );
    }

    // --- Deterministic, run-bounded, muLA: D (Thms 4.2-4.4). ---
    {
        let dcds = examples::example_4_1();
        let abs = det_abstraction(&dcds, 200);
        // "Along every path, always: some P value is live."
        let p = dcds.data.schema.rel_id("P").unwrap();
        let phi = sugar::ag(Mu::exists(
            "X",
            Mu::live("X").and(Mu::Query(Formula::Atom(
                p,
                vec![dcds_folang::QTerm::var("X")],
            ))),
        ));
        let direct = check(&phi, &abs.ts).unwrap();
        let prop = propositionalize(&phi, &abs.ts.adom_union()).unwrap();
        let via_prop = check_prop(&prop, &abs.ts);
        cell(
            &mut out,
            "deterministic, run-bounded",
            "muLA",
            "D (Thms 4.2-4.4)",
            &format!(
                "Ex 4.1 abstraction saturated ({:?}, {} states); AG exists-live-P: direct={direct}, PROP+prop-mc={via_prop}",
                abs.outcome,
                abs.ts.num_states()
            ),
        );
    }

    // --- Deterministic, run-bounded, muL: ? / no finite abstraction (Thm 4.5). ---
    {
        let dcds = examples::theorem_4_5_system();
        let mut oracle = CommitmentOracle;
        let prefix = explore_det(
            &dcds,
            Limits {
                max_states: 500,
                max_depth: 1,
            },
            &mut oracle,
        );
        // Phi_n: exist n pairwise distinct values each eventually in Q.
        let q = dcds.data.schema.rel_id("Q").unwrap();
        let phi_n = |n: usize| -> Mu {
            let vars: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
            let mut body = Mu::Query(Formula::True);
            for i in 0..n {
                for j in 0..i {
                    body = body.and(Mu::Query(Formula::neq(
                        dcds_folang::QTerm::var(&vars[i]),
                        dcds_folang::QTerm::var(&vars[j]),
                    )));
                }
            }
            for v in &vars {
                body = body
                    .and(Mu::Query(Formula::Atom(q, vec![dcds_folang::QTerm::var(v)])).diamond());
            }
            for v in vars.iter().rev() {
                body = Mu::exists(v.as_str(), body);
            }
            body
        };
        let k = prefix.ts.successors(prefix.ts.initial()).len();
        let holds_k = check(&phi_n(k.min(3)), &prefix.ts).unwrap();
        let fails_over = !check(&phi_n(k + 1), &prefix.ts).unwrap();
        cell(
            &mut out,
            "deterministic, run-bounded",
            "muL",
            "? (no finite abstraction, Thm 4.5)",
            &format!(
                "Phi_n family: prefix with {k} successors satisfies Phi_{} ({holds_k}) but not Phi_{} ({fails_over}) — every finite system is defeated by some Phi_n",
                k.min(3),
                k + 1
            ),
        );
    }

    // --- Nondeterministic, unrestricted: U (Thm 5.1). ---
    cell(
        &mut out,
        "nondeterministic, unrestricted",
        "muL/muLA/muLP",
        "U (Thm 5.1, even prop. LTL)",
        "same Theorem 4.1 reduction (newCell is called with distinct arguments, so service semantics is immaterial)",
    );

    // --- Nondeterministic, state-bounded, muLA: U (Thm 5.2). ---
    {
        let dcds = examples::theorem_5_2_system(&["a", "b"]);
        let obs = observe_state_bound(&dcds, 3, 1000);
        cell(
            &mut out,
            "nondeterministic, state-bounded",
            "muLA",
            "U (Thm 5.2, freeze-LTL)",
            &format!(
                "infinite-data-word system built; state bound witnessed = {} (muLA can refer back to dead data values, encoding freeze registers)",
                obs.max_observed
            ),
        );
    }

    // --- Nondeterministic, state-bounded, muLP: D (Thms 5.3-5.4). ---
    {
        let dcds = examples::example_5_1();
        let res = rcycl(&dcds, 100);
        let r = dcds.data.schema.rel_id("R").unwrap();
        // AG (exists live x: R(x) or Q(x)) — some tuple always present.
        let q = dcds.data.schema.rel_id("Q").unwrap();
        let phi = sugar::ag(Mu::exists(
            "X",
            Mu::live("X").and(
                Mu::Query(Formula::Atom(r, vec![dcds_folang::QTerm::var("X")])).or(Mu::Query(
                    Formula::Atom(q, vec![dcds_folang::QTerm::var("X")]),
                )),
            ),
        ));
        let verdict = check(&phi, &res.ts).unwrap();
        cell(
            &mut out,
            "nondeterministic, state-bounded",
            "muLP",
            "D (Thms 5.3-5.4, RCYCL)",
            &format!(
                "Ex 5.1: RCYCL saturated (complete={}, {} states); AG exists-live-tuple = {verdict}",
                res.complete,
                res.ts.num_states()
            ),
        );
    }

    out
}

/// Appendix E verification: µLP properties of the (small) request system on
/// its RCYCL abstraction, and the µLA property of the audit system on its
/// deterministic abstraction.
pub fn travel_verify() -> String {
    let mut out = String::from("Appendix E — travel reimbursement verification\n\n");

    // Request system (nondeterministic) — RCYCL + muLP.
    eprintln!("[travel_verify] building request system + RCYCL ...");
    let req = travel::request_system_small();
    let res = rcycl(&req, 5000);
    eprintln!(
        "[travel_verify] RCYCL done: complete={}, {} states",
        res.complete,
        res.ts.num_states()
    );
    let _ = writeln!(
        out,
        "request system (small): RCYCL complete = {}, {} states, {} edges",
        res.complete,
        res.ts.num_states(),
        res.ts.num_edges()
    );
    let status = req.data.schema.rel_id("Status").unwrap();
    let travel_rel = req.data.schema.rel_id("Travel").unwrap();
    let upd = req.data.pool.get("readyToUpdate").unwrap();
    let conf = req.data.pool.get("requestConfirmed").unwrap();
    // Liveness: AG (forall live n: Travel(n) -> A[Travel(n)-live U decided])
    // — the paper's first property, with the Travel(n) guard keeping the
    // binding live (muLP-compatible).
    let decided = Mu::Query(Formula::Atom(status, vec![dcds_folang::QTerm::Const(upd)])).or(
        Mu::Query(Formula::Atom(status, vec![dcds_folang::QTerm::Const(conf)])),
    );
    let traveln = Mu::Query(Formula::Atom(
        travel_rel,
        vec![dcds_folang::QTerm::var("N")],
    ));
    let liveness = sugar::ag(Mu::forall(
        "N",
        Mu::live("N").implies(traveln.clone().implies(sugar::au_live(
            &[dcds_folang::Var::new("N")],
            traveln.clone(),
            decided,
        ))),
    ));
    eprintln!("[travel_verify] checking property 1 ...");
    let _ = writeln!(
        out,
        "property 1 (liveness: every filed request is eventually decided): {}",
        check(&liveness, &res.ts).unwrap()
    );
    eprintln!("[travel_verify] property 1 done");
    // Safety: G not(confirmed and no Travel tuple).
    let some_travel = Mu::exists("N", Mu::live("N").and(traveln));
    let confirmed = Mu::Query(Formula::Atom(status, vec![dcds_folang::QTerm::Const(conf)]));
    let safety = sugar::ag(confirmed.and(some_travel.not()).not());
    eprintln!("[travel_verify] checking property 2 ...");
    let _ = writeln!(
        out,
        "property 2 (safety: no confirmation without travel data): {}",
        check(&safety, &res.ts).unwrap()
    );

    // Audit system (deterministic) — abstraction + muLA. (The reduced
    // model: naive quantifier enumeration over the 7-ary faithful model is
    // prohibitive; the property and verdicts are identical.)
    eprintln!("[travel_verify] building audit system abstraction ...");
    let audit = travel::audit_system_small();
    let abs = det_abstraction(&audit, 5000);
    eprintln!(
        "[travel_verify] audit abstraction: {} states",
        abs.ts.num_states()
    );
    let _ = writeln!(
        out,
        "\naudit system: abstraction {:?}, {} states, {} edges",
        abs.outcome,
        abs.ts.num_states(),
        abs.ts.num_edges()
    );
    // muLA: AG(forall i,n: travel with a failed hotel or flight check
    // eventually has passed = fail).
    let tr = audit.data.schema.rel_id("Travel").unwrap();
    let hotel = audit.data.schema.rel_id("Hotel").unwrap();
    let flight = audit.data.schema.rel_id("Flight").unwrap();
    let fail = audit.data.pool.get("fail").unwrap();
    let var = dcds_folang::QTerm::var;
    let hotel_failed = Formula::exists(
        "H",
        Formula::Atom(
            hotel,
            vec![var("I"), var("H"), dcds_folang::QTerm::Const(fail)],
        ),
    );
    let flight_failed = Formula::exists(
        "F",
        Formula::Atom(
            flight,
            vec![var("I"), var("F"), dcds_folang::QTerm::Const(fail)],
        ),
    );
    let premise = Mu::exists(
        "V",
        Mu::live("V").and(Mu::Query(Formula::Atom(
            tr,
            vec![var("I"), var("N"), var("V")],
        ))),
    )
    .and(Mu::Query(hotel_failed.or(flight_failed)));
    let eventually_fail = sugar::ef(Mu::Query(Formula::Atom(
        tr,
        vec![var("I"), var("N"), dcds_folang::QTerm::Const(fail)],
    )));
    let audit_prop = sugar::ag(Mu::forall(
        "I",
        Mu::live("I").implies(Mu::forall(
            "N",
            Mu::live("N").implies(premise.implies(eventually_fail)),
        )),
    ));
    eprintln!("[travel_verify] checking property 3 ...");
    let _ = writeln!(
        out,
        "property 3 (muLA audit: failed component check implies eventual request failure): {}",
        check(&audit_prop, &abs.ts).unwrap()
    );
    eprintln!("[travel_verify] all properties checked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reports_saturation_and_two_successors() {
        let r = fig2();
        assert!(r.contains("ours has 2"));
        assert!(r.contains("Complete"));
    }

    #[test]
    fn fig3_reports_five_successors() {
        let r = fig3();
        assert!(r.contains("ours has 5"));
    }

    #[test]
    fn fig4_shows_growth_and_truncation() {
        let r = fig4();
        assert!(r.contains("Truncated"));
    }

    #[test]
    fn fig5_verdicts() {
        let r = fig5();
        assert!(r.contains("(a) Examples 4.1/4.2 — weakly acyclic: true"));
        assert!(r.contains("(b) Example 4.3 — weakly acyclic: false"));
    }

    #[test]
    fn fig6_and_fig7_contrast() {
        assert!(fig6().contains("complete = false"));
        assert!(fig7().contains("RCYCL complete = true"));
    }

    #[test]
    fn fig8_fig9_fig10_verdicts() {
        let r8 = fig8();
        assert!(r8.contains("(a) Example 4.3/5.1 — GR-acyclic: true"));
        assert!(r8.contains("(b) Example 5.2 — GR-acyclic: false"));
        assert!(r8.contains("(c) Example 5.3 — GR-acyclic: false"));
        let r9 = fig9();
        assert!(r9.contains("GR-acyclic: false"));
        assert!(r9.contains("GR+-acyclic: true"));
        let r10 = fig10();
        assert!(r10.contains("weakly acyclic: true"));
    }

    #[test]
    fn table1_has_all_cells() {
        let t = table1();
        assert!(t.contains("U (Thm 4.1"));
        assert!(t.contains("D (Thms 4.2-4.4)"));
        assert!(t.contains("? (no finite abstraction"));
        assert!(t.contains("U (Thm 5.2"));
        assert!(t.contains("D (Thms 5.3-5.4"));
    }

    #[test]
    fn travel_verification_properties_hold() {
        let r = travel_verify();
        assert!(r.contains("RCYCL complete = true"));
        assert!(
            r.contains("property 1 (liveness: every filed request is eventually decided): true")
        );
        assert!(r.contains("property 2 (safety: no confirmation without travel data): true"));
        assert!(r.contains("property 3 (muLA audit: failed component check implies eventual request failure): true"));
    }
}
