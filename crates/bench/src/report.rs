//! Perf baseline comparison: parse committed `BENCH_*.json` artifacts,
//! extract the comparable metrics, and gate the current run against a
//! baseline directory.
//!
//! Std-only on purpose (the workspace builds offline): the JSON reader is
//! a small recursive-descent parser over the subset the bench artifacts
//! use — objects, arrays, strings, numbers, booleans, `null`. It accepts
//! the full JSON grammar for those forms, so hand-edited baselines parse
//! too.
//!
//! The metric model is deliberately coarse: every comparable number is a
//! flat key (`scale/service_chain(16)/b500000/states_per_sec`) with a
//! [`Kind`] saying which direction is bad. Timings regress when
//! `current / baseline` exceeds the slowdown threshold, throughputs when
//! `baseline / current` does, and sizes (bytes/state) when growth exceeds
//! its own, tighter threshold. Sub-10ms timings are reported but never
//! gated — at that scale the scheduler owns the ratio, not the code.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed JSON value (the artifact subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array, empty otherwise.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric content, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. The whole input must be one value (trailing
/// whitespace allowed).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the longest escape-free run in one step.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

/// Which direction is a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Wall-clock seconds: larger is worse, gated by `max_slowdown`.
    Time,
    /// Work per second: smaller is worse, gated by `max_slowdown`.
    Throughput,
    /// Bytes (per state): larger is worse, gated by `max_growth`.
    Size,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Time => "time",
            Kind::Throughput => "throughput",
            Kind::Size => "size",
        }
    }
}

/// One comparable number out of a bench artifact.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    pub value: f64,
    pub kind: Kind,
}

/// Timings below this are scheduler noise: reported, never gated.
pub const GATE_FLOOR_SECS: f64 = 0.010;

/// Flatten one parsed `BENCH_*.json` document into comparable metrics,
/// keyed so the same extraction on a baseline and a current artifact
/// yields the same keys. Unknown document shapes flatten to nothing.
pub fn extract(doc: &Value) -> BTreeMap<String, Metric> {
    let mut out = BTreeMap::new();
    let bench = doc.get("benchmark").and_then(Value::as_str).unwrap_or("");
    let workloads = doc.get("workloads").map(Value::items).unwrap_or(&[]);
    let mut put = |key: String, value: Option<f64>, kind: Kind| {
        if let Some(v) = value.filter(|v| v.is_finite() && *v > 0.0) {
            out.insert(key, Metric { value: v, kind });
        }
    };
    match bench {
        "abstraction-parallel" => {
            // Thread-scaling ratios are only comparable when the machine
            // can actually run threads in parallel; on a single-core
            // runner `speedup_vs_1` is scheduler noise, so those keys are
            // excluded and only the raw timings gate.
            let scaling_meaningful = doc
                .get("hardware_threads")
                .and_then(Value::as_f64)
                .is_some_and(|n| n > 1.0);
            for w in workloads {
                let name = w.get("name").and_then(Value::as_str).unwrap_or("?");
                for r in w.get("runs").map(Value::items).unwrap_or(&[]) {
                    let threads = r.get("threads").and_then(Value::as_f64).unwrap_or(0.0);
                    put(
                        format!("abstraction/{name}/t{threads}/secs"),
                        r.get("secs").and_then(Value::as_f64),
                        Kind::Time,
                    );
                    if scaling_meaningful && threads > 1.0 {
                        put(
                            format!("abstraction/{name}/t{threads}/speedup_vs_1"),
                            r.get("speedup_vs_1").and_then(Value::as_f64),
                            Kind::Throughput,
                        );
                    }
                }
            }
        }
        "mucalc-staged-engine" => {
            for w in workloads {
                let name = w.get("name").and_then(Value::as_str).unwrap_or("?");
                put(
                    format!("mucalc/{name}/naive_secs"),
                    w.get("naive_secs").and_then(Value::as_f64),
                    Kind::Time,
                );
                for r in w.get("runs").map(Value::items).unwrap_or(&[]) {
                    let threads = r.get("threads").and_then(Value::as_f64).unwrap_or(0.0);
                    put(
                        format!("mucalc/{name}/t{threads}/secs"),
                        r.get("secs").and_then(Value::as_f64),
                        Kind::Time,
                    );
                }
            }
            if let Some(sym) = doc.get("symbolic") {
                let name = sym.get("spec").and_then(Value::as_str).unwrap_or("?");
                put(
                    format!("symbolic/{name}/secs"),
                    sym.get("secs").and_then(Value::as_f64),
                    Kind::Time,
                );
            }
        }
        "query-plans" => {
            for w in workloads {
                let name = w.get("name").and_then(Value::as_str).unwrap_or("?");
                for field in [
                    "nested_loop_secs",
                    "plan_scan_secs",
                    "plan_indexed_secs",
                    "index_build_secs",
                ] {
                    put(
                        format!("query/{name}/{field}"),
                        w.get(field).and_then(Value::as_f64),
                        Kind::Time,
                    );
                }
            }
        }
        "compact-store-scale" => {
            for w in workloads {
                let name = w.get("name").and_then(Value::as_str).unwrap_or("?");
                for r in w.get("runs").map(Value::items).unwrap_or(&[]) {
                    let budget = r.get("budget").and_then(Value::as_f64).unwrap_or(0.0);
                    put(
                        format!("scale/{name}/b{budget}/states_per_sec"),
                        r.get("states_per_sec").and_then(Value::as_f64),
                        Kind::Throughput,
                    );
                    put(
                        format!("scale/{name}/b{budget}/bytes_per_state"),
                        r.get("bytes_per_state").and_then(Value::as_f64),
                        Kind::Size,
                    );
                }
            }
        }
        _ => {}
    }
    out
}

/// Regression thresholds, expressed as worst tolerated factors.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Worst tolerated `current/baseline` for timings (and
    /// `baseline/current` for throughputs).
    pub max_slowdown: f64,
    /// Worst tolerated `current/baseline` for sizes.
    pub max_growth: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_slowdown: 1.75,
            max_growth: 1.5,
        }
    }
}

/// One baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Delta {
    pub key: String,
    pub kind: Kind,
    pub baseline: f64,
    pub current: f64,
    /// The regression factor, oriented so that > 1 is always worse.
    pub factor: f64,
    /// Was this metric eligible for gating (above the noise floor)?
    pub gated: bool,
    /// Did it trip its threshold?
    pub regressed: bool,
}

/// Compare the intersection of two metric sets. Keys present on only one
/// side are skipped: workloads come and go, and a perf gate that fails on
/// a renamed workload gates nothing.
pub fn diff(
    baseline: &BTreeMap<String, Metric>,
    current: &BTreeMap<String, Metric>,
    thresholds: Thresholds,
) -> Vec<Delta> {
    let mut out = Vec::new();
    for (key, base) in baseline {
        let Some(cur) = current.get(key) else {
            continue;
        };
        let factor = match base.kind {
            Kind::Time | Kind::Size => cur.value / base.value,
            Kind::Throughput => base.value / cur.value,
        };
        let gated = match base.kind {
            // Both sides under the floor: the ratio is pure noise.
            Kind::Time => base.value.max(cur.value) >= GATE_FLOOR_SECS,
            Kind::Throughput | Kind::Size => true,
        };
        let limit = match base.kind {
            Kind::Time | Kind::Throughput => thresholds.max_slowdown,
            Kind::Size => thresholds.max_growth,
        };
        out.push(Delta {
            key: key.clone(),
            kind: base.kind,
            baseline: base.value,
            current: cur.value,
            factor,
            gated,
            regressed: gated && factor > limit,
        });
    }
    out
}

/// Render the comparison as the `BENCH_diff.json` artifact.
pub fn diff_json(deltas: &[Delta], thresholds: Thresholds, injected: Option<f64>) -> String {
    let regressions = deltas.iter().filter(|d| d.regressed).count();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"max_slowdown\": {:.3},", thresholds.max_slowdown);
    let _ = writeln!(json, "  \"max_growth\": {:.3},", thresholds.max_growth);
    let _ = writeln!(
        json,
        "  \"injected_slowdown\": {},",
        injected.map_or("null".into(), |f| format!("{f:.3}"))
    );
    let _ = writeln!(json, "  \"compared\": {},", deltas.len());
    let _ = writeln!(json, "  \"regressions\": {regressions},");
    let _ = writeln!(json, "  \"deltas\": [");
    for (i, d) in deltas.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"key\": \"{}\", \"kind\": \"{}\", \"baseline\": {:.6}, \
             \"current\": {:.6}, \"factor\": {:.4}, \"gated\": {}, \"regressed\": {}}}{}",
            d.key.replace('"', "'"),
            d.kind.name(),
            d.baseline,
            d.current,
            d.factor,
            d.gated,
            d.regressed,
            if i + 1 < deltas.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_artifact_shaped_json() {
        let doc = parse(
            r#"{
                "benchmark": "compact-store-scale",
                "workloads": [
                    {"name": "w\"x", "runs": [
                        {"budget": 100000, "states_per_sec": 7000.5,
                         "bytes_per_state": 120.0},
                        {"budget": 500000, "states_per_sec": 6500.0,
                         "bytes_per_state": 130.0}
                    ]}
                ],
                "extra": [null, true, false, -1.5e3]
            }"#,
        )
        .unwrap();
        let metrics = extract(&doc);
        assert_eq!(metrics.len(), 4);
        let k = "scale/w\"x/b100000/states_per_sec";
        assert_eq!(metrics[k].kind, Kind::Throughput);
        assert!((metrics[k].value - 7000.5).abs() < 1e-9);
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1, 2] junk").is_err());
    }

    #[test]
    fn extracts_every_artifact_family() {
        let abs = parse(
            r#"{"benchmark": "abstraction-parallel", "workloads": [
                {"name": "w", "runs": [{"threads": 1, "secs": 0.5},
                                        {"threads": 8, "secs": 0.1}]}]}"#,
        )
        .unwrap();
        assert_eq!(extract(&abs).len(), 2);

        // With real hardware parallelism the speedups gate too; on a
        // single hardware thread they are noise and stay excluded.
        let multi = parse(
            r#"{"benchmark": "abstraction-parallel", "hardware_threads": 8,
                "workloads": [
                {"name": "w", "runs": [
                    {"threads": 1, "secs": 0.5, "speedup_vs_1": 1.0},
                    {"threads": 8, "secs": 0.1, "speedup_vs_1": 5.0}]}]}"#,
        )
        .unwrap();
        let metrics = extract(&multi);
        assert_eq!(metrics.len(), 3);
        assert_eq!(
            metrics["abstraction/w/t8/speedup_vs_1"].kind,
            Kind::Throughput
        );
        let single = parse(
            r#"{"benchmark": "abstraction-parallel", "hardware_threads": 1,
                "workloads": [
                {"name": "w", "runs": [
                    {"threads": 1, "secs": 0.5, "speedup_vs_1": 1.0},
                    {"threads": 8, "secs": 0.4, "speedup_vs_1": 1.25}]}]}"#,
        )
        .unwrap();
        assert!(!extract(&single).keys().any(|k| k.contains("speedup_vs_1")));

        let mc = parse(
            r#"{"benchmark": "mucalc-staged-engine", "workloads": [
                {"name": "m", "naive_secs": 0.2,
                 "runs": [{"threads": 1, "secs": 0.05}]}],
                "symbolic": {"spec": "unbounded_safe", "secs": 0.3}}"#,
        )
        .unwrap();
        let metrics = extract(&mc);
        assert_eq!(metrics.len(), 3);
        assert!(metrics.contains_key("symbolic/unbounded_safe/secs"));
    }

    #[test]
    fn gates_trip_on_regression_and_respect_the_noise_floor() {
        let base = parse(
            r#"{"benchmark": "compact-store-scale", "workloads": [
                {"name": "w", "runs": [
                    {"budget": 1000, "states_per_sec": 8000.0,
                     "bytes_per_state": 100.0}]}]}"#,
        )
        .unwrap();
        let mut current = extract(&base);
        // A 2x throughput collapse trips the default 1.75x gate.
        current
            .get_mut("scale/w/b1000/states_per_sec")
            .unwrap()
            .value = 4000.0;
        let deltas = diff(&extract(&base), &current, Thresholds::default());
        let tput = deltas.iter().find(|d| d.kind == Kind::Throughput).unwrap();
        assert!((tput.factor - 2.0).abs() < 1e-9);
        assert!(tput.regressed);
        // Identical sizes do not.
        assert!(!deltas.iter().any(|d| d.kind == Kind::Size && d.regressed));

        // Sub-floor timings never gate, however wild the ratio.
        let tiny_base = parse(
            r#"{"benchmark": "query-plans", "workloads": [
                {"name": "q", "nested_loop_secs": 0.0001}]}"#,
        )
        .unwrap();
        let tiny_cur = parse(
            r#"{"benchmark": "query-plans", "workloads": [
                {"name": "q", "nested_loop_secs": 0.0009}]}"#,
        )
        .unwrap();
        let deltas = diff(
            &extract(&tiny_base),
            &extract(&tiny_cur),
            Thresholds::default(),
        );
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].gated && !deltas[0].regressed);

        let json = diff_json(&deltas, Thresholds::default(), Some(2.0));
        let round_trip = parse(&json).unwrap();
        assert_eq!(
            round_trip.get("compared").and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            round_trip.get("injected_slowdown").and_then(Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn disjoint_keys_compare_nothing() {
        let a = parse(
            r#"{"benchmark": "abstraction-parallel", "workloads": [
                {"name": "old", "runs": [{"threads": 1, "secs": 1.0}]}]}"#,
        )
        .unwrap();
        let b = parse(
            r#"{"benchmark": "abstraction-parallel", "workloads": [
                {"name": "new", "runs": [{"threads": 1, "secs": 9.0}]}]}"#,
        )
        .unwrap();
        assert!(diff(&extract(&a), &extract(&b), Thresholds::default()).is_empty());
    }
}
