//! Join-heavy synthetic query workloads for the compiled-plan benchmarks.
//!
//! Each workload is a (UCQ, instance) pair sized so the nested-loop
//! evaluator does quadratic-or-worse work while an index probe touches only
//! the matching tuples: chain joins `E0(X0,X1) ⋈ E1(X1,X2) ⋈ ...`,
//! constant-anchored chains, and equality-joined stars. Instances are
//! generated deterministically from [`SplitMix64`] seeds, dense enough
//! (thousands of tuples over a few hundred constants) that every join step
//! has real fan-out.

use crate::rng::SplitMix64;
use dcds_folang::{ConjunctiveQuery, QTerm, Ucq, Var};
use dcds_reldata::{ConstantPool, Instance, RelId, Schema, Tuple};

/// A self-contained query workload: evaluate `query` against `instance`.
pub struct QueryWorkload {
    /// Short workload identifier for reports.
    pub name: &'static str,
    /// Human description of the query shape.
    pub shape: String,
    /// The query under test.
    pub query: Ucq,
    /// The instance it runs against.
    pub instance: Instance,
    /// Total tuples in the instance.
    pub rows: usize,
}

fn random_pairs(
    rng: &mut SplitMix64,
    rel: RelId,
    dom: &[dcds_reldata::Value],
    n: usize,
) -> Vec<(RelId, Tuple)> {
    (0..n)
        .map(|_| {
            let a = dom[rng.gen_range(dom.len())];
            let b = dom[rng.gen_range(dom.len())];
            (rel, Tuple::from([a, b]))
        })
        .collect()
}

fn domain(pool: &mut ConstantPool, size: usize) -> Vec<dcds_reldata::Value> {
    (0..size).map(|i| pool.intern(&format!("c{i}"))).collect()
}

/// Binary chain join `E0(X0,X1), E1(X1,X2)` with head `(X0, X2)`:
/// the nested-loop evaluator rescans `E1` for every `E0` extension
/// (`O(n²)` tuple visits); the indexed plan probes `E1` on its first
/// position (`O(n · fanout)`).
pub fn chain2(tuples_per_rel: usize, constants: usize, seed: u64) -> QueryWorkload {
    let mut rng = SplitMix64::new(seed);
    let mut schema = Schema::new();
    let e0 = schema.add_relation("E0", 2).unwrap();
    let e1 = schema.add_relation("E1", 2).unwrap();
    let mut pool = ConstantPool::new();
    let dom = domain(&mut pool, constants);
    let mut facts = random_pairs(&mut rng, e0, &dom, tuples_per_rel);
    facts.extend(random_pairs(&mut rng, e1, &dom, tuples_per_rel));
    let instance = Instance::from_facts(facts);
    let rows = instance.len();
    let query = Ucq {
        disjuncts: vec![ConjunctiveQuery {
            head: vec![Var::new("X0"), Var::new("X2")],
            atoms: vec![
                (e0, vec![QTerm::var("X0"), QTerm::var("X1")]),
                (e1, vec![QTerm::var("X1"), QTerm::var("X2")]),
            ],
            equalities: vec![],
        }],
    };
    QueryWorkload {
        name: "chain2",
        shape: format!(
            "E0(X0,X1), E1(X1,X2) -> (X0,X2); {tuples_per_rel} tuples/rel, {constants} constants"
        ),
        query,
        instance,
        rows,
    }
}

/// Constant-anchored ternary chain `E0(c0,X1), E1(X1,X2), E2(X2,X3)` with
/// head `(X3)`: the anchor makes the first step a point probe, after which
/// the join fans out along two indexed hops. Selective output, deep probing.
pub fn anchored_chain3(tuples_per_rel: usize, constants: usize, seed: u64) -> QueryWorkload {
    let mut rng = SplitMix64::new(seed);
    let mut schema = Schema::new();
    let e0 = schema.add_relation("E0", 2).unwrap();
    let e1 = schema.add_relation("E1", 2).unwrap();
    let e2 = schema.add_relation("E2", 2).unwrap();
    let mut pool = ConstantPool::new();
    let dom = domain(&mut pool, constants);
    let mut facts = random_pairs(&mut rng, e0, &dom, tuples_per_rel);
    facts.extend(random_pairs(&mut rng, e1, &dom, tuples_per_rel));
    facts.extend(random_pairs(&mut rng, e2, &dom, tuples_per_rel));
    let instance = Instance::from_facts(facts);
    let rows = instance.len();
    let query = Ucq {
        disjuncts: vec![ConjunctiveQuery {
            head: vec![Var::new("X3")],
            atoms: vec![
                (e0, vec![QTerm::Const(dom[0]), QTerm::var("X1")]),
                (e1, vec![QTerm::var("X1"), QTerm::var("X2")]),
                (e2, vec![QTerm::var("X2"), QTerm::var("X3")]),
            ],
            equalities: vec![],
        }],
    };
    QueryWorkload {
        name: "anchored_chain3",
        shape: format!(
            "E0(c0,X1), E1(X1,X2), E2(X2,X3) -> (X3); {tuples_per_rel} tuples/rel, {constants} constants"
        ),
        query,
        instance,
        rows,
    }
}

/// Equality-joined star `A(X,Y), B(X,Z)` with hoisted `Y = Z` and head
/// `(X)`: exercises the equality-check hoisting (the check runs inside the
/// innermost step, not as a post-filter) and two single-position probes.
pub fn star_eq(tuples_per_rel: usize, constants: usize, seed: u64) -> QueryWorkload {
    let mut rng = SplitMix64::new(seed);
    let mut schema = Schema::new();
    let a = schema.add_relation("A", 2).unwrap();
    let b = schema.add_relation("B", 2).unwrap();
    let mut pool = ConstantPool::new();
    let dom = domain(&mut pool, constants);
    let mut facts = random_pairs(&mut rng, a, &dom, tuples_per_rel);
    facts.extend(random_pairs(&mut rng, b, &dom, tuples_per_rel));
    let instance = Instance::from_facts(facts);
    let rows = instance.len();
    let query = Ucq {
        disjuncts: vec![ConjunctiveQuery {
            head: vec![Var::new("X")],
            atoms: vec![
                (a, vec![QTerm::var("X"), QTerm::var("Y")]),
                (b, vec![QTerm::var("X"), QTerm::var("Z")]),
            ],
            equalities: vec![(QTerm::var("Y"), QTerm::var("Z"))],
        }],
    };
    QueryWorkload {
        name: "star_eq",
        shape: format!(
            "A(X,Y), B(X,Z), Y=Z -> (X); {tuples_per_rel} tuples/rel, {constants} constants"
        ),
        query,
        instance,
        rows,
    }
}

/// Union of two chain joins over disjoint relation pairs — checks that the
/// per-disjunct plans and the shared index cooperate.
pub fn union_chains(tuples_per_rel: usize, constants: usize, seed: u64) -> QueryWorkload {
    let mut rng = SplitMix64::new(seed);
    let mut schema = Schema::new();
    let e0 = schema.add_relation("E0", 2).unwrap();
    let e1 = schema.add_relation("E1", 2).unwrap();
    let f0 = schema.add_relation("F0", 2).unwrap();
    let f1 = schema.add_relation("F1", 2).unwrap();
    let mut pool = ConstantPool::new();
    let dom = domain(&mut pool, constants);
    let mut facts = random_pairs(&mut rng, e0, &dom, tuples_per_rel);
    facts.extend(random_pairs(&mut rng, e1, &dom, tuples_per_rel));
    facts.extend(random_pairs(&mut rng, f0, &dom, tuples_per_rel));
    facts.extend(random_pairs(&mut rng, f1, &dom, tuples_per_rel));
    let instance = Instance::from_facts(facts);
    let rows = instance.len();
    let chain = |r0: RelId, r1: RelId| ConjunctiveQuery {
        head: vec![Var::new("X0"), Var::new("X2")],
        atoms: vec![
            (r0, vec![QTerm::var("X0"), QTerm::var("X1")]),
            (r1, vec![QTerm::var("X1"), QTerm::var("X2")]),
        ],
        equalities: vec![],
    };
    QueryWorkload {
        name: "union_chains",
        shape: format!(
            "E0⋈E1 ∪ F0⋈F1 -> (X0,X2); {tuples_per_rel} tuples/rel, {constants} constants"
        ),
        query: Ucq {
            disjuncts: vec![chain(e0, e1), chain(f0, f1)],
        },
        instance,
        rows,
    }
}

/// The standard workload set at a given scale factor (`scale = 1` is the
/// committed-baseline size).
pub fn standard(scale: usize) -> Vec<QueryWorkload> {
    let s = scale.max(1);
    vec![
        chain2(2500 * s, 250, 11),
        anchored_chain3(2000 * s, 120, 12),
        star_eq(3000 * s, 200, 13),
        union_chains(1500 * s, 150, 14),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_folang::{eval_ucq, CompiledPlan, EvalCtx};
    use dcds_reldata::InstanceIndex;
    use std::collections::BTreeSet;

    #[test]
    fn workloads_agree_across_evaluators() {
        for w in standard(1) {
            let plan = CompiledPlan::compile(&w.query, &BTreeSet::new()).expect(w.name);
            let naive = eval_ucq(&w.query, &w.instance);
            let scanned = plan.eval(&EvalCtx::scan(&w.instance), &Default::default());
            let index = InstanceIndex::build(&w.instance, plan.access_paths());
            let indexed = plan.eval(
                &EvalCtx::with_index(&w.instance, &index),
                &Default::default(),
            );
            assert_eq!(naive, scanned, "{}: scan plan disagrees", w.name);
            assert_eq!(naive, indexed, "{}: indexed plan disagrees", w.name);
            assert!(!naive.is_empty(), "{}: degenerate workload", w.name);
        }
    }
}
