//! # dcds-bench
//!
//! Experiment harness for the DCDS verification stack:
//!
//! * [`examples`] — the paper's running examples (4.1, 4.2, 4.3, 5.2, 5.3,
//!   and the nondeterministic variant 5.1) as reusable constructors;
//! * [`travel`] — the Appendix E travel-reimbursement systems: the
//!   faithful request/audit models used for static analysis and figure
//!   regeneration, plus a reduced request model small enough for RCYCL and
//!   µLP model checking end-to-end;
//! * [`synthetic`] — parametric workload families (copy chains, service
//!   chains/cycles, accumulators, flush ladders, random systems) used by
//!   the Criterion benchmarks to measure scaling;
//! * [`figures`] — regeneration of every figure and table of the paper's
//!   narrative (Figures 2–10, Table 1), each returning a plain-text report
//!   printed by the corresponding `fig*`/`table1` binary;
//! * [`report`] — the perf-regression side of `perf_report`: a std-only
//!   JSON reader for the committed `BENCH_*.json` baselines, metric
//!   extraction, and threshold gating (`--baseline`).

pub mod examples;
pub mod figures;
pub mod queries;
pub mod report;
pub mod rng;
pub mod synthetic;
pub mod travel;
