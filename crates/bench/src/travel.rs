//! The Appendix E travel-reimbursement DCDSs.
//!
//! Two subsystems, exactly as in the paper:
//!
//! * the **request system** — an employee files a travel reimbursement
//!   request (name, hotel and flight cost information filled in by
//!   nondeterministic input services); a monitor verifies it, looping
//!   through updates until acceptance. Not GR-acyclic but **GR⁺-acyclic**
//!   (Figure 9), hence state-bounded and µLP-verifiable.
//! * the **audit system** — accepted requests are re-checked by calling a
//!   **deterministic** currency-conversion service. **Weakly acyclic**
//!   (Figure 10), hence run-bounded and µLA-verifiable.
//!
//! The faithful request model issues eleven input calls per initiation;
//! that is fine for static analysis, but the `EVALS` enumeration of
//! Algorithm RCYCL is exponential in the per-step call count, so for
//! end-to-end model checking we also provide [`request_system_small`] — the
//! same process shape with hotel/flight information reduced to one column
//! each, preserving every verdict (GR⁺ but not GR; same µLP properties).

use dcds_core::{Dcds, DcdsBuilder, ServiceKind};

const STATUSES: [&str; 4] = [
    "readyForRequest",
    "readyToVerify",
    "readyToUpdate",
    "requestConfirmed",
];

/// Status-domain FO constraint: `makeDecision` (a nondeterministic call)
/// may only produce genuine statuses, as the paper's prose stipulates.
fn status_constraint() -> String {
    let disj: Vec<String> = STATUSES.iter().map(|s| format!("S = '{s}'")).collect();
    format!("forall S . Status(S) -> {}", disj.join(" | "))
}

/// After a `VerifyRequest` step (marked by the transient `Verified` flag),
/// the status must be a genuine *decision* — the paper's `MAKEDECISION`
/// "returns 'requestConfirmed' ... and returns 'readyToUpdate' ..." made
/// into a constraint.
fn decision_constraint() -> &'static str {
    "Verified() -> (forall S . Status(S) -> S = 'readyToUpdate' | S = 'requestConfirmed')"
}

/// The faithful request system (Appendix E).
pub fn request_system() -> Dcds {
    DcdsBuilder::new()
        .relation("Tru", 0)
        .relation("Status", 1)
        .relation("Travel", 1)
        .relation("Hotel", 5)
        .relation("Flight", 5)
        .relation("Verified", 0)
        .service("inEName", 0, ServiceKind::Nondeterministic)
        .service("inHName", 0, ServiceKind::Nondeterministic)
        .service("inHDate", 0, ServiceKind::Nondeterministic)
        .service("inHPrice", 0, ServiceKind::Nondeterministic)
        .service("inHCurrency", 0, ServiceKind::Nondeterministic)
        .service("inHPinUSD", 0, ServiceKind::Nondeterministic)
        .service("inFDate", 0, ServiceKind::Nondeterministic)
        .service("inFNum", 0, ServiceKind::Nondeterministic)
        .service("inFPrice", 0, ServiceKind::Nondeterministic)
        .service("inFCurrency", 0, ServiceKind::Nondeterministic)
        .service("inFPUSD", 0, ServiceKind::Nondeterministic)
        .service("makeDecision", 0, ServiceKind::Nondeterministic)
        .init_fact("Tru", &[])
        .init_fact("Status", &["readyForRequest"])
        .fo_constraint(&status_constraint())
        .fo_constraint(decision_constraint())
        .action("InitiateRequest", &[], |a| {
            a.effect("Tru()", "Tru(), Status('readyToVerify')");
            a.effect("Tru()", "Travel(inEName())");
            a.effect(
                "Tru()",
                "Hotel(inHName(), inHDate(), inHPrice(), inHCurrency(), inHPinUSD())",
            );
            a.effect(
                "Tru()",
                "Flight(inFDate(), inFNum(), inFPrice(), inFCurrency(), inFPUSD())",
            );
        })
        .action("VerifyRequest", &[], |a| {
            a.effect("Tru()", "Tru(), Status(makeDecision()), Verified()");
            a.effect("Travel(N)", "Travel(N)");
            a.effect("Hotel(X1, X2, X3, X4, X5)", "Hotel(X1, X2, X3, X4, X5)");
            a.effect("Flight(X1, X2, X3, X4, X5)", "Flight(X1, X2, X3, X4, X5)");
        })
        .action("UpdateRequest", &[], |a| {
            a.effect("Tru()", "Tru(), Status('readyToVerify')");
            a.effect("Travel(N)", "Travel(N)");
            a.effect(
                "Tru()",
                "Hotel(inHName(), inHDate(), inHPrice(), inHCurrency(), inHPinUSD())",
            );
            a.effect(
                "Tru()",
                "Flight(inFDate(), inFNum(), inFPrice(), inFCurrency(), inFPUSD())",
            );
        })
        .action("AcceptRequest", &[], |a| {
            a.effect("Tru()", "Tru()");
            a.effect("Status('requestConfirmed')", "Status('readyForRequest')");
        })
        .rule("Status('readyForRequest')", "InitiateRequest")
        .rule("Status('readyToVerify')", "VerifyRequest")
        .rule("Status('readyToUpdate')", "UpdateRequest")
        .rule("Status('requestConfirmed')", "AcceptRequest")
        .build()
        .expect("request system is well-formed")
}

/// The reduced request system: hotel information collapsed to one column,
/// flight information dropped (every analysis verdict and property is
/// preserved; the per-step call count falls from eleven to two, keeping
/// the `EVALS` enumeration of Algorithm RCYCL small).
pub fn request_system_small() -> Dcds {
    DcdsBuilder::new()
        .relation("Tru", 0)
        .relation("Status", 1)
        .relation("Travel", 1)
        .relation("Hotel", 1)
        .relation("Verified", 0)
        .service("inEName", 0, ServiceKind::Nondeterministic)
        .service("inHPrice", 0, ServiceKind::Nondeterministic)
        .service("makeDecision", 0, ServiceKind::Nondeterministic)
        .init_fact("Tru", &[])
        .init_fact("Status", &["readyForRequest"])
        .fo_constraint(&status_constraint())
        .fo_constraint(decision_constraint())
        .action("InitiateRequest", &[], |a| {
            a.effect("Tru()", "Tru(), Status('readyToVerify')");
            a.effect("Tru()", "Travel(inEName())");
            a.effect("Tru()", "Hotel(inHPrice())");
        })
        .action("VerifyRequest", &[], |a| {
            a.effect("Tru()", "Tru(), Status(makeDecision()), Verified()");
            a.effect("Travel(N)", "Travel(N)");
            a.effect("Hotel(X)", "Hotel(X)");
        })
        .action("UpdateRequest", &[], |a| {
            a.effect("Tru()", "Tru(), Status('readyToVerify')");
            a.effect("Travel(N)", "Travel(N)");
            a.effect("Tru()", "Hotel(inHPrice())");
        })
        .action("AcceptRequest", &[], |a| {
            a.effect("Tru()", "Tru()");
            a.effect("Status('requestConfirmed')", "Status('readyForRequest')");
        })
        .rule("Status('readyForRequest')", "InitiateRequest")
        .rule("Status('readyToVerify')", "VerifyRequest")
        .rule("Status('readyToUpdate')", "UpdateRequest")
        .rule("Status('requestConfirmed')", "AcceptRequest")
        .build()
        .expect("small request system is well-formed")
}

/// The audit system (Appendix E), deterministic `convertAndCheck/4`.
///
/// Relations follow the paper with a `passed` column on `Travel`, `Hotel`,
/// `Flight`; check outcomes are the constants `ok`/`fail` (`pending`
/// initially).
pub fn audit_system() -> Dcds {
    DcdsBuilder::new()
        .relation("Tru", 0)
        .relation("Status", 1)
        .relation("Travel", 3)
        .relation("Hotel", 7)
        .relation("Flight", 7)
        .service("convertAndCheck", 4, ServiceKind::Deterministic)
        .init_fact("Tru", &[])
        .init_fact("Status", &["checkPrice"])
        // One logged request: id t1 by emp1, with hotel and flight rows.
        .init_fact("Travel", &["t1", "emp1", "pending"])
        .init_fact(
            "Hotel",
            &["t1", "hname", "d1", "p1", "cur1", "usd1", "pending"],
        )
        .init_fact(
            "Flight",
            &["t1", "fnum", "d2", "p2", "cur2", "usd2", "pending"],
        )
        .fo_constraint(
            "forall T, N, P . Travel(T, N, P) -> P = 'pending' | P = 'ok' | P = 'fail'",
        )
        .fo_constraint(
            "forall X1, X2, X3, X4, X5, X6, P . Hotel(X1, X2, X3, X4, X5, X6, P)              -> P = 'pending' | P = 'ok' | P = 'fail'",
        )
        .fo_constraint(
            "forall X1, X2, X3, X4, X5, X6, P . Flight(X1, X2, X3, X4, X5, X6, P)              -> P = 'pending' | P = 'ok' | P = 'fail'",
        )
        .action("CheckPrice", &[], |a| {
            a.effect("Tru()", "Tru(), Status('checkTravel')");
            a.effect("Travel(I, N, V)", "Travel(I, N, V)");
            a.effect(
                "Hotel(X1, X2, D, P, C, U, X7)",
                "Hotel(X1, X2, D, P, C, U, convertAndCheck(D, P, C, U))",
            );
            a.effect(
                "Flight(X1, X2, D, P, C, U, X7)",
                "Flight(X1, X2, D, P, C, U, convertAndCheck(D, P, C, U))",
            );
        })
        .action("CheckTravel", &[], |a| {
            a.effect("Tru()", "Tru(), Status('checkPrice')");
            a.effect(
                "Travel(X1, X2, X3) & Hotel(X1, H2, H3, H4, H5, H6, PH) \
                 & Flight(X1, F2, F3, F4, F5, F6, PF) & !(PH = ok & PF = ok)",
                "Travel(X1, X2, fail)",
            );
            a.effect(
                "Travel(X1, X2, X3) & Hotel(X1, H2, H3, H4, H5, H6, ok) \
                 & Flight(X1, F2, F3, F4, F5, F6, ok)",
                "Travel(X1, X2, ok)",
            );
            a.effect(
                "Hotel(X1, X2, X3, X4, X5, X6, X7)",
                "Hotel(X1, X2, X3, X4, X5, X6, X7)",
            );
            a.effect(
                "Flight(X1, X2, X3, X4, X5, X6, X7)",
                "Flight(X1, X2, X3, X4, X5, X6, X7)",
            );
        })
        .rule("Status('checkPrice')", "CheckPrice")
        .rule("Status('checkTravel')", "CheckTravel")
        .build()
        .expect("audit system is well-formed")
}

/// The reduced audit system used for end-to-end µLA verification: hotel and
/// flight rows collapsed to `(trId, data, passed)` and the conversion
/// service to `convertAndCheck/1` — the dependency-graph verdict and the
/// audit property are unchanged, but quantifier enumeration stays small.
pub fn audit_system_small() -> Dcds {
    DcdsBuilder::new()
        .relation("Tru", 0)
        .relation("Status", 1)
        .relation("Travel", 3)
        .relation("Hotel", 3)
        .relation("Flight", 3)
        .service("convertAndCheck", 1, ServiceKind::Deterministic)
        .init_fact("Tru", &[])
        .init_fact("Status", &["checkPrice"])
        .init_fact("Travel", &["t1", "emp1", "pending"])
        .init_fact("Hotel", &["t1", "p1", "pending"])
        .init_fact("Flight", &["t1", "p2", "pending"])
        .fo_constraint(
            "forall T, N, P . Travel(T, N, P) -> P = 'pending' | P = 'ok' | P = 'fail'",
        )
        .fo_constraint("forall T, D, P . Hotel(T, D, P) -> P = 'pending' | P = 'ok' | P = 'fail'")
        .fo_constraint("forall T, D, P . Flight(T, D, P) -> P = 'pending' | P = 'ok' | P = 'fail'")
        .action("CheckPrice", &[], |a| {
            a.effect("Tru()", "Tru(), Status('checkTravel')");
            a.effect("Travel(I, N, V)", "Travel(I, N, V)");
            a.effect("Hotel(X1, D, X3)", "Hotel(X1, D, convertAndCheck(D))");
            a.effect("Flight(X1, D, X3)", "Flight(X1, D, convertAndCheck(D))");
        })
        .action("CheckTravel", &[], |a| {
            a.effect("Tru()", "Tru(), Status('checkPrice')");
            a.effect(
                "Travel(X1, X2, X3) & Hotel(X1, H2, PH) & Flight(X1, F2, PF)                  & !(PH = ok & PF = ok)",
                "Travel(X1, X2, fail)",
            );
            a.effect(
                "Travel(X1, X2, X3) & Hotel(X1, H2, ok) & Flight(X1, F2, ok)",
                "Travel(X1, X2, ok)",
            );
            a.effect("Hotel(X1, X2, X3)", "Hotel(X1, X2, X3)");
            a.effect("Flight(X1, X2, X3)", "Flight(X1, X2, X3)");
        })
        .rule("Status('checkPrice')", "CheckPrice")
        .rule("Status('checkTravel')", "CheckTravel")
        .build()
        .expect("small audit system is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_analysis::{dataflow_graph, dependency_graph, gr_acyclicity, is_weakly_acyclic};

    #[test]
    fn request_system_is_gr_plus_but_not_gr_acyclic() {
        for dcds in [request_system(), request_system_small()] {
            let df = dataflow_graph(&dcds);
            assert!(!gr_acyclicity::is_gr_acyclic(&df), "Figure 9: not GR");
            assert!(
                gr_acyclicity::is_gr_plus_acyclic(&df),
                "Figure 9: GR+ via action disjointness"
            );
        }
    }

    #[test]
    fn audit_system_is_weakly_acyclic() {
        for dcds in [audit_system(), audit_system_small()] {
            let dg = dependency_graph(&dcds);
            assert!(is_weakly_acyclic(&dg), "Figure 10");
        }
    }

    #[test]
    fn audit_abstraction_saturates() {
        let dcds = audit_system_small();
        let abs = dcds_abstraction::det_abstraction(&dcds, 5000);
        assert_eq!(abs.outcome, dcds_abstraction::AbsOutcome::Complete);
        assert!(abs.ts.num_states() >= 3);
    }

    #[test]
    fn small_request_rcycl_saturates() {
        let dcds = request_system_small();
        let res = dcds_abstraction::rcycl(&dcds, 5000);
        assert!(res.complete, "GR+-acyclic ⇒ state-bounded ⇒ RCYCL halts");
        // Each state holds at most one Status, Travel, and Hotel value.
        assert!(res.ts.max_state_adom() <= 3);
    }
}
