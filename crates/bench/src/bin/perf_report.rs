//! Std-only timing harness for the abstraction engines (no criterion).
//!
//! Times `det_abstraction` and RCYCL on the synthetic workload families
//! along two axes:
//!
//! * **thread scaling** — the phase-split parallel BFS at 1, 2, 4, 8
//!   workers (wall-clock; speedups only materialise on multicore
//!   hardware, so the report records `hardware_threads` next to them);
//! * **canonical-key fast path** — the signature-bucketed lazy index
//!   against the eager ablation that canonicalises every successor (the
//!   pre-fast-path cost model), at a fixed thread count.
//!
//! Writes `BENCH_abstraction.json` into the current directory so the perf
//! trajectory is tracked across commits without a benchmarking framework,
//! and prints the same numbers as a table.
//!
//! Usage: `cargo run --release --bin perf_report [-- --reps N]`

use dcds_abstraction::{det_abstraction_opts, rcycl_opts, AbsOptions, DedupStrategy};
use dcds_bench::synthetic;
use dcds_core::Dcds;
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`reps` wall-clock seconds for `f` (best-of suppresses
/// scheduler noise better than means on shared machines).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.unwrap())
}

struct ThreadRun {
    threads: usize,
    secs: f64,
    states: usize,
    edges: usize,
}

struct Workload {
    name: &'static str,
    engine: &'static str,
    runs: Vec<ThreadRun>,
    /// Fraction of dedup probes resolved by the signature fast path alone.
    sig_hit_rate: Option<f64>,
    /// eager-ablation seconds at 1 thread (det workloads only).
    eager_secs: Option<f64>,
    /// lazy seconds at 1 thread (denominator partner of `eager_secs`).
    lazy_secs: Option<f64>,
}

fn bench_det(name: &'static str, dcds: &Dcds, max_states: usize, reps: usize) -> Workload {
    let mut runs = Vec::new();
    let mut sig_hit_rate = None;
    for threads in THREAD_COUNTS {
        let (secs, abs) = time_best(reps, || {
            det_abstraction_opts(
                dcds,
                max_states,
                AbsOptions {
                    strategy: DedupStrategy::CanonicalKey,
                    threads,
                    eager_keys: false,
                },
            )
        });
        sig_hit_rate = abs.counters.sig_hit_rate();
        runs.push(ThreadRun {
            threads,
            secs,
            states: abs.ts.num_states(),
            edges: abs.ts.num_edges(),
        });
    }
    let (eager_secs, _) = time_best(reps, || {
        det_abstraction_opts(
            dcds,
            max_states,
            AbsOptions {
                strategy: DedupStrategy::CanonicalKey,
                threads: 1,
                eager_keys: true,
            },
        )
    });
    Workload {
        name,
        engine: "det_abstraction",
        lazy_secs: Some(runs[0].secs),
        runs,
        sig_hit_rate,
        eager_secs: Some(eager_secs),
    }
}

fn bench_rcycl(name: &'static str, dcds: &Dcds, max_states: usize, reps: usize) -> Workload {
    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let (secs, res) = time_best(reps, || rcycl_opts(dcds, max_states, threads));
        runs.push(ThreadRun {
            threads,
            secs,
            states: res.ts.num_states(),
            edges: res.ts.num_edges(),
        });
    }
    Workload {
        name,
        engine: "rcycl",
        runs,
        sig_hit_rate: None,
        eager_secs: None,
        lazy_secs: None,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn main() {
    let reps = std::env::args()
        .skip_while(|a| a != "--reps")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let workloads = vec![
        bench_det(
            "parallel_rings(3), max_states=600",
            &synthetic::parallel_rings(3),
            600,
            reps,
        ),
        bench_det(
            "service_chain(8), max_states=300",
            &synthetic::service_chain(8),
            300,
            reps,
        ),
        bench_det(
            "service_cycle(6), max_states=1500",
            &synthetic::service_cycle(6),
            1500,
            reps,
        ),
        bench_rcycl("flush_ladder, max_states=2000", &synthetic::flush_ladder(), 2000, reps),
        bench_rcycl(
            "accumulator(2), max_states=250",
            &synthetic::accumulator(2),
            250,
            reps,
        ),
    ];

    // Human-readable table.
    println!("abstraction perf report  (hardware_threads = {hardware_threads}, best of {reps})");
    for w in &workloads {
        let base = w.runs[0].secs;
        println!("\n{} — {}", w.engine, w.name);
        println!("  {:>7}  {:>10}  {:>8}  {:>7}  {:>7}", "threads", "secs", "speedup", "states", "edges");
        for r in &w.runs {
            println!(
                "  {:>7}  {:>10.4}  {:>7.2}x  {:>7}  {:>7}",
                r.threads,
                r.secs,
                base / r.secs,
                r.states,
                r.edges
            );
        }
        if let Some(rate) = w.sig_hit_rate {
            println!(
                "  signature fast path: {:.1}% of dedup probes resolved without canonicalisation",
                rate * 100.0
            );
        }
        if let (Some(eager), Some(lazy)) = (w.eager_secs, w.lazy_secs) {
            println!(
                "  canonical-key fast path: lazy {lazy:.4}s vs eager {eager:.4}s ({:.2}x) at 1 thread",
                eager / lazy
            );
        }
    }

    // JSON artifact.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"abstraction-parallel\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (wi, w) in workloads.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"engine\": \"{}\",", w.engine);
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, r) in w.runs.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"threads\": {}, \"secs\": {}, \"speedup_vs_1\": {}, \"states\": {}, \"edges\": {}}}{}",
                r.threads,
                json_f64(r.secs),
                json_f64(w.runs[0].secs / r.secs),
                r.states,
                r.edges,
                if ri + 1 < w.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ],");
        let _ = writeln!(
            json,
            "      \"sig_fast_path_hit_rate\": {},",
            w.sig_hit_rate.map(json_f64).unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            json,
            "      \"eager_keys_secs_1_thread\": {},",
            w.eager_secs.map(json_f64).unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            json,
            "      \"fast_path_speedup_1_thread\": {}",
            match (w.eager_secs, w.lazy_secs) {
                (Some(e), Some(l)) => json_f64(e / l),
                _ => "null".into(),
            }
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_abstraction.json", &json).expect("write BENCH_abstraction.json");
    println!("\nwrote BENCH_abstraction.json");
}
