//! Std-only timing harness for the abstraction engines and the staged
//! µ-calculus model-checking engine (no criterion).
//!
//! Times `det_abstraction` and RCYCL on the synthetic workload families
//! along two axes:
//!
//! * **thread scaling** — the phase-split parallel BFS at 1, 2, 4, 8
//!   workers (wall-clock; speedups only materialise on multicore
//!   hardware, so the report records `hardware_threads` next to them);
//! * **canonical-key fast path** — the signature-bucketed lazy index
//!   against the eager ablation that canonicalises every successor (the
//!   pre-fast-path cost model), at a fixed thread count.
//!
//! Then times the staged model checker (`dcds_mucalc::engine`) against the
//! naive Kleene evaluator (`dcds_mucalc::mc`, kept as the differential
//! oracle) on properties over real abstractions, at 1, 2, 4, 8 threads,
//! recording the query-extension cache hit rate and checking that both
//! evaluators agree on the full extension.
//!
//! Finally, times the compiled query plans (`dcds_folang::plan`) against
//! the nested-loop `eval_ucq` on join-heavy synthetic workloads and on the
//! queries of the travel-request system, at 1 thread, with and without the
//! per-state hash index — asserting bit-identical results.
//!
//! Last, drives the **compact state store** (arena + delta states +
//! copy-on-write indexes) to 500k/1M-state budgets — far beyond what the
//! owned-`Instance` engines are run at — recording states/sec, the
//! deterministic bytes-per-state high-water estimate, and the delta-share
//! ratio, and asserting (a) bytes/state grows less than 2× from 100k to
//! 500k states and (b) the compact engines are bit-identical to the
//! legacy ones (states, edges, pool, every counter) on an overlapping
//! budget at 1, 2, 4 and 8 threads.
//!
//! Writes `BENCH_abstraction.json`, `BENCH_mucalc.json`, `BENCH_query.json`
//! and `BENCH_scale.json` into the current directory so the perf
//! trajectory is tracked across commits without a benchmarking framework,
//! and prints the same numbers as tables. Every artifact embeds a
//! `metrics_snapshot` from an instrumented run of a representative
//! workload (for `BENCH_scale` that includes the `store.*` gauges).
//! `BENCH_mucalc.json` also carries a `symbolic` stanza: the backward
//! regression engine proving the `unbounded_safe` AG property, with the
//! full `SymCounters` (iterations, kept clauses, subsumption, peak
//! frontier) next to its wall time.
//!
//! Usage: `cargo run --release --bin perf_report [-- --reps N] [-- --scale K]
//! [-- --baseline DIR] [-- --smoke]`
//!
//! `--scale` multiplies the workload sizes (state budgets, tuple counts);
//! the committed baselines use `--scale 1`. The scale stage's budgets are
//! fixed (they *are* the scale axis).
//!
//! `--baseline DIR` turns the run into a **regression gate**: after
//! benchmarking, the current numbers are compared against the committed
//! `BENCH_*.json` in `DIR`, the per-metric deltas are written to
//! `BENCH_diff.json`, and the process exits nonzero when any timing or
//! throughput degrades past `--max-slowdown` (default 1.75x) or any size
//! metric grows past `--max-growth` (default 1.5x). Only keys present on
//! both sides are compared, and sub-10ms timings never gate (scheduler
//! noise). `--inject-slowdown F` is a self-test hook that degrades every
//! current timing/throughput by `F` before the comparison — CI uses it to
//! prove the gate actually trips. `--smoke` shrinks the run for CI: one
//! rep, the heavyweight scale stage skipped, and no `BENCH_*.json`
//! rewritten (only `BENCH_diff.json` is produced).

use dcds_abstraction::{
    det_abstraction_compact_opts, det_abstraction_compact_traced, det_abstraction_opts,
    det_abstraction_traced, rcycl_compact_opts, rcycl_opts, AbsOptions, DedupStrategy,
};
use dcds_bench::report::{self, Kind, Thresholds};
use dcds_bench::{examples, queries, synthetic, travel};
use dcds_core::{parse_dcds, Dcds, EngineCounters, Ts};
use dcds_folang::{eval_ucq, CompiledPlan, EvalCtx, Formula, QTerm, Ucq};
use dcds_mucalc::mc::{eval, Valuation};
use dcds_mucalc::{check_traced, eval_with_opts, parse_mu, sugar, McCounters, McOptions, Mu};
use dcds_obs::{Obs, ObsConfig};
use dcds_reldata::{Instance, InstanceIndex};
use dcds_symbolic::{check_safety, SymOptions, SymVerdict};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`reps` wall-clock seconds for `f` (best-of suppresses
/// scheduler noise better than means on shared machines).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.unwrap())
}

struct ThreadRun {
    threads: usize,
    secs: f64,
    states: usize,
    edges: usize,
}

struct Workload {
    name: String,
    engine: &'static str,
    runs: Vec<ThreadRun>,
    /// Fraction of dedup probes resolved by the signature fast path alone.
    sig_hit_rate: Option<f64>,
    /// eager-ablation seconds at 1 thread (det workloads only).
    eager_secs: Option<f64>,
    /// lazy seconds at 1 thread (denominator partner of `eager_secs`).
    lazy_secs: Option<f64>,
    /// Engine counters (thread-independent; taken from the last run).
    counters: EngineCounters,
}

fn bench_det(name: String, dcds: &Dcds, max_states: usize, reps: usize) -> Workload {
    let mut runs = Vec::new();
    let mut sig_hit_rate = None;
    let mut counters = EngineCounters::default();
    for threads in THREAD_COUNTS {
        let (secs, abs) = time_best(reps, || {
            det_abstraction_opts(
                dcds,
                max_states,
                AbsOptions {
                    strategy: DedupStrategy::CanonicalKey,
                    threads,
                    ..AbsOptions::default()
                },
            )
        });
        sig_hit_rate = abs.counters.sig_hit_rate();
        counters = abs.counters;
        runs.push(ThreadRun {
            threads,
            secs,
            states: abs.ts.num_states(),
            edges: abs.ts.num_edges(),
        });
    }
    let (eager_secs, _) = time_best(reps, || {
        det_abstraction_opts(
            dcds,
            max_states,
            AbsOptions {
                strategy: DedupStrategy::CanonicalKey,
                threads: 1,
                eager_keys: true,
                ..AbsOptions::default()
            },
        )
    });
    Workload {
        name,
        engine: "det_abstraction",
        lazy_secs: Some(runs[0].secs),
        runs,
        sig_hit_rate,
        eager_secs: Some(eager_secs),
        counters,
    }
}

fn bench_rcycl(name: String, dcds: &Dcds, max_states: usize, reps: usize) -> Workload {
    let mut runs = Vec::new();
    let mut counters = EngineCounters::default();
    for threads in THREAD_COUNTS {
        let (secs, res) = time_best(reps, || rcycl_opts(dcds, max_states, threads));
        counters = res.counters;
        runs.push(ThreadRun {
            threads,
            secs,
            states: res.ts.num_states(),
            edges: res.ts.num_edges(),
        });
    }
    Workload {
        name,
        engine: "rcycl",
        runs,
        sig_hit_rate: None,
        eager_secs: None,
        lazy_secs: None,
        counters,
    }
}

struct McThreadRun {
    threads: usize,
    secs: f64,
}

struct McWorkload {
    name: &'static str,
    property: &'static str,
    states: usize,
    /// Naive Kleene evaluator (the differential oracle), 1 thread.
    naive_secs: f64,
    /// Staged engine at each thread count.
    runs: Vec<McThreadRun>,
    counters: McCounters,
    holds: bool,
}

/// Time the naive evaluator vs the staged engine on one (system, property)
/// pair, asserting extension-level agreement at every thread count.
fn bench_mc(
    name: &'static str,
    property: &'static str,
    ts: &Ts,
    phi: &Mu,
    reps: usize,
) -> McWorkload {
    let (naive_secs, oracle) = time_best(reps, || eval(phi, ts, &mut Valuation::default()));
    let mut runs = Vec::new();
    let mut counters = McCounters::default();
    for threads in THREAD_COUNTS {
        let (secs, (ext, c)) = time_best(reps, || {
            eval_with_opts(phi, ts, &mut Valuation::default(), McOptions { threads })
        });
        assert_eq!(ext, oracle, "engine disagrees with naive oracle on {name}");
        counters = c;
        runs.push(McThreadRun { threads, secs });
    }
    McWorkload {
        name,
        property,
        states: ts.num_states(),
        naive_secs,
        runs,
        counters,
        holds: oracle.contains(&ts.initial()),
    }
}

fn mc_workloads(reps: usize) -> Vec<McWorkload> {
    let mut out = Vec::new();

    // Example 5.1 (nondeterministic) — RCYCL pruning, a µLP safety property.
    let e51 = examples::example_5_1();
    let pruning = rcycl_opts(&e51, 100, 1);
    assert!(pruning.complete);
    let r = e51.data.schema.rel_id("R").unwrap();
    let q = e51.data.schema.rel_id("Q").unwrap();
    let phi = sugar::ag(Mu::exists(
        "X",
        Mu::live("X").and(
            Mu::Query(Formula::Atom(r, vec![QTerm::var("X")]))
                .or(Mu::Query(Formula::Atom(q, vec![QTerm::var("X")]))),
        ),
    ));
    out.push(bench_mc(
        "example_5_1 via RCYCL",
        "AG exists x. live(x) & (R(x) | Q(x))",
        &pruning.ts,
        &phi,
        reps,
    ));

    // service_cycle(6) (deterministic) — a µLP reachability property.
    let cyc = synthetic::service_cycle(6);
    let abs = det_abstraction_opts(&cyc, 1500, AbsOptions::default());
    let last = cyc.data.schema.rel_id("R5").unwrap();
    let phi = sugar::ef(Mu::exists(
        "X",
        Mu::live("X").and(Mu::Query(Formula::Atom(last, vec![QTerm::var("X")]))),
    ));
    out.push(bench_mc(
        "service_cycle(6) via det abstraction",
        "EF exists x. live(x) & R5(x)",
        &abs.ts,
        &phi,
        reps,
    ));

    // Travel request system (Appendix E) — RCYCL, the paper's safety
    // property "no confirmation without travel data".
    let req = travel::request_system_small();
    let res = rcycl_opts(&req, 5000, 1);
    assert!(res.complete);
    let status = req.data.schema.rel_id("Status").unwrap();
    let travel_rel = req.data.schema.rel_id("Travel").unwrap();
    let conf = req.data.pool.get("requestConfirmed").unwrap();
    let confirmed = Mu::Query(Formula::Atom(status, vec![QTerm::Const(conf)]));
    let some_travel = Mu::exists(
        "N",
        Mu::live("N").and(Mu::Query(Formula::Atom(travel_rel, vec![QTerm::var("N")]))),
    );
    let phi = sugar::ag(confirmed.and(some_travel.not()).not());
    out.push(bench_mc(
        "travel request (small) via RCYCL",
        "AG !(confirmed & no Travel tuple)",
        &res.ts,
        &phi,
        reps,
    ));

    out
}

struct QueryRun {
    name: String,
    shape: String,
    /// Total tuples across the instances evaluated.
    rows: usize,
    /// Total result rows (identical across the three evaluators).
    results: usize,
    /// Nested-loop `eval_ucq`, 1 thread.
    nested_secs: f64,
    /// Compiled plan, relation scans only.
    plan_scan_secs: f64,
    /// Compiled plan through the prebuilt hash index.
    plan_indexed_secs: f64,
    /// One-off index construction (amortised across a state's evaluations
    /// in the engines; reported separately here).
    index_build_secs: f64,
}

/// Time one (query, instances) pair through the three evaluators, asserting
/// bit-identical result sets.
fn bench_query_set(
    name: String,
    shape: String,
    pairs: &[(Ucq, CompiledPlan)],
    instances: &[Instance],
    reps: usize,
) -> QueryRun {
    let empty = dcds_folang::Assignment::new();
    let (nested_secs, naive) = time_best(reps, || {
        let mut out = Vec::new();
        for inst in instances {
            for (ucq, _) in pairs {
                out.push(eval_ucq(ucq, inst));
            }
        }
        out
    });
    let (plan_scan_secs, scanned) = time_best(reps, || {
        let mut out = Vec::new();
        for inst in instances {
            for (_, plan) in pairs {
                out.push(plan.eval(&EvalCtx::scan(inst), &empty));
            }
        }
        out
    });
    let paths: BTreeSet<_> = pairs.iter().flat_map(|(_, p)| p.access_paths()).collect();
    let (index_build_secs, indexes) = time_best(reps, || {
        instances
            .iter()
            .map(|inst| InstanceIndex::build(inst, paths.iter().cloned()))
            .collect::<Vec<_>>()
    });
    let (plan_indexed_secs, indexed) = time_best(reps, || {
        let mut out = Vec::new();
        for (inst, idx) in instances.iter().zip(&indexes) {
            for (_, plan) in pairs {
                out.push(plan.eval(&EvalCtx::with_index(inst, idx), &empty));
            }
        }
        out
    });
    assert_eq!(naive, scanned, "{name}: scan plan diverged from eval_ucq");
    assert_eq!(
        naive, indexed,
        "{name}: indexed plan diverged from eval_ucq"
    );
    QueryRun {
        name,
        shape,
        rows: instances.iter().map(Instance::len).sum(),
        results: naive.iter().map(BTreeSet::len).sum(),
        nested_secs,
        plan_scan_secs,
        plan_indexed_secs,
        index_build_secs,
    }
}

fn query_runs(reps: usize, scale: usize) -> Vec<QueryRun> {
    let mut out = Vec::new();
    for w in queries::standard(scale) {
        let plan = CompiledPlan::compile(&w.query, &BTreeSet::new())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        out.push(bench_query_set(
            w.name.to_string(),
            w.shape.clone(),
            &[(w.query, plan)],
            std::slice::from_ref(&w.instance),
            reps,
        ));
    }

    // The travel-request system (Appendix E): every rule condition and
    // effect q+ in the compilable fragment, evaluated over every state of
    // the RCYCL abstraction — the exact queries the transition hot path
    // runs, on the instances it runs them against.
    let req = travel::request_system_small();
    let res = rcycl_opts(&req, 5000, 1);
    assert!(res.complete);
    let instances: Vec<Instance> = res.ts.state_ids().map(|s| res.ts.db(s).clone()).collect();
    let mut ucqs: Vec<Ucq> = req
        .process
        .rules
        .iter()
        .filter_map(|r| Ucq::from_formula(&r.condition))
        .collect();
    for action in &req.process.actions {
        for effect in &action.effects {
            ucqs.push(effect.qplus.clone());
        }
    }
    let total = ucqs.len();
    let pairs: Vec<(Ucq, CompiledPlan)> = ucqs
        .into_iter()
        .filter_map(|u| {
            CompiledPlan::compile(&u, &BTreeSet::new())
                .ok()
                .map(|p| (u, p))
        })
        .collect();
    out.push(bench_query_set(
        "travel_request_queries".into(),
        format!(
            "{}/{} rule-condition + effect-q+ queries over {} RCYCL states",
            pairs.len(),
            total,
            instances.len()
        ),
        &pairs,
        &instances,
        reps,
    ));
    out
}

/// One compact-engine run at a fixed state budget.
struct ScaleRun {
    budget: usize,
    secs: f64,
    states: usize,
    edges: usize,
    /// Deterministic store heap estimate (arena + nodes + dedup) —
    /// the bytes-per-state high-water mark is `bytes / states`.
    bytes: usize,
    facts_interned: usize,
    delta_share: f64,
    complete: bool,
    /// Dedup probe work: exact canonical keys materialised.
    canon_keys_computed: u64,
    /// Canonicalization search: vertex orders fully encoded by the
    /// branch-and-bound labeling (1 per key on symmetric classes).
    canon_orders_enumerated: u64,
    /// Canonicalization search: permutation subtrees cut on prefix
    /// divergence before reaching a full order.
    canon_prune_cutoffs: u64,
    /// Dedup probe work: probes answered by an empty signature group.
    sig_filter_skips: u64,
    /// Dedup probe work: pairwise checks the index made unnecessary.
    iso_checks_avoided: u64,
    /// Dedup probe work: backtracking isomorphism checks actually run.
    iso_checks_performed: u64,
}

impl ScaleRun {
    fn states_per_sec(&self) -> f64 {
        self.states as f64 / self.secs
    }
    fn bytes_per_state(&self) -> f64 {
        self.bytes as f64 / self.states.max(1) as f64
    }
}

struct ScaleWorkload {
    name: String,
    engine: &'static str,
    runs: Vec<ScaleRun>,
    /// Budget pair `(lo, hi)` the regression gates compare.
    gate_budgets: (usize, usize),
    /// bytes/state at the `hi` budget over bytes/state at the `lo` budget
    /// — the flat-memory check (must stay below 2.0).
    bytes_growth: f64,
    /// states/s at the `hi` budget over states/s at the `lo` budget — the
    /// dedup-throughput check (det engines must stay at or above 0.5; a
    /// linear class-index scan collapses this towards `lo / hi`).
    throughput_ratio: f64,
    /// Budget at which compact and legacy were asserted bit-identical at
    /// every thread count.
    overlap_budget: usize,
}

fn scale_run_det(dcds: &Dcds, budget: usize) -> ScaleRun {
    let t0 = Instant::now();
    let abs = det_abstraction_compact_opts(
        dcds,
        budget,
        AbsOptions {
            threads: 1,
            ..AbsOptions::default()
        },
    );
    let stats = abs.ts.store_stats();
    ScaleRun {
        budget,
        secs: t0.elapsed().as_secs_f64(),
        states: abs.ts.num_states(),
        edges: abs.ts.num_edges(),
        bytes: stats.bytes,
        facts_interned: stats.facts_interned,
        delta_share: stats.delta_share(),
        complete: abs.outcome == dcds_abstraction::AbsOutcome::Complete,
        canon_keys_computed: abs.counters.canon_keys_computed,
        canon_orders_enumerated: abs.counters.canon_orders_enumerated,
        canon_prune_cutoffs: abs.counters.canon_prune_cutoffs,
        sig_filter_skips: abs.counters.sig_filter_skips,
        iso_checks_avoided: abs.counters.iso_checks_avoided,
        iso_checks_performed: abs.counters.iso_checks_performed,
    }
}

fn scale_run_rcycl(dcds: &Dcds, budget: usize) -> ScaleRun {
    let t0 = Instant::now();
    let res = rcycl_compact_opts(dcds, budget, 1);
    let stats = res.ts.store_stats();
    ScaleRun {
        budget,
        secs: t0.elapsed().as_secs_f64(),
        states: res.ts.num_states(),
        edges: res.ts.num_edges(),
        bytes: stats.bytes,
        facts_interned: stats.facts_interned,
        delta_share: stats.delta_share(),
        complete: res.complete,
        canon_keys_computed: res.counters.canon_keys_computed,
        canon_orders_enumerated: res.counters.canon_orders_enumerated,
        canon_prune_cutoffs: res.counters.canon_prune_cutoffs,
        sig_filter_skips: res.counters.sig_filter_skips,
        iso_checks_avoided: res.counters.iso_checks_avoided,
        iso_checks_performed: res.counters.iso_checks_performed,
    }
}

/// Ratio of `measure` between the workload's two gate budgets
/// (`hi` over `lo`); the regression gates compare against 1.
fn gate_ratio(runs: &[ScaleRun], budgets: (usize, usize), measure: fn(&ScaleRun) -> f64) -> f64 {
    let at = |budget: usize| {
        runs.iter()
            .find(|r| r.budget == budget)
            .map(measure)
            .expect("scale stage must include both gate budgets")
    };
    at(budgets.1) / at(budgets.0)
}

/// Assert the det compact engine is bit-identical to the legacy engine —
/// same states, edges, outcome, minted pool, and every counter (including
/// canonical keys computed) — at every thread count.
fn assert_det_overlap(dcds: &Dcds, budget: usize) {
    for threads in THREAD_COUNTS {
        let opts = AbsOptions {
            threads,
            ..AbsOptions::default()
        };
        let legacy = det_abstraction_opts(dcds, budget, opts);
        let compact = det_abstraction_compact_opts(dcds, budget, opts);
        assert_eq!(
            compact.ts.to_ts(),
            legacy.ts,
            "det compact diverged from legacy at {threads} threads"
        );
        assert_eq!(compact.outcome, legacy.outcome);
        assert_eq!(compact.pool.len(), legacy.pool.len());
        assert_eq!(
            compact.counters, legacy.counters,
            "det compact counters diverged at {threads} threads"
        );
    }
}

/// The RCYCL analogue of [`assert_det_overlap`].
fn assert_rcycl_overlap(dcds: &Dcds, budget: usize) {
    for threads in THREAD_COUNTS {
        let legacy = rcycl_opts(dcds, budget, threads);
        let compact = rcycl_compact_opts(dcds, budget, threads);
        assert_eq!(
            compact.ts.to_ts(),
            legacy.ts,
            "rcycl compact diverged from legacy at {threads} threads"
        );
        assert_eq!(compact.complete, legacy.complete);
        assert_eq!(compact.used_values, legacy.used_values);
        assert_eq!(compact.triples_processed, legacy.triples_processed);
        assert_eq!(compact.pool.len(), legacy.pool.len());
        assert_eq!(
            compact.counters, legacy.counters,
            "rcycl compact counters diverged at {threads} threads"
        );
    }
}

fn scale_workloads() -> Vec<ScaleWorkload> {
    // Both families hold the state *size* flat no matter how far
    // exploration runs (bounded instances, bounded service-call maps), so
    // bytes/state isolates the store's own per-state overhead.
    let det_overlap = 10_000;
    let chain = synthetic::service_chain(16);
    assert_det_overlap(&chain, det_overlap);
    let det = ScaleWorkload {
        name: "service_chain(16)".into(),
        engine: "det_abstraction_compact",
        runs: vec![
            scale_run_det(&chain, 100_000),
            scale_run_det(&chain, 500_000),
            // Stretch budget: one million det states.
            scale_run_det(&chain, 1_000_000),
        ],
        gate_budgets: (100_000, 500_000),
        bytes_growth: 0.0,
        throughput_ratio: 0.0,
        overlap_budget: det_overlap,
    };

    // Collision-heavy det family: whole levels share one signature, so a
    // linear signature-bucket scan is quadratic here; the keyed class
    // index keeps it linear. Budgets used to stop at 12k because the
    // quantified triple-collision constraint was evaluated by |adom|^4
    // enumeration (~19 states/s, 700 s per rep); with guided-join
    // constraint evaluation and the pruned canonical search the family
    // runs around 1000 states/s, so the stage now drives enough states
    // for the throughput and bytes gates to measure the dedup indexes
    // rather than successor generation.
    let coll_overlap = 2_000;
    let coll = synthetic::collision_pairs(12);
    assert_det_overlap(&coll, coll_overlap);
    let collisions = ScaleWorkload {
        name: "collision_pairs(12)".into(),
        engine: "det_abstraction_compact",
        runs: vec![scale_run_det(&coll, 30_000), scale_run_det(&coll, 60_000)],
        gate_budgets: (30_000, 60_000),
        bytes_growth: 0.0,
        throughput_ratio: 0.0,
        overlap_budget: coll_overlap,
    };

    let rcycl_overlap = 20_000;
    let rings = synthetic::phased_rings(5);
    assert_rcycl_overlap(&rings, rcycl_overlap);
    let rcycl = ScaleWorkload {
        name: "phased_rings(5)".into(),
        engine: "rcycl_compact",
        runs: vec![
            scale_run_rcycl(&rings, 100_000),
            scale_run_rcycl(&rings, 500_000),
            // Stretch budget: one million states.
            scale_run_rcycl(&rings, 1_000_000),
        ],
        gate_budgets: (100_000, 500_000),
        bytes_growth: 0.0,
        throughput_ratio: 0.0,
        overlap_budget: rcycl_overlap,
    };

    let mut out = vec![det, collisions, rcycl];
    for w in &mut out {
        let (lo, hi) = w.gate_budgets;
        w.bytes_growth = gate_ratio(&w.runs, w.gate_budgets, ScaleRun::bytes_per_state);
        assert!(
            w.bytes_growth < 2.0,
            "{}: bytes/state grew {:.2}x from {lo} to {hi} states — the store is no longer flat",
            w.name,
            w.bytes_growth
        );
        w.throughput_ratio = gate_ratio(&w.runs, w.gate_budgets, ScaleRun::states_per_sec);
        // Dedup-throughput regression gate: with the exact-match class
        // index, det states/s must not collapse as the pool grows.
        if w.engine.starts_with("det") {
            assert!(
                w.throughput_ratio >= 0.5,
                "{}: det throughput fell to {:.2}x from {lo} to {hi} states — \
                 dedup is super-linear again",
                w.name,
                w.throughput_ratio
            );
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn arg_usize(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn arg_f64(name: &str, default: f64) -> f64 {
    arg_str(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn has_arg(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The symbolic-engine stanza of `BENCH_mucalc.json`: prove the
/// `unbounded_safe` AG property (undecidable for the explicit engines —
/// the spec is run-unbounded) by backward regression, and report the wall
/// time next to the full `SymCounters`.
fn bench_symbolic(reps: usize) -> (f64, dcds_symbolic::SymCounters) {
    let src = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../specs/unbounded_safe.dcds"
    ));
    let dcds = parse_dcds(src).expect("unbounded_safe.dcds parses");
    let mut schema = dcds.data.schema.clone();
    let mut pool = dcds.data.pool.clone();
    let phi = parse_mu(
        "nu Z . (forall Y . Flag(Y) -> Y = 'ok') & [] Z",
        &mut schema,
        &mut pool,
    )
    .expect("safety property parses");
    let (secs, run) = time_best(reps, || {
        check_safety(&dcds, &phi, &SymOptions::default()).expect("symbolic run succeeds")
    });
    assert!(
        matches!(run.verdict, SymVerdict::Holds(_)),
        "unbounded_safe must verify symbolically"
    );
    (secs, run.counters)
}

/// Absolute states/s floor for `collision_pairs` in the scale stage — the
/// workload the keyed dedup + guided constraint evaluation exist to fix.
/// The enumerate-all-orders kernel over |adom|^4 constraint checks managed
/// ~19 states/s; the current engine runs around 1000 states/s on one core.
/// The floor sits far under the healthy figure to absorb slow runners, but
/// any structural regression toward the old quadratic behaviour lands well
/// below it regardless of what the baseline artifact recorded.
const COLLISION_FLOOR_STATES_PER_SEC: f64 = 200.0;

/// Compare the current artifacts against the baselines in `dir`, write
/// `BENCH_diff.json`, and exit nonzero on a gated regression.
fn gate_against_baseline(
    dir: &str,
    artifacts: &[(&str, String)],
    thresholds: Thresholds,
    inject: Option<f64>,
) {
    let mut base_metrics = std::collections::BTreeMap::new();
    let mut cur_metrics = std::collections::BTreeMap::new();
    for (name, current_json) in artifacts {
        let path = format!("{dir}/{name}");
        let src = match std::fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("perf gate: baseline {path} unreadable ({e}) — skipped");
                continue;
            }
        };
        match report::parse(&src) {
            Ok(doc) => base_metrics.extend(report::extract(&doc)),
            Err(e) => {
                eprintln!("perf gate: baseline {path} is not valid JSON: {e}");
                std::process::exit(2);
            }
        }
        let doc = report::parse(current_json).expect("generated artifact is valid JSON");
        cur_metrics.extend(report::extract(&doc));
    }
    if let Some(f) = inject {
        for m in cur_metrics.values_mut() {
            match m.kind {
                Kind::Time => m.value *= f,
                Kind::Throughput => m.value /= f,
                Kind::Size => {}
            }
        }
        eprintln!("perf gate: injected a {f:.2}x slowdown into every current timing/throughput");
    }
    let deltas = report::diff(&base_metrics, &cur_metrics, thresholds);
    let diff_json = report::diff_json(&deltas, thresholds, inject);
    std::fs::write("BENCH_diff.json", &diff_json).expect("write BENCH_diff.json");

    println!(
        "\nperf gate vs {dir}  (slowdown <= {:.2}x, growth <= {:.2}x; sub-10ms timings ungated)",
        thresholds.max_slowdown, thresholds.max_growth
    );
    let mut regressions = 0usize;
    for d in &deltas {
        let verdict = if d.regressed {
            regressions += 1;
            "REGRESSED"
        } else if !d.gated {
            "noise"
        } else {
            "ok"
        };
        println!(
            "  {:<60}  base {:>12.4}  now {:>12.4}  x{:<6.2} {}",
            d.key, d.baseline, d.current, d.factor, verdict
        );
    }
    println!(
        "  {} metrics compared, {} regression(s); wrote BENCH_diff.json",
        deltas.len(),
        regressions
    );
    // Baseline-independent floor: collision_pairs throughput must clear an
    // absolute minimum even if the baseline artifact predates the keyed
    // kernel (a relative gate against a 19 states/s baseline passes
    // anything).
    for (key, m) in &cur_metrics {
        if key.starts_with("scale/collision_pairs") && key.ends_with("/states_per_sec") {
            let ok = m.value >= COLLISION_FLOOR_STATES_PER_SEC;
            println!(
                "  {:<60}  floor {:>12.4}  now {:>12.4}         {}",
                key,
                COLLISION_FLOOR_STATES_PER_SEC,
                m.value,
                if ok { "ok" } else { "REGRESSED" }
            );
            if !ok {
                regressions += 1;
            }
        }
    }
    if regressions > 0 {
        eprintln!("perf gate: FAILED with {regressions} regression(s)");
        std::process::exit(1);
    }
}

fn main() {
    let smoke = has_arg("--smoke");
    let reps = if smoke { 1 } else { arg_usize("--reps", 3) };
    let scale = arg_usize("--scale", 1).max(1);
    let baseline_dir = arg_str("--baseline");
    let thresholds = Thresholds {
        max_slowdown: arg_f64("--max-slowdown", 1.75),
        max_growth: arg_f64("--max-growth", 1.5),
    };
    let inject = arg_str("--inject-slowdown").and_then(|v| v.parse::<f64>().ok());
    let mut artifacts: Vec<(&str, String)> = Vec::new();
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // State budgets sized so the 1-thread runs take long enough for thread
    // scaling to be visible above the phase-split overhead (the original
    // ~10 ms budgets measured only overhead); `--scale` multiplies them.
    let rings_budget = 2000 * scale;
    let chain_budget = 1200 * scale;
    let cycle_budget = 5000 * scale;
    let ladder_budget = 8000 * scale;
    let acc_budget = 300 * scale;
    let workloads = vec![
        bench_det(
            format!("parallel_rings(3), max_states={rings_budget}"),
            &synthetic::parallel_rings(3),
            rings_budget,
            reps,
        ),
        bench_det(
            format!("service_chain(10), max_states={chain_budget}"),
            &synthetic::service_chain(10),
            chain_budget,
            reps,
        ),
        bench_det(
            format!("service_cycle(6), max_states={cycle_budget}"),
            &synthetic::service_cycle(6),
            cycle_budget,
            reps,
        ),
        bench_rcycl(
            format!("flush_ladder, max_states={ladder_budget}"),
            &synthetic::flush_ladder(),
            ladder_budget,
            reps,
        ),
        bench_rcycl(
            format!("accumulator(3), max_states={acc_budget}"),
            &synthetic::accumulator(3),
            acc_budget,
            reps,
        ),
    ];

    // Human-readable table.
    println!("abstraction perf report  (hardware_threads = {hardware_threads}, best of {reps})");
    if hardware_threads == 1 {
        println!(
            "  NOTE: single hardware thread — the speedup column is scheduler \
             noise, not thread scaling, and is excluded from regression gates"
        );
    }
    for w in &workloads {
        let base = w.runs[0].secs;
        println!("\n{} — {}", w.engine, w.name);
        println!(
            "  {:>7}  {:>10}  {:>8}  {:>7}  {:>7}",
            "threads", "secs", "speedup", "states", "edges"
        );
        for r in &w.runs {
            println!(
                "  {:>7}  {:>10.4}  {:>7.2}x  {:>7}  {:>7}",
                r.threads,
                r.secs,
                base / r.secs,
                r.states,
                r.edges
            );
        }
        if let Some(rate) = w.sig_hit_rate {
            println!(
                "  signature fast path: {:.1}% of dedup probes resolved without canonicalisation",
                rate * 100.0
            );
        }
        if let (Some(eager), Some(lazy)) = (w.eager_secs, w.lazy_secs) {
            println!(
                "  canonical-key fast path: lazy {lazy:.4}s vs eager {eager:.4}s ({:.2}x) at 1 thread",
                eager / lazy
            );
        }
    }

    // One instrumented run so the artifact carries a full metrics snapshot
    // (registry counters, gauges, and non-timing histograms) next to the
    // wall-clock numbers.
    let obs = Obs::enabled(ObsConfig::default());
    let _ = det_abstraction_traced(
        &synthetic::service_cycle(6),
        1500,
        AbsOptions::default(),
        &obs,
    );
    let snapshot = obs.finish().expect("obs enabled").metrics;

    // JSON artifact.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"abstraction-parallel\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    // On a single-core runner the speedup tables measure scheduler noise;
    // `report::extract` keys off `hardware_threads` to keep `speedup_vs_1`
    // out of the regression gates in that case.
    let _ = writeln!(
        json,
        "  \"speedup_vs_1_is_noise\": {},",
        hardware_threads == 1
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (wi, w) in workloads.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"engine\": \"{}\",", w.engine);
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, r) in w.runs.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"threads\": {}, \"secs\": {}, \"speedup_vs_1\": {}, \"states\": {}, \"edges\": {}}}{}",
                r.threads,
                json_f64(r.secs),
                json_f64(w.runs[0].secs / r.secs),
                r.states,
                r.edges,
                if ri + 1 < w.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ],");
        let _ = writeln!(
            json,
            "      \"sig_fast_path_hit_rate\": {},",
            w.sig_hit_rate
                .map(json_f64)
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            json,
            "      \"eager_keys_secs_1_thread\": {},",
            w.eager_secs.map(json_f64).unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            json,
            "      \"fast_path_speedup_1_thread\": {},",
            match (w.eager_secs, w.lazy_secs) {
                (Some(e), Some(l)) => json_f64(e / l),
                _ => "null".into(),
            }
        );
        let _ = writeln!(json, "      \"counters\": {}", w.counters.to_json());
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"metrics_snapshot\": {}", snapshot.to_json());
    json.push_str("}\n");
    if !smoke {
        std::fs::write("BENCH_abstraction.json", &json).expect("write BENCH_abstraction.json");
        println!("\nwrote BENCH_abstraction.json");
    }
    artifacts.push(("BENCH_abstraction.json", json));

    // ---- µ-calculus model-checking engine ----
    let mc_loads = mc_workloads(reps);
    println!("\nmucalc perf report  (hardware_threads = {hardware_threads}, best of {reps})");
    for w in &mc_loads {
        println!(
            "\n{} — {} ({} states, holds = {})",
            w.name, w.property, w.states, w.holds
        );
        println!("  naive oracle: {:>10.4}s", w.naive_secs);
        println!("  {:>7}  {:>10}  {:>12}", "threads", "secs", "vs naive");
        for r in &w.runs {
            println!(
                "  {:>7}  {:>10.4}  {:>11.2}x",
                r.threads,
                r.secs,
                w.naive_secs / r.secs
            );
        }
        if let Some(rate) = w.counters.cache_hit_rate() {
            println!(
                "  query-extension cache: {:.1}% hit rate ({} hits / {} misses), \
                 {} fixpoint iterations",
                rate * 100.0,
                w.counters.cache_hits,
                w.counters.cache_misses,
                w.counters.fixpoint_iterations
            );
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"mucalc-staged-engine\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (wi, w) in mc_loads.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(
            json,
            "      \"property\": \"{}\",",
            w.property.replace('"', "'")
        );
        let _ = writeln!(json, "      \"states\": {},", w.states);
        let _ = writeln!(json, "      \"holds\": {},", w.holds);
        let _ = writeln!(json, "      \"naive_secs\": {},", json_f64(w.naive_secs));
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, r) in w.runs.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"threads\": {}, \"secs\": {}, \"speedup_vs_naive\": {}}}{}",
                r.threads,
                json_f64(r.secs),
                json_f64(w.naive_secs / r.secs),
                if ri + 1 < w.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ],");
        let _ = writeln!(
            json,
            "      \"cache_hit_rate\": {},",
            w.counters
                .cache_hit_rate()
                .map(json_f64)
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(json, "      \"counters\": {}", w.counters.to_json());
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < mc_loads.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    // Instrumented run of the staged checker on the Example-5.1 property
    // so the artifact carries the registry snapshot next to the timings.
    let obs = Obs::enabled(ObsConfig::default());
    {
        let e51 = examples::example_5_1();
        let pruning = rcycl_opts(&e51, 100, 1);
        let r = e51.data.schema.rel_id("R").unwrap();
        let q = e51.data.schema.rel_id("Q").unwrap();
        let phi = sugar::ag(Mu::exists(
            "X",
            Mu::live("X").and(
                Mu::Query(Formula::Atom(r, vec![QTerm::var("X")]))
                    .or(Mu::Query(Formula::Atom(q, vec![QTerm::var("X")]))),
            ),
        ));
        let _ = check_traced(&phi, &pruning.ts, McOptions { threads: 1 }, &obs)
            .expect("mucalc snapshot run");
    }
    let snapshot = obs.finish().expect("obs enabled").metrics;

    // Symbolic backward-reachability stanza: the engine the explicit
    // benchmarks cannot cover (the spec is run-unbounded).
    let (sym_secs, sym_counters) = bench_symbolic(reps);
    println!(
        "\nsymbolic engine — unbounded_safe, AG flag stays 'ok' (best of {reps})\n  \
         {sym_secs:.4}s, {} iterations, {} kept clauses, {} subsumed, peak frontier {}",
        sym_counters.iterations,
        sym_counters.kept,
        sym_counters.subsumed,
        sym_counters.peak_frontier
    );
    let _ = writeln!(
        json,
        "  \"symbolic\": {{\"spec\": \"unbounded_safe\", \
         \"property\": \"AG forall Y . Flag(Y) -> Y = 'ok'\", \"holds\": true, \
         \"secs\": {}, \"counters\": {}}},",
        json_f64(sym_secs),
        sym_counters.to_json()
    );

    let _ = writeln!(json, "  \"metrics_snapshot\": {}", snapshot.to_json());
    json.push_str("}\n");
    if !smoke {
        std::fs::write("BENCH_mucalc.json", &json).expect("write BENCH_mucalc.json");
        println!("\nwrote BENCH_mucalc.json");
    }
    artifacts.push(("BENCH_mucalc.json", json));

    // ---- compiled query plans + per-state indexes ----
    let q_runs = query_runs(reps, scale);
    println!("\nquery-plan perf report  (1 thread, best of {reps}, scale {scale})");
    for r in &q_runs {
        println!("\n{} — {}", r.name, r.shape);
        println!("  {} rows in, {} result rows", r.rows, r.results);
        println!(
            "  nested-loop {:>9.4}s | plan(scan) {:>9.4}s ({:.2}x) | plan+index {:>9.4}s ({:.2}x, +{:.4}s build)",
            r.nested_secs,
            r.plan_scan_secs,
            r.nested_secs / r.plan_scan_secs,
            r.plan_indexed_secs,
            r.nested_secs / r.plan_indexed_secs,
            r.index_build_secs,
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"query-plans\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"bit_identical\": true,");
    let _ = writeln!(json, "  \"workloads\": [");
    for (ri, r) in q_runs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"shape\": \"{}\",", r.shape.replace('"', "'"));
        let _ = writeln!(json, "      \"rows\": {},", r.rows);
        let _ = writeln!(json, "      \"results\": {},", r.results);
        let _ = writeln!(
            json,
            "      \"nested_loop_secs\": {},",
            json_f64(r.nested_secs)
        );
        let _ = writeln!(
            json,
            "      \"plan_scan_secs\": {},",
            json_f64(r.plan_scan_secs)
        );
        let _ = writeln!(
            json,
            "      \"plan_indexed_secs\": {},",
            json_f64(r.plan_indexed_secs)
        );
        let _ = writeln!(
            json,
            "      \"index_build_secs\": {},",
            json_f64(r.index_build_secs)
        );
        let _ = writeln!(
            json,
            "      \"speedup_plan_scan\": {},",
            json_f64(r.nested_secs / r.plan_scan_secs)
        );
        let _ = writeln!(
            json,
            "      \"speedup_plan_indexed\": {}",
            json_f64(r.nested_secs / r.plan_indexed_secs)
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if ri + 1 < q_runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    // Instrumented abstraction of the travel-request system: the exact
    // plan/index counters (`query.*`) the hot path produces on the
    // workload benchmarked above.
    let obs = Obs::enabled(ObsConfig::default());
    let _ = dcds_abstraction::rcycl_traced(&travel::request_system_small(), 5000, 1, &obs);
    let snapshot = obs.finish().expect("obs enabled").metrics;
    let _ = writeln!(json, "  \"metrics_snapshot\": {}", snapshot.to_json());
    json.push_str("}\n");
    if !smoke {
        std::fs::write("BENCH_query.json", &json).expect("write BENCH_query.json");
        println!("\nwrote BENCH_query.json");
    }
    artifacts.push(("BENCH_query.json", json));

    // ---- compact state store at scale ----
    // The scale stage drives half-million-state budgets; in smoke mode it
    // is skipped outright (its keys simply drop out of the comparison).
    if smoke {
        println!("\nsmoke mode: scale stage skipped");
        if let Some(dir) = &baseline_dir {
            gate_against_baseline(dir, &artifacts, thresholds, inject);
        }
        return;
    }
    let scale_loads = scale_workloads();
    println!("\ncompact-store scale report  (1 thread; legacy parity asserted at 1/2/4/8)");
    for w in &scale_loads {
        println!("\n{} — {}", w.engine, w.name);
        println!(
            "  {:>9}  {:>9}  {:>10}  {:>9}  {:>9}  {:>11}  {:>8}",
            "budget", "secs", "states/s", "B/state", "delta", "facts", "complete"
        );
        for r in &w.runs {
            println!(
                "  {:>9}  {:>9.1}  {:>10.0}  {:>9.1}  {:>8.1}%  {:>11}  {:>8}",
                r.budget,
                r.secs,
                r.states_per_sec(),
                r.bytes_per_state(),
                r.delta_share * 100.0,
                r.facts_interned,
                r.complete
            );
        }
        if let Some(r) = w.runs.last() {
            println!(
                "  canon at {} states: {} keys ({} orders, {} cutoffs), \
                 {} sig-bucket skips, {} iso checks",
                r.states,
                r.canon_keys_computed,
                r.canon_orders_enumerated,
                r.canon_prune_cutoffs,
                r.sig_filter_skips,
                r.iso_checks_performed
            );
        }
        println!(
            "  {}k -> {}k: bytes/state x{:.2} (must stay < 2x), states/s x{:.2}{}; \
             bit-identical to legacy at {} states, threads 1/2/4/8",
            w.gate_budgets.0 / 1000,
            w.gate_budgets.1 / 1000,
            w.bytes_growth,
            w.throughput_ratio,
            if w.engine.starts_with("det") {
                " (must stay >= 0.5x)"
            } else {
                ""
            },
            w.overlap_budget
        );
    }

    // Instrumented small compact run so the artifact carries the store
    // gauges (`store.bytes`, `store.facts_interned`, `store.delta_states`).
    let obs = Obs::enabled(ObsConfig::default());
    let _ = det_abstraction_compact_traced(
        &synthetic::service_chain(16),
        10_000,
        AbsOptions {
            threads: 1,
            ..AbsOptions::default()
        },
        &obs,
    );
    let snapshot = obs.finish().expect("obs enabled").metrics;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"compact-store-scale\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"legacy_parity_thread_counts\": [1, 2, 4, 8],");
    let _ = writeln!(json, "  \"workloads\": [");
    for (wi, w) in scale_loads.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"engine\": \"{}\",", w.engine);
        let _ = writeln!(json, "      \"overlap_budget\": {},", w.overlap_budget);
        let _ = writeln!(json, "      \"legacy_bit_identical\": true,");
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, r) in w.runs.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"budget\": {}, \"secs\": {}, \"states\": {}, \"edges\": {}, \
                 \"states_per_sec\": {}, \"store_bytes\": {}, \"bytes_per_state\": {}, \
                 \"delta_share\": {}, \"facts_interned\": {}, \"complete\": {}, \
                 \"canon_keys_computed\": {}, \"canon_orders_enumerated\": {}, \
                 \"canon_prune_cutoffs\": {}, \"sig_filter_skips\": {}, \
                 \"iso_checks_avoided\": {}, \"iso_checks_performed\": {}}}{}",
                r.budget,
                json_f64(r.secs),
                r.states,
                r.edges,
                json_f64(r.states_per_sec()),
                r.bytes,
                json_f64(r.bytes_per_state()),
                json_f64(r.delta_share),
                r.facts_interned,
                r.complete,
                r.canon_keys_computed,
                r.canon_orders_enumerated,
                r.canon_prune_cutoffs,
                r.sig_filter_skips,
                r.iso_checks_avoided,
                r.iso_checks_performed,
                if ri + 1 < w.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ],");
        let _ = writeln!(
            json,
            "      \"gate_budgets\": [{}, {}],",
            w.gate_budgets.0, w.gate_budgets.1
        );
        let _ = writeln!(
            json,
            "      \"bytes_per_state_growth\": {},",
            json_f64(w.bytes_growth)
        );
        let _ = writeln!(
            json,
            "      \"throughput_ratio\": {}",
            json_f64(w.throughput_ratio)
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < scale_loads.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"metrics_snapshot\": {}", snapshot.to_json());
    json.push_str("}\n");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json");
    artifacts.push(("BENCH_scale.json", json));

    if let Some(dir) = &baseline_dir {
        gate_against_baseline(dir, &artifacts, thresholds, inject);
    }
}
