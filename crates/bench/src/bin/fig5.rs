//! Regenerates the paper's Figure 5 report. See DESIGN.md §5.
fn main() {
    println!("{}", dcds_bench::figures::fig5());
}
