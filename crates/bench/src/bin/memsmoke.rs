//! Memory-regression smoke for the compact state store.
//!
//! Runs one deterministic and one RCYCL workload at a fixed 50k-state
//! budget through the compact engines and fails (exit 1) if the store's
//! deterministic bytes-per-state estimate exceeds a pinned ceiling. The
//! estimate (`StoreStats::bytes`) is derived from element counts and
//! `size_of`, not allocator introspection, so it is stable across runs
//! and thread counts — a real regression (e.g. deltas silently falling
//! back to roots, the arena duplicating facts) moves it far more than
//! platform `size_of` drift does, which is what the ceiling's headroom
//! absorbs.
//!
//! Wired into `scripts/check.sh` and CI; keep it fast (seconds, not
//! minutes).

use dcds_abstraction::{det_abstraction_compact_opts, rcycl_compact_opts, AbsOptions};
use dcds_bench::synthetic;
use dcds_reldata::StoreStats;
use std::process::ExitCode;

/// Fixed workload size: big enough that per-state overheads dominate
/// constant setup costs, small enough for a CI smoke.
const BUDGET: usize = 50_000;

/// Pinned bytes-per-state ceilings (measured 182 and 124 B/state at the
/// seed of the compact store, plus ~50% headroom). Raise these only with
/// a justification in the commit that does so.
const DET_CEILING: f64 = 280.0;
const RCYCL_CEILING: f64 = 190.0;

fn report(name: &str, states: usize, stats: &StoreStats, ceiling: f64) -> bool {
    let per_state = stats.bytes as f64 / states.max(1) as f64;
    let ok = per_state <= ceiling;
    println!(
        "{name}: {states} states, {} bytes ({per_state:.1} B/state, ceiling {ceiling:.0}), \
         {} facts interned, delta share {:.1}% — {}",
        stats.bytes,
        stats.facts_interned,
        stats.delta_share() * 100.0,
        if ok { "ok" } else { "FAIL" }
    );
    ok
}

fn main() -> ExitCode {
    // One worker: the store's byte estimate is thread-independent (the
    // differential suites cover thread counts), and per-call scoped-thread
    // spawns would dominate the smoke's runtime on small CI boxes.
    let det = det_abstraction_compact_opts(
        &synthetic::service_chain(16),
        BUDGET,
        AbsOptions {
            threads: 1,
            ..AbsOptions::default()
        },
    );
    let det_ok = report(
        "det_abstraction_compact(service_chain(16))",
        det.ts.num_states(),
        &det.ts.store_stats(),
        DET_CEILING,
    );

    let rc = rcycl_compact_opts(&synthetic::phased_rings(4), BUDGET, 1);
    let rc_ok = report(
        "rcycl_compact(phased_rings(4))",
        rc.ts.num_states(),
        &rc.ts.store_stats(),
        RCYCL_CEILING,
    );

    if det_ok && rc_ok {
        println!("memory smoke passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("memory smoke FAILED: bytes/state ceiling exceeded");
        ExitCode::FAILURE
    }
}
