//! Regenerates Table 1 (the decidability matrix) with per-cell evidence.
fn main() {
    println!("{}", dcds_bench::figures::table1());
}
