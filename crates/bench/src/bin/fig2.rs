//! Regenerates the paper's Figure 2 report. See DESIGN.md §5.
fn main() {
    println!("{}", dcds_bench::figures::fig2());
}
