//! End-to-end verification of the Appendix E travel-reimbursement systems.
fn main() {
    println!("{}", dcds_bench::figures::travel_verify());
}
