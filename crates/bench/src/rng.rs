//! A tiny deterministic PRNG for workload generation.
//!
//! The benchmark harness needs reproducible pseudo-randomness (random DCDS
//! shapes, sampled service answers) but must build without registry access,
//! so instead of the `rand` crate we ship SplitMix64 — the 64-bit mixer of
//! Steele, Lea & Flood ("Fast splittable pseudorandom number generators",
//! OOPSLA 2014). It passes BigCrush for this output width and is more than
//! good enough for shaping synthetic workloads; nothing here is
//! cryptographic.

/// SplitMix64: a full-period 64-bit generator seeded by any `u64`.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent-ish
    /// streams; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, which is irrelevant at workload-generation scale.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "gen_range bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SplitMix64::new(42);
        for bound in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..50 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SplitMix64::new(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "got {heads}");
    }
}
