//! Seeded engine-level differential: the compact-store engines against
//! the legacy owned-`Instance` engines, over synthetic families and
//! SplitMix64-seeded random systems, at 1, 2, 4 and 8 worker threads.
//!
//! The compact engines must replay the legacy ones **bit-identically**:
//! same transition system (states in the same order, same edges), same
//! outcome/completeness, same minted constant pool, and the same value of
//! every engine counter — including canonical keys computed and iso
//! checks performed, i.e. the same dedup decisions, not just the same
//! final answer.

use dcds_abstraction::{
    det_abstraction_compact_opts, det_abstraction_opts, rcycl_compact_opts, rcycl_opts, AbsOptions,
};
use dcds_bench::synthetic::{self, RandomParams};
use dcds_core::{Dcds, ServiceKind};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_det_identical(dcds: &Dcds, budget: usize) {
    for threads in THREAD_COUNTS {
        let opts = AbsOptions {
            threads,
            ..AbsOptions::default()
        };
        let legacy = det_abstraction_opts(dcds, budget, opts);
        let compact = det_abstraction_compact_opts(dcds, budget, opts);
        assert_eq!(
            compact.ts.to_ts(),
            legacy.ts,
            "det ts diverged at {threads} threads"
        );
        assert_eq!(compact.outcome, legacy.outcome);
        assert_eq!(compact.pool.len(), legacy.pool.len());
        assert_eq!(
            compact.counters, legacy.counters,
            "det counters diverged at {threads} threads"
        );
    }
}

fn assert_rcycl_identical(dcds: &Dcds, budget: usize) {
    for threads in THREAD_COUNTS {
        let legacy = rcycl_opts(dcds, budget, threads);
        let compact = rcycl_compact_opts(dcds, budget, threads);
        assert_eq!(
            compact.ts.to_ts(),
            legacy.ts,
            "rcycl ts diverged at {threads} threads"
        );
        assert_eq!(compact.complete, legacy.complete);
        assert_eq!(compact.used_values, legacy.used_values);
        assert_eq!(compact.triples_processed, legacy.triples_processed);
        assert_eq!(compact.pool.len(), legacy.pool.len());
        assert_eq!(
            compact.counters, legacy.counters,
            "rcycl counters diverged at {threads} threads"
        );
    }
}

#[test]
fn det_compact_matches_legacy_on_synthetic_families() {
    assert_det_identical(&synthetic::service_chain(6), 400);
    assert_det_identical(&synthetic::service_cycle(4), 400);
    assert_det_identical(&synthetic::parallel_rings(2), 300);
}

#[test]
fn rcycl_compact_matches_legacy_on_synthetic_families() {
    assert_rcycl_identical(&synthetic::phased_rings(3), 500);
    assert_rcycl_identical(&synthetic::flush_ladder(), 500);
    assert_rcycl_identical(&synthetic::accumulator(2), 120);
}

#[test]
fn det_compact_matches_legacy_on_seeded_random_systems() {
    for seed in [7, 21, 1977] {
        let dcds = synthetic::random_dcds(
            seed,
            RandomParams {
                kind: ServiceKind::Deterministic,
                ..RandomParams::default()
            },
        );
        assert_det_identical(&dcds, 300);
    }
}

#[test]
fn rcycl_compact_matches_legacy_on_seeded_random_systems() {
    for seed in [3, 1013] {
        let dcds = synthetic::random_dcds(
            seed,
            RandomParams {
                kind: ServiceKind::Nondeterministic,
                call_probability: 0.6,
                ..RandomParams::default()
            },
        );
        assert_rcycl_identical(&dcds, 250);
    }
}
