//! Seeded engine-level differential: the compact-store engines against
//! the legacy owned-`Instance` engines, over synthetic families and
//! SplitMix64-seeded random systems, at 1, 2, 4 and 8 worker threads.
//!
//! The compact engines must replay the legacy ones **bit-identically**:
//! same transition system (states in the same order, same edges), same
//! outcome/completeness, same minted constant pool, and the same value of
//! every engine counter — including canonical keys computed and iso
//! checks performed, i.e. the same dedup decisions, not just the same
//! final answer.

use dcds_abstraction::{
    det_abstraction_compact_opts, det_abstraction_opts, rcycl_compact_opts, rcycl_opts, AbsOptions,
};
use dcds_bench::synthetic::{self, RandomParams};
use dcds_core::explore::{
    explore_det_compact_opts, explore_det_opts, explore_nondet_compact_opts, explore_nondet_opts,
    CommitmentOracle, Limits, SampledOracle,
};
use dcds_core::{Dcds, ServiceKind};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_det_identical(dcds: &Dcds, budget: usize) {
    for threads in THREAD_COUNTS {
        let opts = AbsOptions {
            threads,
            ..AbsOptions::default()
        };
        let legacy = det_abstraction_opts(dcds, budget, opts);
        let compact = det_abstraction_compact_opts(dcds, budget, opts);
        assert_eq!(
            compact.ts.to_ts(),
            legacy.ts,
            "det ts diverged at {threads} threads"
        );
        assert_eq!(compact.outcome, legacy.outcome);
        assert_eq!(compact.pool.len(), legacy.pool.len());
        assert_eq!(
            compact.counters, legacy.counters,
            "det counters diverged at {threads} threads"
        );
    }
}

fn assert_rcycl_identical(dcds: &Dcds, budget: usize) {
    for threads in THREAD_COUNTS {
        let legacy = rcycl_opts(dcds, budget, threads);
        let compact = rcycl_compact_opts(dcds, budget, threads);
        assert_eq!(
            compact.ts.to_ts(),
            legacy.ts,
            "rcycl ts diverged at {threads} threads"
        );
        assert_eq!(compact.complete, legacy.complete);
        assert_eq!(compact.used_values, legacy.used_values);
        assert_eq!(compact.triples_processed, legacy.triples_processed);
        assert_eq!(compact.pool.len(), legacy.pool.len());
        assert_eq!(
            compact.counters, legacy.counters,
            "rcycl counters diverged at {threads} threads"
        );
    }
}

/// Structural equality of the store-backed bounded explorers against the
/// owned-`Instance` ones: states in the same order, same edges, same call
/// maps (det), same outcome, same minted pool.
fn assert_explore_identical(dcds: &Dcds, limits: Limits) {
    for threads in THREAD_COUNTS {
        let mut oracle = CommitmentOracle;
        let owned = explore_det_opts(dcds, limits, &mut oracle, threads);
        let mut oracle = CommitmentOracle;
        let compact = explore_det_compact_opts(dcds, limits, &mut oracle, threads);
        assert_eq!(
            compact.ts.to_ts(),
            owned.ts,
            "explore_det ts diverged at {threads} threads"
        );
        assert_eq!(compact.call_maps, owned.call_maps);
        assert_eq!(compact.outcome, owned.outcome);
        assert_eq!(compact.pool.len(), owned.pool.len());
    }
}

fn assert_explore_nondet_identical(dcds: &Dcds, limits: Limits, seed: u64) {
    for threads in THREAD_COUNTS {
        let mut oracle = SampledOracle {
            seed,
            samples: 5,
            fresh_per_step: 2,
        };
        let owned = explore_nondet_opts(dcds, limits, &mut oracle, threads);
        let mut oracle = SampledOracle {
            seed,
            samples: 5,
            fresh_per_step: 2,
        };
        let compact = explore_nondet_compact_opts(dcds, limits, &mut oracle, threads);
        assert_eq!(
            compact.ts.to_ts(),
            owned.ts,
            "explore_nondet ts diverged at {threads} threads"
        );
        assert_eq!(compact.outcome, owned.outcome);
        assert_eq!(compact.pool.len(), owned.pool.len());
    }
}

#[test]
fn det_compact_matches_legacy_on_synthetic_families() {
    assert_det_identical(&synthetic::service_chain(6), 400);
    assert_det_identical(&synthetic::service_cycle(4), 400);
    assert_det_identical(&synthetic::parallel_rings(2), 300);
}

#[test]
fn det_compact_matches_legacy_on_collision_heavy_family() {
    // Thousands of isomorphism classes behind a handful of signatures:
    // the exact-match key index must replay the legacy dedup decisions
    // (and counters) even when whole levels collide.
    assert_det_identical(&synthetic::collision_pairs(7), 400);
}

#[test]
fn det_compact_level_chunking_is_output_invariant() {
    // The compact engine steps wide BFS levels in `level_chunk`-sized
    // batches to bound transient allocation. Chunking must not change
    // anything observable: force pathologically small chunks (so every
    // level spans many chunk boundaries) and require bit-identity with
    // both the unchunked compact run and the legacy engine — same Ts,
    // same pool, same counters, at every thread count.
    for dcds in [
        synthetic::service_chain(6),
        synthetic::collision_pairs(7),
        synthetic::parallel_rings(2),
    ] {
        for threads in [1, 4] {
            let baseline = det_abstraction_compact_opts(
                &dcds,
                400,
                AbsOptions {
                    threads,
                    ..AbsOptions::default()
                },
            );
            let legacy = det_abstraction_opts(
                &dcds,
                400,
                AbsOptions {
                    threads,
                    ..AbsOptions::default()
                },
            );
            for level_chunk in [1, 3, 64] {
                let chunked = det_abstraction_compact_opts(
                    &dcds,
                    400,
                    AbsOptions {
                        threads,
                        level_chunk,
                        ..AbsOptions::default()
                    },
                );
                assert_eq!(
                    chunked.ts.to_ts(),
                    baseline.ts.to_ts(),
                    "ts diverged at chunk {level_chunk}, {threads} threads"
                );
                assert_eq!(chunked.ts.to_ts(), legacy.ts);
                assert_eq!(chunked.outcome, baseline.outcome);
                assert_eq!(chunked.pool.len(), baseline.pool.len());
                assert_eq!(
                    chunked.counters, legacy.counters,
                    "counters diverged at chunk {level_chunk}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn explore_compact_matches_owned_on_synthetic_families() {
    let limits = Limits {
        max_states: 400,
        max_depth: 4,
    };
    assert_explore_identical(&synthetic::service_chain(5), limits);
    assert_explore_identical(&synthetic::parallel_rings(2), limits);
    assert_explore_identical(&synthetic::collision_pairs(5), limits);
    assert_explore_nondet_identical(&synthetic::phased_rings(3), limits, 29);
    assert_explore_nondet_identical(&synthetic::flush_ladder(), limits, 41);
}

#[test]
fn explore_compact_matches_owned_on_seeded_random_systems() {
    let limits = Limits {
        max_states: 250,
        max_depth: 3,
    };
    for seed in [5, 1311] {
        let det = synthetic::random_dcds(
            seed,
            RandomParams {
                kind: ServiceKind::Deterministic,
                ..RandomParams::default()
            },
        );
        assert_explore_identical(&det, limits);
        let nondet = synthetic::random_dcds(
            seed,
            RandomParams {
                kind: ServiceKind::Nondeterministic,
                call_probability: 0.6,
                ..RandomParams::default()
            },
        );
        assert_explore_nondet_identical(&nondet, limits, seed);
    }
}

#[test]
fn rcycl_compact_matches_legacy_on_synthetic_families() {
    assert_rcycl_identical(&synthetic::phased_rings(3), 500);
    assert_rcycl_identical(&synthetic::flush_ladder(), 500);
    assert_rcycl_identical(&synthetic::accumulator(2), 120);
}

#[test]
fn det_compact_matches_legacy_on_seeded_random_systems() {
    for seed in [7, 21, 1977] {
        let dcds = synthetic::random_dcds(
            seed,
            RandomParams {
                kind: ServiceKind::Deterministic,
                ..RandomParams::default()
            },
        );
        assert_det_identical(&dcds, 300);
    }
}

#[test]
fn rcycl_compact_matches_legacy_on_seeded_random_systems() {
    for seed in [3, 1013] {
        let dcds = synthetic::random_dcds(
            seed,
            RandomParams {
                kind: ServiceKind::Nondeterministic,
                call_probability: 0.6,
                ..RandomParams::default()
            },
        );
        assert_rcycl_identical(&dcds, 250);
    }
}
