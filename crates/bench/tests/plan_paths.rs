//! Engine-level agreement and determinism for the compiled-plan hot path.
//!
//! The query-plan layer promises bit-identical behaviour along every
//! integration seam: `do_action` vs `do_action_indexed` (with and without a
//! prebuilt per-state index), `legal_assignments` vs its indexed twin, and
//! whole-engine runs (`rcycl`, `det_abstraction`, `explore_det`) at 1, 2,
//! 4, and 8 worker threads with plans and indexes enabled throughout.
//! These tests pin that promise on the paper's travel-request system and a
//! parameterised synthetic system.

use dcds_abstraction::{det_abstraction_opts, rcycl_opts, AbsOptions};
use dcds_bench::{synthetic, travel};
use dcds_core::explore::{CommitmentOracle, Limits};
use dcds_core::{
    do_action, do_action_indexed, explore_det_opts, legal_assignments, legal_assignments_indexed,
    state_index, Dcds,
};
use dcds_folang::Var;

/// All per-state query entry points agree across the three paths (legacy,
/// plan over scans, plan over index) on every reachable state of the
/// travel-request pruning.
#[test]
fn do_and_legal_agree_on_all_rcycl_states() {
    let dcds = travel::request_system_small();
    let ((pe, te), (pr, tr)) = dcds.plans().coverage();
    assert!(pe > 0 && pr > 0, "no plans compiled: {pe}/{te}, {pr}/{tr}");

    let res = rcycl_opts(&dcds, 5000, 1);
    assert!(res.complete, "travel pruning should saturate");
    for s in res.ts.state_ids() {
        let inst = res.ts.db(s);
        let idx = state_index(&dcds, inst);

        let legal = legal_assignments(&dcds, inst);
        assert_eq!(legal, legal_assignments_indexed(&dcds, inst, None));
        assert_eq!(legal, legal_assignments_indexed(&dcds, inst, Some(&idx)));

        for (action, sigma) in &legal {
            let base = do_action(&dcds, inst, *action, sigma);
            assert_eq!(base, do_action_indexed(&dcds, inst, *action, sigma, None));
            assert_eq!(
                base,
                do_action_indexed(&dcds, inst, *action, sigma, Some(&idx))
            );
        }
    }
}

/// A σ whose domain is not exactly the action's parameter list must take
/// the legacy path — and still agree with `do_action` (which is the
/// documented semantics for arbitrary public-API σ).
#[test]
fn non_parameter_sigma_takes_identical_fallback() {
    let dcds = travel::request_system_small();
    let inst = &dcds.data.initial;
    let idx = state_index(&dcds, inst);
    let spurious = dcds.data.pool.get("readyForRequest").unwrap();
    for (action, sigma) in legal_assignments(&dcds, inst) {
        let mut padded = sigma.clone();
        padded.insert(Var::new("__not_a_param"), spurious);
        let base = do_action(&dcds, inst, action, &padded);
        assert_eq!(
            base,
            do_action_indexed(&dcds, inst, action, &padded, Some(&idx))
        );
    }
}

fn assert_thread_invariant_rcycl(dcds: &Dcds, max_states: usize) {
    let baseline = rcycl_opts(dcds, max_states, 1);
    for threads in [2usize, 4, 8] {
        let run = rcycl_opts(dcds, max_states, threads);
        assert_eq!(baseline.ts, run.ts, "rcycl ts differs at {threads} threads");
        assert_eq!(baseline.complete, run.complete);
        assert_eq!(baseline.used_values, run.used_values);
        assert_eq!(baseline.triples_processed, run.triples_processed);
    }
}

/// RCYCL output is identical at 1/2/4/8 threads with plans + indexes on.
#[test]
fn rcycl_thread_count_invariant_with_plans() {
    assert_thread_invariant_rcycl(&travel::request_system_small(), 5000);
    assert_thread_invariant_rcycl(&synthetic::accumulator(2), 400);
}

/// Deterministic abstraction output is identical at 1/2/4/8 threads.
#[test]
fn det_abstraction_thread_count_invariant_with_plans() {
    let dcds = travel::audit_system_small();
    let baseline = det_abstraction_opts(
        &dcds,
        2000,
        AbsOptions {
            threads: 1,
            ..AbsOptions::default()
        },
    );
    for threads in [2usize, 4, 8] {
        let run = det_abstraction_opts(
            &dcds,
            2000,
            AbsOptions {
                threads,
                ..AbsOptions::default()
            },
        );
        assert_eq!(
            baseline.ts, run.ts,
            "det_abs ts differs at {threads} threads"
        );
        assert_eq!(baseline.states, run.states);
    }
}

/// Concrete exploration is identical at 1/2/4/8 threads (the oracle is
/// reseeded per run; `CommitmentOracle` is deterministic by construction).
#[test]
fn explore_det_thread_count_invariant_with_plans() {
    let dcds = synthetic::service_chain(4);
    let limits = Limits {
        max_states: 500,
        ..Limits::default()
    };
    let baseline = explore_det_opts(&dcds, limits, &mut CommitmentOracle, 1);
    for threads in [2usize, 4, 8] {
        let run = explore_det_opts(&dcds, limits, &mut CommitmentOracle, threads);
        assert_eq!(
            baseline.ts, run.ts,
            "explore_det ts differs at {threads} threads"
        );
        assert_eq!(baseline.outcome, run.outcome);
    }
}
