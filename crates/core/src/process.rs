//! The process: condition–action rules and the finite-state extension.
//!
//! The paper adopts a rule-based process: a finite set of condition–action
//! rules `Q ↦ α`, where the free variables of `Q` are exactly the parameters
//! of `α` (Section 2.2). It also notes that the results generalise to *any*
//! process formalism with finite-state control flow; [`FsProcess`] realises
//! that remark as a finite automaton whose edges carry rules, compiled down
//! to plain rules over an extended schema by [`FsProcess::compile`].

use crate::action::{Action, ActionId, Effect};
use crate::service::ServiceCatalog;
use dcds_folang::{Formula, QTerm};
use dcds_reldata::{ConstantPool, RelId, Schema};

/// A condition–action rule `Q ↦ α`. The free variables of `condition` must
/// be exactly the parameters of the action (validated by
/// [`crate::Dcds::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CaRule {
    /// The guard query; answers provide legal parameter assignments.
    pub condition: Formula,
    /// The action to execute.
    pub action: ActionId,
}

/// The process layer `P = ⟨F, A, ρ⟩`.
#[derive(Debug, Clone)]
pub struct ProcessLayer {
    /// External service interfaces `F`.
    pub services: ServiceCatalog,
    /// Atomic actions `A`.
    pub actions: Vec<Action>,
    /// Condition–action rules `ρ`.
    pub rules: Vec<CaRule>,
}

impl ProcessLayer {
    /// Look up an action by name.
    pub fn action_id(&self, name: &str) -> Option<ActionId> {
        self.actions
            .iter()
            .position(|a| a.name == name)
            .map(ActionId::from_index)
    }

    /// The action behind an id.
    pub fn action(&self, id: ActionId) -> &Action {
        &self.actions[id.index()]
    }

    /// Rules guarding a given action.
    pub fn rules_for(&self, id: ActionId) -> impl Iterator<Item = &CaRule> {
        self.rules.iter().filter(move |r| r.action == id)
    }
}

/// A finite-state process: control states with rule-labeled transitions.
///
/// This is the "process formalism whose control flow is finite-state" the
/// paper says its results immediately generalise to. We realise the claim
/// constructively: [`FsProcess::compile`] rewrites the automaton into plain
/// condition–action rules over a schema extended with a program-counter
/// relation `__pc/1`, so every downstream construction (semantics, static
/// analysis, abstraction) applies unchanged.
#[derive(Debug, Clone)]
pub struct FsProcess {
    /// Number of control states (named `q0..q{n-1}` after compilation).
    pub num_states: usize,
    /// Initial control state.
    pub initial: usize,
    /// Transitions `(from, condition, action, to)`.
    pub transitions: Vec<(usize, Formula, ActionId, usize)>,
}

impl FsProcess {
    /// Compile into condition–action rules over an extended schema.
    ///
    /// Adds `__pc/1` to the schema, adds the fact `__pc(q_initial)` to the
    /// caller's initial instance (returned as a fact to insert), strengthens
    /// each transition's condition with `__pc(q_from)`, and extends the
    /// corresponding action with an effect writing `__pc(q_to)`. Because an
    /// action may be shared by transitions with different targets, each
    /// transition gets a *copy* of its action named
    /// `{action}@{from}->{to}`.
    pub fn compile(
        &self,
        schema: &mut Schema,
        pool: &mut ConstantPool,
        actions: &[Action],
    ) -> Result<CompiledFs, String> {
        let pc = schema.add_or_get("__pc", 1).map_err(|e| e.to_string())?;
        let state_consts: Vec<_> = (0..self.num_states)
            .map(|i| pool.intern(&format!("q{i}")))
            .collect();
        if self.initial >= self.num_states {
            return Err("initial control state out of range".to_owned());
        }
        let mut out_actions: Vec<Action> = Vec::new();
        let mut out_rules: Vec<CaRule> = Vec::new();
        for (from, cond, action_id, to) in &self.transitions {
            if *from >= self.num_states || *to >= self.num_states {
                return Err("transition endpoint out of range".to_owned());
            }
            let base = actions
                .get(action_id.index())
                .ok_or_else(|| "transition references unknown action".to_owned())?;
            let mut action = base.clone();
            action.name = format!("{}@q{from}->q{to}", base.name);
            // Writing __pc(q_to) unconditionally; __pc is flushed like any
            // other relation, so exactly one pc fact survives per step.
            action.effects.push(Effect::unconditional(vec![(
                pc,
                vec![crate::term::ETerm::constant(state_consts[*to])],
            )]));
            let new_id = ActionId::from_index(out_actions.len());
            out_actions.push(action);
            let guard =
                Formula::Atom(pc, vec![QTerm::Const(state_consts[*from])]).and(cond.clone());
            out_rules.push(CaRule {
                condition: guard,
                action: new_id,
            });
        }
        Ok(CompiledFs {
            pc_relation: pc,
            initial_pc_fact: (pc, vec![state_consts[self.initial]]),
            actions: out_actions,
            rules: out_rules,
        })
    }
}

/// Result of compiling an [`FsProcess`].
#[derive(Debug, Clone)]
pub struct CompiledFs {
    /// The program-counter relation added to the schema.
    pub pc_relation: RelId,
    /// The fact to add to the initial instance.
    pub initial_pc_fact: (RelId, Vec<dcds_reldata::Value>),
    /// The rewritten actions (one per transition).
    pub actions: Vec<Action>,
    /// The rewritten rules.
    pub rules: Vec<CaRule>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    #[test]
    fn compile_produces_guarded_rules() {
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let actions = vec![
            Action::new("a0", vec![], vec![]),
            Action::new("a1", vec![], vec![]),
        ];
        let fsp = FsProcess {
            num_states: 2,
            initial: 0,
            transitions: vec![
                (0, Formula::True, ActionId::from_index(0), 1),
                (1, Formula::True, ActionId::from_index(1), 0),
            ],
        };
        let compiled = fsp.compile(&mut schema, &mut pool, &actions).unwrap();
        assert_eq!(compiled.actions.len(), 2);
        assert_eq!(compiled.rules.len(), 2);
        // Each compiled action ends with a __pc effect.
        for a in &compiled.actions {
            let last = a.effects.last().unwrap();
            assert_eq!(last.head.len(), 1);
            assert_eq!(last.head[0].0, compiled.pc_relation);
        }
        // Guards mention __pc.
        for r in &compiled.rules {
            assert!(r.condition.relations().contains(&compiled.pc_relation));
        }
        assert_eq!(pool.get("q0"), Some(compiled.initial_pc_fact.1[0]));
    }

    #[test]
    fn compile_rejects_bad_indices() {
        let mut schema = Schema::new();
        let mut pool = ConstantPool::new();
        let actions = vec![Action::new("a0", vec![], vec![])];
        let fsp = FsProcess {
            num_states: 1,
            initial: 3,
            transitions: vec![],
        };
        assert!(fsp.compile(&mut schema, &mut pool, &actions).is_err());
    }

    #[test]
    fn rules_for_filters_by_action() {
        let mut cat = ServiceCatalog::new();
        cat.add("f", 1, crate::service::ServiceKind::Deterministic)
            .unwrap();
        let layer = ProcessLayer {
            services: cat,
            actions: vec![
                Action::new("a", vec![], vec![]),
                Action::new("b", vec![], vec![]),
            ],
            rules: vec![
                CaRule {
                    condition: Formula::True,
                    action: ActionId::from_index(0),
                },
                CaRule {
                    condition: Formula::False,
                    action: ActionId::from_index(0),
                },
                CaRule {
                    condition: Formula::True,
                    action: ActionId::from_index(1),
                },
            ],
        };
        assert_eq!(layer.rules_for(ActionId::from_index(0)).count(), 2);
        assert_eq!(layer.action_id("b"), Some(ActionId::from_index(1)));
        assert_eq!(layer.action_id("zzz"), None);
    }
}
