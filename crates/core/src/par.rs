//! A minimal scoped-thread work pool (std-only).
//!
//! The state-space engines (deterministic abstraction, RCYCL, the bounded
//! concrete explorers) expand BFS frontiers whose items are independent:
//! successor enumeration, `det_step`/`nondet_step` evaluation, signatures
//! and canonical keys can all be computed per item with no shared mutable
//! state. This module gives them a [`par_map`] primitive built directly on
//! [`std::thread::scope`] — the build environment has no registry access,
//! so no rayon — with the two properties the engines rely on:
//!
//! * **deterministic result order** — results come back in input order
//!   regardless of how the OS schedules the workers, so serial merge phases
//!   see exactly the sequence a serial loop would have produced;
//! * **work stealing by atomic cursor** — workers pull the next unclaimed
//!   index, so uneven item costs (one state with thousands of evaluations
//!   next to trivial ones) don't idle the pool.
//!
//! Thread count: explicit argument, or [`configured_threads`] which honours
//! the `DCDS_THREADS` environment variable and falls back to the machine's
//! available parallelism. `threads <= 1` (or a single item) short-circuits
//! to a plain serial loop in the calling thread — the "serial engine" the
//! ablation benchmarks compare against is literally that path.

use dcds_obs::{span, Obs};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "DCDS_THREADS";

/// Below this many items the scoped-thread spawn/join round trip costs more
/// than it saves; [`par_map`] falls back to the serial loop. (BFS levels
/// near the root and tiny θ fan-outs hit this constantly — results are
/// identical either way, only the schedule changes.)
pub const PAR_THRESHOLD: usize = 32;

/// The worker count used when a caller does not pass one explicitly:
/// `DCDS_THREADS` if set to a positive integer, otherwise the machine's
/// available parallelism, otherwise 1.
pub fn configured_threads() -> usize {
    if let Ok(s) = std::env::var(THREADS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item, on up to `threads` scoped workers, returning
/// the results **in input order**.
///
/// `f` runs concurrently and must therefore be `Sync`; per-item work must
/// not depend on execution order (the engines route all order-sensitive
/// work — constant minting, oracle sampling, index merging — through their
/// serial phases instead).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, threads, || (), move |(), item| f(item))
}

/// [`par_map`] with a span wrapping each worker's whole loop, recorded on
/// the worker's own thread — which is what maps worker threads to distinct
/// tids in the Chrome-trace export. With a disabled handle this is exactly
/// [`par_map`]; results are identical either way.
pub fn par_map_obs<T, R, F>(
    items: &[T],
    threads: usize,
    obs: &Obs,
    name: &'static str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if !obs.is_enabled() {
        return par_map(items, threads, f);
    }
    let n = items.len();
    par_map_with(
        items,
        threads,
        || span!(obs, name, items = n),
        move |_worker_span, item| f(item),
    )
}

/// [`par_map`] with per-worker scratch state: `init` runs once on each
/// worker (and once for the serial path) and the scratch is threaded
/// through every item that worker processes. Used for reusable buffers —
/// never for data the result depends on in an order-sensitive way.
pub fn par_map_with<T, R, C, F>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> C + Sync,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut C, &T) -> R + Sync,
{
    let n = items.len();
    let workers = if n < PAR_THRESHOLD { 1 } else { threads.min(n) };
    if workers <= 1 {
        let mut ctx = init();
        return items.iter().map(|item| f(&mut ctx, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ctx = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let ix = cursor.fetch_add(1, Ordering::Relaxed);
                        if ix >= n {
                            break;
                        }
                        out.push((ix, f(&mut ctx, &items[ix])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });

    // Scatter back into input order.
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets.drain(..) {
        for (ix, r) in bucket {
            debug_assert!(results[ix].is_none());
            results[ix] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every index processed exactly once"))
        .collect()
}

/// Observability counters shared by the state-space engines.
///
/// Filled in by the construction and returned by value in the engine
/// results (`DetAbstraction`, `RcyclResult`, the explorations); the `dcds`
/// CLI prints them. All counts are exact — they are accumulated in the
/// serial merge phases or via atomics in the workers — and independent of
/// the thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// States whose successor sets were expanded (BFS dequeues).
    pub states_expanded: u64,
    /// Successor candidates produced (before deduplication).
    pub successors_generated: u64,
    /// Expensive canonical keys actually computed.
    pub canon_keys_computed: u64,
    /// Dedup probes answered by an empty signature bucket — each one is a
    /// canonicalisation (or pairwise scan) that never happened.
    pub sig_filter_skips: u64,
    /// Pairwise isomorphism checks skipped thanks to unequal signatures or
    /// canonical-key hits.
    pub iso_checks_avoided: u64,
    /// Pairwise isomorphism checks actually performed.
    pub iso_checks_performed: u64,
    /// Complete value orders whose encoding the canonical-key search
    /// materialised (branch-and-bound leaves).
    pub canon_orders_enumerated: u64,
    /// Permutation subtrees the canonical-key search cut before reaching a
    /// leaf (certificate-prefix and transposition-orbit pruning).
    pub canon_prune_cutoffs: u64,
}

impl EngineCounters {
    /// The counters as `(name, value)` pairs — single source of truth for
    /// [`EngineCounters::to_json`] and [`EngineCounters::publish`].
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        [
            ("states_expanded", self.states_expanded),
            ("successors_generated", self.successors_generated),
            ("canon_keys_computed", self.canon_keys_computed),
            ("sig_filter_skips", self.sig_filter_skips),
            ("iso_checks_avoided", self.iso_checks_avoided),
            ("iso_checks_performed", self.iso_checks_performed),
            ("canon_orders_enumerated", self.canon_orders_enumerated),
            ("canon_prune_cutoffs", self.canon_prune_cutoffs),
        ]
    }

    /// Serde-free JSON object, e.g. `{"states_expanded":12,...}` — for
    /// machine consumers (`dcds abstract|check --format json`,
    /// `perf_report`) that previously had to parse the `Display` string.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .entries()
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Publish every counter into the observability registry under
    /// `<prefix>.<name>`, unifying the engine-local struct with the
    /// registry story. Called from serial code, so the registry stays
    /// thread-count deterministic.
    pub fn publish(&self, obs: &Obs, prefix: &str) {
        if !obs.is_enabled() {
            return;
        }
        for (k, v) in self.entries() {
            obs.counter_add(format!("{prefix}.{k}"), v);
        }
    }

    /// Fraction of dedup probes the signature fast path resolved without
    /// exact work, in `[0, 1]`; `None` when there were no probes.
    pub fn sig_hit_rate(&self) -> Option<f64> {
        let probes = self.sig_filter_skips + self.canon_keys_computed + self.iso_checks_performed;
        if probes == 0 {
            None
        } else {
            Some(self.sig_filter_skips as f64 / probes as f64)
        }
    }
}

impl std::fmt::Display for EngineCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expanded {} states, {} successors; {} canonical keys ({} orders, {} cutoffs), \
             {} sig-bucket skips, {} iso checks ({} avoided)",
            self.states_expanded,
            self.successors_generated,
            self.canon_keys_computed,
            self.canon_orders_enumerated,
            self.canon_prune_cutoffs,
            self.sig_filter_skips,
            self.iso_checks_performed,
            self.iso_checks_avoided,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(&items, threads, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let spin = |n: u64| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i ^ acc.rotate_left(7));
            }
            acc
        };
        let serial: Vec<u64> = items.iter().map(|&n| spin(n)).collect();
        assert_eq!(par_map(&items, 4, |&n| spin(n)), serial);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn scratch_state_is_per_worker() {
        // The scratch must never leak between items in a way that changes
        // results: use it as a reusable buffer only.
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_with(&items, 4, Vec::<usize>::new, |buf, &x| {
            buf.clear();
            buf.extend(0..=x);
            buf.iter().sum::<usize>()
        });
        let expect: Vec<usize> = items.iter().map(|&x| x * (x + 1) / 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn sig_hit_rate() {
        let mut c = EngineCounters::default();
        assert_eq!(c.sig_hit_rate(), None);
        c.sig_filter_skips = 3;
        c.canon_keys_computed = 1;
        assert_eq!(c.sig_hit_rate(), Some(0.75));
    }
}
