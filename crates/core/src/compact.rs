//! Transition systems over the compact state store.
//!
//! A [`CompactTs`] is the arena-backed counterpart of [`crate::ts::Ts`]:
//! instead of owning one [`Instance`] per state it holds a
//! [`StateStore`] plus one [`StateRef`] handle per state, so per-state
//! memory is the *delta* a transition made, not the instance. States can
//! still be materialised on demand ([`CompactTs::db`]) and the whole
//! system can be converted to an owned [`Ts`] ([`CompactTs::to_ts`]) —
//! which the differential tests use to assert the compact engines are
//! bit-identical to the legacy owned-instance path.

use crate::ts::{StateId, Ts};
use dcds_reldata::{Instance, StateRef, StateStore, StoreStats};

/// An explicit transition system whose states live in a [`StateStore`].
#[derive(Debug)]
pub struct CompactTs {
    store: StateStore,
    /// Store handle of each state, indexed by [`StateId`].
    states: Vec<StateRef>,
    succ: Vec<Vec<StateId>>,
    initial: StateId,
    /// Colors `< num_rels` are database facts; the rest (service-call-map
    /// entries, where present) are excluded from [`CompactTs::db`].
    num_rels: u32,
}

impl CompactTs {
    /// Assemble from parts built by an engine. `states[0]` must be the
    /// initial state; `succ` must be parallel to `states`.
    pub fn from_parts(
        store: StateStore,
        states: Vec<StateRef>,
        succ: Vec<Vec<StateId>>,
        num_rels: u32,
    ) -> Self {
        assert_eq!(states.len(), succ.len());
        assert!(
            !states.is_empty(),
            "a transition system has an initial state"
        );
        CompactTs {
            store,
            states,
            succ,
            initial: StateId::from_index(0),
            num_rels,
        }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The store handle of a state.
    pub fn state_ref(&self, s: StateId) -> StateRef {
        self.states[s.index()]
    }

    /// Materialise the database labeling a state.
    pub fn db(&self, s: StateId) -> Instance {
        self.store.instance(self.states[s.index()], self.num_rels)
    }

    /// Successors of a state.
    pub fn successors(&self, s: StateId) -> &[StateId] {
        &self.succ[s.index()]
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Iterate over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len()).map(StateId::from_index)
    }

    /// The backing store.
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Deterministic storage statistics (see [`StoreStats`]).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Materialise the whole system as an owned [`Ts`] — the oracle form
    /// the differential tests compare against the legacy engines.
    pub fn to_ts(&self) -> Ts {
        let mut ts = Ts::new(self.db(self.initial));
        for s in self.state_ids().skip(1) {
            ts.add_state(self.db(s));
        }
        for s in self.state_ids() {
            for &t in self.successors(s) {
                ts.add_edge(s, t);
            }
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, Facts, Schema, Tuple};

    #[test]
    fn compact_ts_roundtrips_to_owned_ts() {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let mut store = StateStore::new();
        let mut f0 = Facts::new();
        f0.insert(p.index() as u32, Tuple::from([a]));
        let r0 = store.insert(None, &f0).state;
        let mut f1 = f0.clone();
        f1.insert(p.index() as u32, Tuple::from([b]));
        let r1 = store.insert(Some(r0), &f1).state;
        let compact = CompactTs::from_parts(
            store,
            vec![r0, r1],
            vec![vec![StateId::from_index(1)], vec![StateId::from_index(1)]],
            schema.len() as u32,
        );
        assert_eq!(compact.num_states(), 2);
        assert_eq!(compact.num_edges(), 2);
        let ts = compact.to_ts();
        assert_eq!(ts.num_states(), 2);
        assert_eq!(ts.num_edges(), 2);
        assert!(ts.db(StateId::from_index(1)).contains(p, &Tuple::from([b])));
        assert_eq!(ts.db(compact.initial()), &compact.db(compact.initial()));
    }
}
