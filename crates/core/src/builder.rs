//! Programmatic construction of DCDSs.
//!
//! The builder mirrors the textual format of [`crate::parser`] but lets
//! tests, benchmarks, and generated workloads assemble systems in code,
//! with formulas and effect heads written as strings:
//!
//! ```
//! use dcds_core::{DcdsBuilder, ServiceKind};
//! let dcds = DcdsBuilder::new()
//!     .relation("P", 1)
//!     .relation("Q", 2)
//!     .service("f", 1, ServiceKind::Deterministic)
//!     .init_fact("P", &["a"])
//!     .action("copy", &[], |a| {
//!         a.effect("P(X)", "P(X), Q(X, f(X))");
//!     })
//!     .rule("true", "copy")
//!     .build()
//!     .unwrap();
//! assert!(dcds.is_deterministic());
//! ```

use crate::action::Action;
use crate::action::ActionId;
use crate::data_layer::DataLayer;
use crate::dcds::Dcds;
use crate::parser::effect_from_body;
use crate::process::{CaRule, ProcessLayer};
use crate::service::{ServiceCatalog, ServiceKind};
use crate::term::{BaseTerm, ETerm};
use dcds_folang::lexer::TokenKind;
use dcds_folang::parser::{is_variable_name, Parser, Resolver};
use dcds_folang::{FoConstraint, Formula, Var};
use dcds_reldata::{ConstantPool, Instance, RelId, Schema, Tuple};

/// Accumulates the effects of one action during building.
pub struct ActionSpec {
    params: Vec<Var>,
    effects: Vec<(String, String)>,
}

impl ActionSpec {
    /// Add an effect `body ~> head` (both in the surface syntax of
    /// [`crate::parser`]).
    pub fn effect(&mut self, body: &str, head: &str) -> &mut Self {
        self.effects.push((body.to_owned(), head.to_owned()));
        self
    }
}

/// Raw action spec accumulated during building: name, parameters, and
/// `(body, head)` effect strings.
type RawAction = (String, Vec<Var>, Vec<(String, String)>);

/// Fluent builder for [`Dcds`].
#[derive(Default)]
pub struct DcdsBuilder {
    pool: ConstantPool,
    schema: Schema,
    services: ServiceCatalog,
    initial: Instance,
    constraints: Vec<String>,
    fo_constraints: Vec<String>,
    actions: Vec<RawAction>,
    rules: Vec<(String, String)>,
    error: Option<String>,
}

impl DcdsBuilder {
    /// Start a fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(msg);
        }
    }

    /// Declare a relation.
    pub fn relation(mut self, name: &str, arity: usize) -> Self {
        if let Err(e) = self.schema.add_relation(name, arity) {
            self.fail(e.to_string());
        }
        self
    }

    /// Declare a service.
    pub fn service(mut self, name: &str, arity: usize, kind: ServiceKind) -> Self {
        if let Err(e) = self.services.add(name, arity, kind) {
            self.fail(e);
        }
        self
    }

    /// Add an initial fact with constant arguments.
    pub fn init_fact(mut self, rel: &str, args: &[&str]) -> Self {
        match self.schema.rel_id(rel) {
            None => self.fail(format!("unknown relation {rel} in init fact")),
            Some(id) => {
                if args.len() != self.schema.arity(id) {
                    self.fail(format!(
                        "init fact over {rel} has {} constants, arity is {}",
                        args.len(),
                        self.schema.arity(id)
                    ));
                } else {
                    let vals: Vec<_> = args.iter().map(|a| self.pool.intern(a)).collect();
                    self.initial.insert(id, Tuple::from(vals));
                }
            }
        }
        self
    }

    /// Add an equality constraint written `premise -> eq & eq & ...`.
    pub fn constraint(mut self, src: &str) -> Self {
        self.constraints.push(src.to_owned());
        self
    }

    /// Add an FO integrity constraint (a closed formula).
    pub fn fo_constraint(mut self, src: &str) -> Self {
        self.fo_constraints.push(src.to_owned());
        self
    }

    /// Declare an action with named parameters; configure its effects in the
    /// closure.
    pub fn action(mut self, name: &str, params: &[&str], f: impl FnOnce(&mut ActionSpec)) -> Self {
        let params: Vec<Var> = params.iter().map(|p| Var::new(p)).collect();
        let mut spec = ActionSpec {
            params: params.clone(),
            effects: Vec::new(),
        };
        f(&mut spec);
        self.actions
            .push((name.to_owned(), spec.params, spec.effects));
        self
    }

    /// Add a condition–action rule.
    pub fn rule(mut self, condition: &str, action: &str) -> Self {
        self.rules.push((condition.to_owned(), action.to_owned()));
        self
    }

    /// Assemble and validate the DCDS.
    pub fn build(mut self) -> Result<Dcds, String> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut actions: Vec<Action> = Vec::new();
        for (name, params, effects) in std::mem::take(&mut self.actions) {
            let mut parsed = Vec::new();
            for (body_src, head_src) in effects {
                let body = parse_formula_str(&body_src, &mut self.schema, &mut self.pool)?;
                let head = parse_head_str(&head_src, &self.schema, &mut self.pool, &self.services)?;
                parsed.push(effect_from_body(body, head, &params)?);
            }
            actions.push(Action::new(&name, params, parsed));
        }
        let mut rules = Vec::new();
        for (cond_src, action_name) in std::mem::take(&mut self.rules) {
            let cond = parse_formula_str(&cond_src, &mut self.schema, &mut self.pool)?;
            let id = actions
                .iter()
                .position(|a| a.name == action_name)
                .map(ActionId::from_index)
                .ok_or_else(|| format!("rule references unknown action {action_name}"))?;
            rules.push(CaRule {
                condition: cond,
                action: id,
            });
        }
        let mut constraints = Vec::new();
        for src in std::mem::take(&mut self.constraints) {
            let f = parse_formula_str(&src, &mut self.schema, &mut self.pool)?;
            constraints.push(crate::parser::decompose_equality_constraint(f)?);
        }
        let mut fo_constraints = Vec::new();
        for src in std::mem::take(&mut self.fo_constraints) {
            let f = parse_formula_str(&src, &mut self.schema, &mut self.pool)?;
            fo_constraints.push(FoConstraint::new(f).map_err(|e| e.to_string())?);
        }
        let mut data = DataLayer::new(self.pool, self.schema, self.initial);
        data.constraints = constraints;
        data.fo_constraints = fo_constraints;
        let process = ProcessLayer {
            services: self.services,
            actions,
            rules,
        };
        Dcds::new(data, process).map_err(|e| e.to_string())
    }
}

fn parse_formula_str(
    src: &str,
    schema: &mut Schema,
    pool: &mut ConstantPool,
) -> Result<Formula, String> {
    let mut p = Parser::new(src).map_err(|e| e.to_string())?;
    let mut r = Resolver {
        schema,
        pool,
        extend_schema: false,
    };
    p.parse_formula_all(&mut r).map_err(|e| e.to_string())
}

/// Parse a comma-separated list of head facts `R(t, ...)` with service calls.
fn parse_head_str(
    src: &str,
    schema: &Schema,
    pool: &mut ConstantPool,
    services: &ServiceCatalog,
) -> Result<Vec<(RelId, Vec<ETerm>)>, String> {
    let mut p = Parser::new(src).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    loop {
        let name = p.expect_ident().map_err(|e| e.to_string())?;
        let rel = schema
            .rel_id(&name)
            .ok_or_else(|| format!("unknown relation {name} in effect head"))?;
        let mut terms = Vec::new();
        if p.eat(&TokenKind::LParen) && !p.eat(&TokenKind::RParen) {
            loop {
                terms.push(parse_eterm_str(&mut p, pool, services)?);
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            p.expect(&TokenKind::RParen).map_err(|e| e.to_string())?;
        }
        if terms.len() != schema.arity(rel) {
            return Err(format!(
                "head fact over {name} has {} terms, arity is {}",
                terms.len(),
                schema.arity(rel)
            ));
        }
        out.push((rel, terms));
        if !p.eat(&TokenKind::Comma) {
            break;
        }
    }
    if !p.at_eof() {
        return Err(format!("unexpected trailing input in effect head `{src}`"));
    }
    Ok(out)
}

fn parse_eterm_str(
    p: &mut Parser,
    pool: &mut ConstantPool,
    services: &ServiceCatalog,
) -> Result<ETerm, String> {
    match p.peek_kind().clone() {
        TokenKind::Ident(name) => {
            if matches!(p.peek_ahead(1), TokenKind::LParen) {
                p.advance();
                let fid = services
                    .func_id(&name)
                    .ok_or_else(|| format!("unknown service {name}"))?;
                p.expect(&TokenKind::LParen).map_err(|e| e.to_string())?;
                let mut args = Vec::new();
                if !p.eat(&TokenKind::RParen) {
                    loop {
                        match p.peek_kind().clone() {
                            TokenKind::Ident(n) => {
                                p.advance();
                                if is_variable_name(&n) {
                                    args.push(BaseTerm::var(&n));
                                } else {
                                    args.push(BaseTerm::Const(pool.intern(&n)));
                                }
                            }
                            TokenKind::Quoted(n) => {
                                p.advance();
                                args.push(BaseTerm::Const(pool.intern(&n)));
                            }
                            other => return Err(format!("expected call argument, found {other}")),
                        }
                        if !p.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    p.expect(&TokenKind::RParen).map_err(|e| e.to_string())?;
                }
                if args.len() != services.arity(fid) {
                    return Err(format!(
                        "service {name} has arity {}, call has {} arguments",
                        services.arity(fid),
                        args.len()
                    ));
                }
                Ok(ETerm::Call(fid, args))
            } else {
                p.advance();
                if is_variable_name(&name) {
                    Ok(ETerm::var(&name))
                } else {
                    Ok(ETerm::constant(pool.intern(&name)))
                }
            }
        }
        TokenKind::Quoted(name) => {
            p.advance();
            Ok(ETerm::constant(pool.intern(&name)))
        }
        other => Err(format!("expected head term, found {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_example_4_3() {
        // α : { R(x) ⇝ Q(f(x)),  Q(x) ⇝ R(x) }
        let dcds = DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        assert_eq!(dcds.process.actions[0].effects.len(), 2);
    }

    #[test]
    fn builder_reports_first_error() {
        let r = DcdsBuilder::new().relation("P", 1).relation("P", 2).build();
        assert!(r.is_err());
    }

    #[test]
    fn constraint_strings_are_decomposed() {
        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .relation("Q", 2)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .constraint("P(X) & Q(Y, Z) -> X = Y")
            .action("alpha", &[], |a| {
                a.effect("P(X)", "P(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        assert_eq!(dcds.data.constraints.len(), 1);
    }

    #[test]
    fn fo_constraint_strings() {
        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .init_fact("P", &["a"])
            .fo_constraint("forall X . P(X) -> P(X)")
            .action("alpha", &[], |a| {
                a.effect("P(X)", "P(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        assert_eq!(dcds.data.fo_constraints.len(), 1);
    }

    #[test]
    fn bad_head_rejected() {
        let r = DcdsBuilder::new()
            .relation("P", 1)
            .init_fact("P", &["a"])
            .action("alpha", &[], |a| {
                a.effect("P(X)", "P(X, X)");
            })
            .rule("true", "alpha")
            .build();
        assert!(r.is_err());
    }
}
