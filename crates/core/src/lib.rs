//! # dcds-core
//!
//! Data-Centric Dynamic Systems: the primary model of Bagheri Hariri,
//! Calvanese, De Giacomo, Deutsch, Montali, *"Verification of Relational
//! Data-Centric Dynamic Systems with External Services"* (PODS 2013).
//!
//! A DCDS `S = ⟨D, P⟩` couples
//!
//! * a **data layer** `D = ⟨C, R, E, I₀⟩` — constants, schema, equality
//!   constraints and an initial instance ([`data_layer`]); and
//! * a **process layer** `P = ⟨F, A, ρ⟩` — external service interfaces,
//!   atomic actions with conditional effects, and condition–action rules
//!   ([`service`], [`action`], [`process`]).
//!
//! Executing an action computes `DO(I, ασ)` ([`do_op`]) — a set of facts over
//! constants and *ground service calls* (Skolem terms, [`term`]) — and then
//! resolves the calls, either **deterministically** (service-call maps,
//! Section 4.1, [`det`]) or **nondeterministically** (evaluations, Section
//! 5.1, [`nondet`]). Both semantics induce a (generally infinite) concrete
//! transition system; [`ts`] holds the explicit finite transition systems we
//! materialise, and [`explore`] performs bounded concrete exploration with
//! pluggable value oracles.
//!
//! [`commitment`] implements *equality commitments* (Appendix C.3), the
//! device by which the infinitely many successor evaluations are grouped
//! into finitely many isomorphism types; the finite abstractions themselves
//! live in the `dcds-abstraction` crate.
//!
//! A textual specification format is provided in [`parser`] and a
//! programmatic API in [`builder`].

pub mod action;
pub mod builder;
pub mod commitment;
pub mod compact;
pub mod data_layer;
pub mod dcds;
pub mod det;
pub mod display;
pub mod do_op;
pub mod explore;
pub mod nondet;
pub mod par;
pub mod parser;
pub mod process;
pub mod runner;
pub mod service;
pub mod spec;
pub mod term;
pub mod ts;

pub use action::{Action, ActionId, Effect};
pub use builder::DcdsBuilder;
pub use commitment::{enumerate_commitments, CommitTarget, Commitment};
pub use compact::CompactTs;
pub use data_layer::DataLayer;
pub use dcds::{Dcds, ValidationError};
pub use det::DetState;
pub use display::{to_spec, DcdsDisplay};
pub use do_op::{
    do_action, do_action_indexed, legal_assignments, legal_assignments_indexed, state_index,
    PlanCache, PreInstance,
};
pub use explore::{
    explore_det, explore_det_compact, explore_det_compact_opts, explore_det_compact_traced,
    explore_det_opts, explore_det_traced, explore_nondet, explore_nondet_compact,
    explore_nondet_compact_opts, explore_nondet_compact_traced, explore_nondet_opts,
    explore_nondet_traced, CompactDetExploration, CompactNondetExploration, ExploreOutcome, Limits,
};
pub use par::{configured_threads, par_map, par_map_obs, par_map_with, EngineCounters};
pub use parser::parse_dcds;
pub use process::{CaRule, FsProcess, ProcessLayer};
pub use runner::{AnswerPolicy, Runner, StepRecord};
pub use service::{FuncId, ServiceCatalog, ServiceKind};
pub use spec::{parse_spec, DcdsSpec, SpecError};
pub use term::{BaseTerm, ETerm, GTerm, ServiceCall};
pub use ts::{StateId, Ts};
