//! Terms of effect heads, and ground service calls.
//!
//! Effect heads `E_i` may mention (Section 2.2): constants of `ADOM(I₀)`,
//! the action's input parameters, free variables of the effect's positive
//! query — all represented as [`BaseTerm`]s — and Skolem terms `f(t, ...)`
//! applying a service function to base terms ([`ETerm::Call`]). Grounding a
//! head under a substitution yields [`GTerm`]s: values or *ground service
//! calls* ([`ServiceCall`]), the elements of the set
//! `SC = { f(v₁..vₙ) | f/n ∈ F, vᵢ ∈ C }`.

use crate::service::{FuncId, ServiceCatalog};
use dcds_folang::{Assignment, Var};
use dcds_reldata::{ConstantPool, Value};

/// A non-call term: constant or variable (action parameters and effect
/// variables are both [`Var`]s).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseTerm {
    /// A constant.
    Const(Value),
    /// A variable (action parameter or free variable of `q+`).
    Var(Var),
}

impl BaseTerm {
    /// Variable constructor.
    pub fn var(name: &str) -> Self {
        BaseTerm::Var(Var::new(name))
    }

    /// Ground the term under an assignment.
    pub fn ground(&self, asg: &Assignment) -> Option<Value> {
        match self {
            BaseTerm::Const(c) => Some(*c),
            BaseTerm::Var(v) => asg.get(v).copied(),
        }
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            BaseTerm::Var(v) => Some(v),
            BaseTerm::Const(_) => None,
        }
    }
}

/// A term of an effect head: a base term or a service call over base terms.
///
/// Per the paper, calls are *not* nested: a call's arguments are base terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ETerm {
    /// A constant or variable.
    Base(BaseTerm),
    /// A service call `f(t₁, ..., tₙ)`.
    Call(FuncId, Vec<BaseTerm>),
}

impl ETerm {
    /// Constant constructor.
    pub fn constant(v: Value) -> Self {
        ETerm::Base(BaseTerm::Const(v))
    }

    /// Variable constructor.
    pub fn var(name: &str) -> Self {
        ETerm::Base(BaseTerm::var(name))
    }

    /// Service-call constructor.
    pub fn call(f: FuncId, args: Vec<BaseTerm>) -> Self {
        ETerm::Call(f, args)
    }

    /// Variables occurring in the term.
    pub fn vars(&self) -> Vec<&Var> {
        match self {
            ETerm::Base(b) => b.as_var().into_iter().collect(),
            ETerm::Call(_, args) => args.iter().filter_map(BaseTerm::as_var).collect(),
        }
    }

    /// Constants occurring in the term.
    pub fn constants(&self) -> Vec<Value> {
        match self {
            ETerm::Base(BaseTerm::Const(c)) => vec![*c],
            ETerm::Base(BaseTerm::Var(_)) => vec![],
            ETerm::Call(_, args) => args
                .iter()
                .filter_map(|b| match b {
                    BaseTerm::Const(c) => Some(*c),
                    BaseTerm::Var(_) => None,
                })
                .collect(),
        }
    }

    /// Ground the term under an assignment, yielding a value or a ground
    /// service call. `None` if some variable is unbound.
    pub fn ground(&self, asg: &Assignment) -> Option<GTerm> {
        match self {
            ETerm::Base(b) => b.ground(asg).map(GTerm::Val),
            ETerm::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.ground(asg)?);
                }
                Some(GTerm::Call(ServiceCall {
                    func: *f,
                    args: vals,
                }))
            }
        }
    }
}

/// A ground service call `f(v₁, ..., vₙ)` — an element of `SC`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceCall {
    /// The function.
    pub func: FuncId,
    /// Ground arguments.
    pub args: Vec<Value>,
}

impl ServiceCall {
    /// Render using a catalog and pool, e.g. `f(a,b)`.
    pub fn display(&self, catalog: &ServiceCatalog, pool: &ConstantPool) -> String {
        let mut s = String::from(catalog.name(self.func));
        s.push('(');
        for (i, v) in self.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(pool.name(*v));
        }
        s.push(')');
        s
    }
}

/// A ground term: a value or a ground service call awaiting resolution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GTerm {
    /// An ordinary value.
    Val(Value),
    /// An unresolved service call.
    Call(ServiceCall),
}

impl GTerm {
    /// The value inside, if resolved.
    pub fn as_val(&self) -> Option<Value> {
        match self {
            GTerm::Val(v) => Some(*v),
            GTerm::Call(_) => None,
        }
    }

    /// The call inside, if unresolved.
    pub fn as_call(&self) -> Option<&ServiceCall> {
        match self {
            GTerm::Val(_) => None,
            GTerm::Call(c) => Some(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceKind;

    #[test]
    fn grounding_base_terms() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let mut asg = Assignment::new();
        asg.insert(Var::new("X"), a);
        assert_eq!(BaseTerm::Const(a).ground(&asg), Some(a));
        assert_eq!(BaseTerm::var("X").ground(&asg), Some(a));
        assert_eq!(BaseTerm::var("Y").ground(&asg), None);
    }

    #[test]
    fn grounding_calls() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let mut cat = ServiceCatalog::new();
        let f = cat.add("f", 1, ServiceKind::Deterministic).unwrap();
        let mut asg = Assignment::new();
        asg.insert(Var::new("X"), a);
        let t = ETerm::call(f, vec![BaseTerm::var("X")]);
        let g = t.ground(&asg).unwrap();
        assert_eq!(
            g,
            GTerm::Call(ServiceCall {
                func: f,
                args: vec![a]
            })
        );
        assert_eq!(g.as_call().unwrap().display(&cat, &pool), "f(a)");
    }

    #[test]
    fn vars_and_constants_of_terms() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let mut cat = ServiceCatalog::new();
        let f = cat.add("f", 2, ServiceKind::Deterministic).unwrap();
        let t = ETerm::call(f, vec![BaseTerm::var("X"), BaseTerm::Const(a)]);
        assert_eq!(t.vars().len(), 1);
        assert_eq!(t.constants(), vec![a]);
    }

    #[test]
    fn nullary_call_grounds_without_bindings() {
        let mut cat = ServiceCatalog::new();
        let f = cat.add("f", 0, ServiceKind::Nondeterministic).unwrap();
        let t = ETerm::call(f, vec![]);
        let g = t.ground(&Assignment::new()).unwrap();
        assert!(matches!(g, GTerm::Call(c) if c.args.is_empty()));
    }
}
