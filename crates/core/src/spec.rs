//! Span-carrying surface AST for `.dcds` specifications.
//!
//! [`parse_spec`] accepts anything that is *syntactically* well formed —
//! unknown relations, arity mismatches, unbound variables and other
//! semantic defects do **not** abort the parse. Instead every relation
//! atom is resolved tolerantly (see [`Parser::record_atom_uses`]) and
//! recorded as a [`RelUse`] with its source position, so downstream tools
//! (`dcds-lint`) can re-check the spec and point diagnostics at
//! `file:line:col`.
//!
//! [`DcdsSpec::lower`] then applies today's strict semantics and produces
//! the validated [`Dcds`]; [`crate::parse_dcds`] is `parse_spec` + `lower`.

use crate::action::{Action, ActionId, Effect};
use crate::data_layer::DataLayer;
use crate::dcds::{Dcds, ValidationError};
use crate::process::{CaRule, ProcessLayer};
use crate::service::{ServiceCatalog, ServiceKind};
use crate::term::{BaseTerm, ETerm};
use dcds_folang::lexer::{Span, TokenKind};
use dcds_folang::parser::{is_variable_name, ParseError, Parser, RelUse, Resolver};
use dcds_folang::{FoConstraint, Formula};
use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};
use std::fmt;

/// A relation declaration `P 2;` in the `schema` block.
#[derive(Debug, Clone)]
pub struct RelDecl {
    /// Relation name.
    pub name: String,
    /// Declared arity.
    pub arity: usize,
    /// Position of the name.
    pub span: Span,
}

/// A service declaration `f 1 det;` in the `services` block.
#[derive(Debug, Clone)]
pub struct SvcDecl {
    /// Service name.
    pub name: String,
    /// Declared arity.
    pub arity: usize,
    /// Deterministic or nondeterministic semantics.
    pub kind: ServiceKind,
    /// Position of the name.
    pub span: Span,
}

/// An `init` fact `P(a, 'b c');`.
#[derive(Debug, Clone)]
pub struct InitFactDecl {
    /// Relation name as written.
    pub rel: String,
    /// Constant arguments as written.
    pub args: Vec<String>,
    /// Position of the relation name.
    pub span: Span,
}

/// A `constraint premise -> eq & ...;` item (equality constraint).
#[derive(Debug, Clone)]
pub struct ConstraintDecl {
    /// The whole constraint formula, atoms resolved tolerantly.
    pub formula: Formula,
    /// Every relation atom occurring in the formula.
    pub uses: Vec<RelUse>,
    /// Position of the `constraint` keyword.
    pub span: Span,
}

/// An `assert <sentence>;` item (FO integrity constraint).
#[derive(Debug, Clone)]
pub struct AssertDecl {
    /// The asserted sentence, atoms resolved tolerantly.
    pub formula: Formula,
    /// Every relation atom occurring in the formula.
    pub uses: Vec<RelUse>,
    /// Position of the `assert` keyword.
    pub span: Span,
}

/// A term in an effect head: variable, constant, or service call.
#[derive(Debug, Clone)]
pub enum SpecTerm {
    /// A variable (uppercase / `_` start).
    Var {
        /// Variable name.
        name: String,
        /// Position of the name.
        span: Span,
    },
    /// A constant (other identifier or quoted string).
    Const {
        /// Constant text.
        name: String,
        /// Position of the constant.
        span: Span,
    },
    /// A service call `f(t, ...)` over variables/constants.
    Call {
        /// Service name as written.
        service: String,
        /// Position of the service name.
        span: Span,
        /// Argument terms (never nested calls).
        args: Vec<SpecTerm>,
    },
}

impl SpecTerm {
    /// The position of this term.
    pub fn span(&self) -> Span {
        match self {
            SpecTerm::Var { span, .. }
            | SpecTerm::Const { span, .. }
            | SpecTerm::Call { span, .. } => *span,
        }
    }
}

/// One head fact `R(t, ...)` of an effect.
#[derive(Debug, Clone)]
pub struct HeadFactDecl {
    /// Relation name as written.
    pub rel: String,
    /// Position of the relation name.
    pub span: Span,
    /// Head terms.
    pub terms: Vec<SpecTerm>,
}

/// One effect `body ~> head, head;` of an action.
#[derive(Debug, Clone)]
pub struct EffectDecl {
    /// The effect body (`q⁺ ∧ Q⁻` before splitting).
    pub body: Formula,
    /// Relation atoms of the body.
    pub body_uses: Vec<RelUse>,
    /// Head facts.
    pub heads: Vec<HeadFactDecl>,
    /// Position where the effect starts.
    pub span: Span,
}

/// An `action name(params) { effects }` item.
#[derive(Debug, Clone)]
pub struct ActionDecl {
    /// Action name.
    pub name: String,
    /// Position of the name.
    pub span: Span,
    /// Parameter variables.
    pub params: Vec<dcds_folang::Var>,
    /// The action's effects.
    pub effects: Vec<EffectDecl>,
}

/// A `rule condition => action;` item.
#[derive(Debug, Clone)]
pub struct RuleDecl {
    /// The condition query.
    pub condition: Formula,
    /// Relation atoms of the condition.
    pub cond_uses: Vec<RelUse>,
    /// Invoked action name as written.
    pub action: String,
    /// Position of the action name.
    pub action_span: Span,
    /// Position of the `rule` keyword.
    pub span: Span,
}

/// A parsed-but-not-yet-validated DCDS specification, with source spans.
#[derive(Debug, Clone)]
pub struct DcdsSpec {
    /// Relation declarations in source order (duplicates included).
    pub relations: Vec<RelDecl>,
    /// Service declarations in source order (duplicates included).
    pub services: Vec<SvcDecl>,
    /// `init` facts in source order.
    pub init: Vec<InitFactDecl>,
    /// Equality constraints.
    pub constraints: Vec<ConstraintDecl>,
    /// FO integrity constraints.
    pub asserts: Vec<AssertDecl>,
    /// Actions in source order.
    pub actions: Vec<ActionDecl>,
    /// CA rules in source order.
    pub rules: Vec<RuleDecl>,
    /// Working schema: the declared relations (first declaration wins on
    /// duplicates) plus `name/arity` scratch entries for atom uses that
    /// matched no declaration. Formulas in this spec refer to its ids.
    pub schema: Schema,
    /// Constants interned while parsing, in first-occurrence order.
    pub pool: ConstantPool,
}

impl DcdsSpec {
    /// The first declaration of relation `name`, if any.
    pub fn declared_relation(&self, name: &str) -> Option<&RelDecl> {
        self.relations.iter().find(|d| d.name == name)
    }

    /// The first declaration of service `name`, if any.
    pub fn declared_service(&self, name: &str) -> Option<&SvcDecl> {
        self.services.iter().find(|d| d.name == name)
    }

    /// The first action named `name`, if any.
    pub fn action(&self, name: &str) -> Option<&ActionDecl> {
        self.actions.iter().find(|a| a.name == name)
    }

    /// All relation atom uses across constraints, asserts, effect bodies
    /// and rule conditions, in source order within each item class.
    pub fn formula_uses(&self) -> impl Iterator<Item = &RelUse> {
        self.constraints
            .iter()
            .map(|c| &c.uses)
            .chain(self.asserts.iter().map(|a| &a.uses))
            .chain(
                self.actions
                    .iter()
                    .flat_map(|a| a.effects.iter().map(|e| &e.body_uses)),
            )
            .chain(self.rules.iter().map(|r| &r.cond_uses))
            .flatten()
    }
}

/// A semantic error raised while lowering a [`DcdsSpec`] to a [`Dcds`],
/// with a source position when one is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable message.
    pub message: String,
    /// Where the offending construct appears, when known.
    pub span: Option<Span>,
}

impl SpecError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        SpecError {
            message: message.into(),
            span: Some(span),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "{s}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> Self {
        SpecError {
            span: Some(Span::new(e.line, e.col)),
            message: e.message,
        }
    }
}

/// Parse a DCDS specification into the tolerant, span-carrying AST.
/// Only *syntax* errors are reported here; semantic defects are left in
/// the AST for `DcdsSpec::lower` or the lint passes to find.
pub fn parse_spec(src: &str) -> Result<DcdsSpec, ParseError> {
    let mut p = Parser::new(src)?;
    p.record_atom_uses();
    let mut spec = DcdsSpec {
        relations: Vec::new(),
        services: Vec::new(),
        init: Vec::new(),
        constraints: Vec::new(),
        asserts: Vec::new(),
        actions: Vec::new(),
        rules: Vec::new(),
        schema: Schema::new(),
        pool: ConstantPool::new(),
    };

    while !p.at_eof() {
        let item_span = p.peek_span();
        if p.eat_keyword("schema") {
            parse_schema_block(&mut p, &mut spec)?;
        } else if p.eat_keyword("services") {
            parse_services_block(&mut p, &mut spec)?;
        } else if p.eat_keyword("init") {
            parse_init_block(&mut p, &mut spec)?;
        } else if p.eat_keyword("constraint") {
            let formula = parse_item_formula(&mut p, &mut spec)?;
            p.expect(&TokenKind::Semicolon)?;
            let uses = p.take_atom_uses();
            spec.constraints.push(ConstraintDecl {
                formula,
                uses,
                span: item_span,
            });
        } else if p.eat_keyword("assert") {
            let formula = parse_item_formula(&mut p, &mut spec)?;
            p.expect(&TokenKind::Semicolon)?;
            let uses = p.take_atom_uses();
            spec.asserts.push(AssertDecl {
                formula,
                uses,
                span: item_span,
            });
        } else if p.eat_keyword("action") {
            parse_action_item(&mut p, &mut spec)?;
        } else if p.eat_keyword("rule") {
            let condition = parse_item_formula(&mut p, &mut spec)?;
            let cond_uses = p.take_atom_uses();
            p.expect(&TokenKind::FatArrow)?;
            let action_span = p.peek_span();
            let action = p.expect_ident()?;
            p.expect(&TokenKind::Semicolon)?;
            spec.rules.push(RuleDecl {
                condition,
                cond_uses,
                action,
                action_span,
                span: item_span,
            });
        } else {
            return Err(p.error(&format!(
                "expected a top-level item, found {}",
                p.peek_kind()
            )));
        }
    }
    Ok(spec)
}

/// Parse a formula against the spec's working schema/pool, tolerantly.
fn parse_item_formula(p: &mut Parser, spec: &mut DcdsSpec) -> Result<Formula, ParseError> {
    let mut r = Resolver {
        schema: &mut spec.schema,
        pool: &mut spec.pool,
        extend_schema: false,
    };
    p.parse_formula(&mut r)
}

fn parse_schema_block(p: &mut Parser, spec: &mut DcdsSpec) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while !p.eat(&TokenKind::RBrace) {
        let span = p.peek_span();
        let name = p.expect_ident()?;
        let arity = parse_arity(p)?;
        // The first declaration wins in the working schema; duplicates stay
        // in `relations` for the lint passes / lowering to reject.
        let _ = spec.schema.add_relation(&name, arity);
        spec.relations.push(RelDecl { name, arity, span });
        p.expect(&TokenKind::Semicolon)?;
    }
    Ok(())
}

fn parse_services_block(p: &mut Parser, spec: &mut DcdsSpec) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while !p.eat(&TokenKind::RBrace) {
        let span = p.peek_span();
        let name = p.expect_ident()?;
        let arity = parse_arity(p)?;
        let kind = if p.eat_keyword("det") {
            ServiceKind::Deterministic
        } else if p.eat_keyword("nondet") {
            ServiceKind::Nondeterministic
        } else {
            return Err(p.error("expected `det` or `nondet`"));
        };
        spec.services.push(SvcDecl {
            name,
            arity,
            kind,
            span,
        });
        p.expect(&TokenKind::Semicolon)?;
    }
    Ok(())
}

fn parse_arity(p: &mut Parser) -> Result<usize, ParseError> {
    // Arity is written `P 2` (digits lex as identifiers).
    let tok = p.expect_ident()?;
    tok.parse::<usize>()
        .map_err(|_| p.error(&format!("expected arity (a number), found `{tok}`")))
}

fn parse_init_block(p: &mut Parser, spec: &mut DcdsSpec) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while !p.eat(&TokenKind::RBrace) {
        let span = p.peek_span();
        let rel = p.expect_ident()?;
        let mut args = Vec::new();
        if p.eat(&TokenKind::LParen) && !p.eat(&TokenKind::RParen) {
            loop {
                match p.peek_kind().clone() {
                    TokenKind::Ident(s) if !is_variable_name(&s) => {
                        p.advance();
                        spec.pool.intern(&s);
                        args.push(s);
                    }
                    TokenKind::Quoted(s) => {
                        p.advance();
                        spec.pool.intern(&s);
                        args.push(s);
                    }
                    other => {
                        return Err(
                            p.error(&format!("expected constant in init fact, found {other}"))
                        )
                    }
                }
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            p.expect(&TokenKind::RParen)?;
        }
        spec.init.push(InitFactDecl { rel, args, span });
        p.expect(&TokenKind::Semicolon)?;
    }
    Ok(())
}

fn parse_action_item(p: &mut Parser, spec: &mut DcdsSpec) -> Result<(), ParseError> {
    let span = p.peek_span();
    let name = p.expect_ident()?;
    let mut params = Vec::new();
    p.expect(&TokenKind::LParen)?;
    if !p.eat(&TokenKind::RParen) {
        params = p.parse_var_list()?;
        p.expect(&TokenKind::RParen)?;
    }
    p.expect(&TokenKind::LBrace)?;
    let mut effects = Vec::new();
    while !p.eat(&TokenKind::RBrace) {
        let espan = p.peek_span();
        let body = parse_item_formula(p, spec)?;
        let body_uses = p.take_atom_uses();
        p.expect(&TokenKind::Squiggle)?;
        let mut heads = Vec::new();
        loop {
            heads.push(parse_head_fact_decl(p, spec)?);
            if !p.eat(&TokenKind::Comma) {
                break;
            }
        }
        p.expect(&TokenKind::Semicolon)?;
        effects.push(EffectDecl {
            body,
            body_uses,
            heads,
            span: espan,
        });
    }
    spec.actions.push(ActionDecl {
        name,
        span,
        params,
        effects,
    });
    Ok(())
}

/// Parse one head fact `R(term, ...)` where terms may be service calls.
/// No name resolution happens here — lowering and the lint passes check
/// relation and service names against the declarations.
fn parse_head_fact_decl(p: &mut Parser, spec: &mut DcdsSpec) -> Result<HeadFactDecl, ParseError> {
    let span = p.peek_span();
    let rel = p.expect_ident()?;
    let mut terms = Vec::new();
    if p.eat(&TokenKind::LParen) && !p.eat(&TokenKind::RParen) {
        loop {
            terms.push(parse_spec_term(p, spec)?);
            if !p.eat(&TokenKind::Comma) {
                break;
            }
        }
        p.expect(&TokenKind::RParen)?;
    }
    Ok(HeadFactDecl { rel, span, terms })
}

fn parse_spec_term(p: &mut Parser, spec: &mut DcdsSpec) -> Result<SpecTerm, ParseError> {
    match p.peek_kind().clone() {
        TokenKind::Ident(name) => {
            let span = p.peek_span();
            if matches!(p.peek_ahead(1), TokenKind::LParen) {
                // Service call.
                p.advance();
                p.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                if !p.eat(&TokenKind::RParen) {
                    loop {
                        args.push(parse_spec_base_term(p, spec)?);
                        if !p.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    p.expect(&TokenKind::RParen)?;
                }
                Ok(SpecTerm::Call {
                    service: name,
                    span,
                    args,
                })
            } else {
                p.advance();
                if is_variable_name(&name) {
                    Ok(SpecTerm::Var { name, span })
                } else {
                    spec.pool.intern(&name);
                    Ok(SpecTerm::Const { name, span })
                }
            }
        }
        TokenKind::Quoted(name) => {
            let span = p.peek_span();
            p.advance();
            spec.pool.intern(&name);
            Ok(SpecTerm::Const { name, span })
        }
        other => Err(p.error(&format!("expected head term, found {other}"))),
    }
}

/// Service-call arguments: variables and constants only, as in the strict
/// grammar (service calls do not nest).
fn parse_spec_base_term(p: &mut Parser, spec: &mut DcdsSpec) -> Result<SpecTerm, ParseError> {
    match p.peek_kind().clone() {
        TokenKind::Ident(name) => {
            let span = p.peek_span();
            p.advance();
            if is_variable_name(&name) {
                Ok(SpecTerm::Var { name, span })
            } else {
                spec.pool.intern(&name);
                Ok(SpecTerm::Const { name, span })
            }
        }
        TokenKind::Quoted(name) => {
            let span = p.peek_span();
            p.advance();
            spec.pool.intern(&name);
            Ok(SpecTerm::Const { name, span })
        }
        other => Err(p.error(&format!("expected variable or constant, found {other}"))),
    }
}

impl DcdsSpec {
    /// Apply the strict semantics: re-check every tolerated construct and
    /// build the validated [`Dcds`]. The error carries the span of the
    /// offending construct when one is known.
    pub fn lower(&self) -> Result<Dcds, SpecError> {
        // Duplicate declarations.
        for (ix, d) in self.relations.iter().enumerate() {
            if self.relations[..ix].iter().any(|e| e.name == d.name) {
                return Err(SpecError::new(
                    format!("duplicate relation {}", d.name),
                    d.span,
                ));
            }
        }
        for (ix, d) in self.services.iter().enumerate() {
            if self.services[..ix].iter().any(|e| e.name == d.name) {
                return Err(SpecError::new(
                    format!("duplicate service {}", d.name),
                    d.span,
                ));
            }
        }
        for (ix, a) in self.actions.iter().enumerate() {
            if self.actions[..ix].iter().any(|e| e.name == a.name) {
                return Err(SpecError::new(
                    format!("duplicate action {}", a.name),
                    a.span,
                ));
            }
        }

        // Every tolerated atom use must match a declared relation.
        for u in self.formula_uses() {
            match self.declared_relation(&u.name) {
                None => {
                    return Err(SpecError::new(
                        format!("unknown relation {}", u.name),
                        u.span,
                    ))
                }
                Some(d) if d.arity != u.arity => {
                    return Err(SpecError::new(
                        format!(
                            "relation {} has arity {}, atom has {} arguments",
                            u.name, d.arity, u.arity
                        ),
                        u.span,
                    ))
                }
                Some(_) => {}
            }
        }

        // With all uses resolved and duplicates rejected, the working
        // schema contains exactly the declared relations.
        let schema = self.schema.clone();
        let mut pool = self.pool.clone();

        let mut services = ServiceCatalog::new();
        for d in &self.services {
            services
                .add(&d.name, d.arity, d.kind)
                .map_err(|m| SpecError::new(m, d.span))?;
        }

        let mut initial = Instance::new();
        for f in &self.init {
            let rel = schema
                .rel_id(&f.rel)
                .filter(|_| self.declared_relation(&f.rel).is_some())
                .ok_or_else(|| SpecError::new(format!("unknown relation {}", f.rel), f.span))?;
            if f.args.len() != schema.arity(rel) {
                return Err(SpecError::new(
                    format!(
                        "init fact over {} has {} constants, arity is {}",
                        f.rel,
                        f.args.len(),
                        schema.arity(rel)
                    ),
                    f.span,
                ));
            }
            let vals: Vec<_> = f.args.iter().map(|a| pool.intern(a)).collect();
            initial.insert(rel, Tuple::from(vals));
        }

        let mut constraints = Vec::new();
        for c in &self.constraints {
            constraints.push(
                crate::parser::decompose_equality_constraint(c.formula.clone())
                    .map_err(|m| SpecError::new(m, c.span))?,
            );
        }
        let mut fo_constraints = Vec::new();
        for a in &self.asserts {
            fo_constraints.push(
                FoConstraint::new(a.formula.clone())
                    .map_err(|e| SpecError::new(e.to_string(), a.span))?,
            );
        }

        let mut actions: Vec<Action> = Vec::new();
        for a in &self.actions {
            let mut effects = Vec::new();
            for e in &a.effects {
                let mut head = Vec::new();
                for h in &e.heads {
                    head.push(self.lower_head_fact(h, &schema, &services, &mut pool)?);
                }
                let effect: Effect =
                    crate::parser::effect_from_body(e.body.clone(), head, &a.params)
                        .map_err(|m| SpecError::new(m, e.span))?;
                effects.push(effect);
            }
            actions.push(Action::new(&a.name, a.params.clone(), effects));
        }

        let mut rules = Vec::new();
        for r in &self.rules {
            let id = actions
                .iter()
                .position(|a| a.name == r.action)
                .map(ActionId::from_index)
                .ok_or_else(|| {
                    SpecError::new(
                        format!("rule references unknown action {}", r.action),
                        r.action_span,
                    )
                })?;
            rules.push(CaRule {
                condition: r.condition.clone(),
                action: id,
            });
        }

        let mut data = DataLayer::new(pool, schema, initial);
        data.constraints = constraints;
        data.fo_constraints = fo_constraints;
        let process = ProcessLayer {
            services,
            actions,
            rules,
        };
        Dcds::new(data, process).map_err(|e| self.validation_span(e))
    }

    fn lower_head_fact(
        &self,
        h: &HeadFactDecl,
        schema: &Schema,
        services: &ServiceCatalog,
        pool: &mut ConstantPool,
    ) -> Result<(dcds_reldata::RelId, Vec<ETerm>), SpecError> {
        let rel = schema
            .rel_id(&h.rel)
            .filter(|_| self.declared_relation(&h.rel).is_some())
            .ok_or_else(|| {
                SpecError::new(format!("unknown relation {} in effect head", h.rel), h.span)
            })?;
        if h.terms.len() != schema.arity(rel) {
            return Err(SpecError::new(
                format!(
                    "head fact over {} has {} terms, arity is {}",
                    h.rel,
                    h.terms.len(),
                    schema.arity(rel)
                ),
                h.span,
            ));
        }
        let mut terms = Vec::new();
        for t in &h.terms {
            terms.push(lower_eterm(t, services, pool)?);
        }
        Ok((rel, terms))
    }

    /// Attach the source span of the construct a [`ValidationError`] is
    /// about, when the spec still knows it.
    fn validation_span(&self, e: ValidationError) -> SpecError {
        let span = match &e {
            ValidationError::DataLayer(_) => None,
            ValidationError::RuleParamMismatch { rule, .. } => {
                self.rules.get(*rule).map(|r| r.span)
            }
            ValidationError::Effect { action, effect, .. } => self
                .action(action)
                .and_then(|a| a.effects.get(*effect))
                .map(|eff| eff.span),
        };
        SpecError {
            message: e.to_string(),
            span,
        }
    }
}

fn lower_eterm(
    t: &SpecTerm,
    services: &ServiceCatalog,
    pool: &mut ConstantPool,
) -> Result<ETerm, SpecError> {
    match t {
        SpecTerm::Var { name, .. } => Ok(ETerm::var(name)),
        SpecTerm::Const { name, .. } => Ok(ETerm::constant(pool.intern(name))),
        SpecTerm::Call {
            service,
            span,
            args,
        } => {
            let fid = services
                .func_id(service)
                .ok_or_else(|| SpecError::new(format!("unknown service {service}"), *span))?;
            if args.len() != services.arity(fid) {
                return Err(SpecError::new(
                    format!(
                        "service {service} has arity {}, call has {} arguments",
                        services.arity(fid),
                        args.len()
                    ),
                    *span,
                ));
            }
            let mut base = Vec::new();
            for a in args {
                base.push(match a {
                    SpecTerm::Var { name, .. } => BaseTerm::var(name),
                    SpecTerm::Const { name, .. } => BaseTerm::Const(pool.intern(name)),
                    SpecTerm::Call { span, .. } => {
                        return Err(SpecError::new(
                            "service calls cannot be nested".to_owned(),
                            *span,
                        ))
                    }
                });
            }
            Ok(ETerm::Call(fid, base))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerant_parse_keeps_semantic_defects() {
        let spec = parse_spec(
            r"
            schema { P 1; P 2; }
            init   { Q(a); }
            action alpha() { P(X, Y) & Nope(X) ~> Gone(Z, f(W)); }
            rule true => beta;
            ",
        )
        .unwrap();
        assert_eq!(spec.relations.len(), 2);
        assert_eq!(spec.actions[0].effects[0].body_uses.len(), 2);
        assert_eq!(spec.rules[0].action, "beta");
        // Scratch relations keep the formulas well-typed internally.
        assert!(spec.schema.rel_id("P/2").is_some());
        assert!(spec.schema.rel_id("Nope/1").is_some());
        // But lowering rejects the first defect, with a position.
        let err = spec.lower().unwrap_err();
        assert!(err.message.contains("duplicate relation P"), "{err}");
        assert_eq!(err.span.map(|s| s.line), Some(2));
    }

    #[test]
    fn spans_point_at_atom_names() {
        let spec = parse_spec("schema { P 1; }\ninit { P(a); }\naction a1() { P(X) & Nope(X) ~> P(X); }\nrule true => a1;").unwrap();
        let bad = spec
            .formula_uses()
            .find(|u| u.name == "Nope")
            .expect("use recorded");
        assert_eq!((bad.span.line, bad.span.col), (3, 22));
        let err = spec.lower().unwrap_err();
        assert!(err.message.contains("unknown relation Nope"));
        assert_eq!(err.span, Some(bad.span));
    }

    #[test]
    fn lowering_matches_strict_parser_on_good_specs() {
        let src = r"
            schema   { Q 2; P 1; R 1; }
            services { f 1 det; g 1 det; }
            init     { P(a); Q(a, a); }
            constraint P(X) & Q(Y, Z) -> X = Y;
            action alpha() {
                Q(a, a) & P(X) ~> R(X);
                P(X)           ~> P(X), Q(f(X), g(X));
            }
            rule true => alpha;
        ";
        let dcds = parse_spec(src).unwrap().lower().unwrap();
        assert_eq!(dcds.data.schema.len(), 3);
        assert_eq!(dcds.process.actions.len(), 1);
        assert_eq!(dcds.data.constraints.len(), 1);
        assert!(dcds.is_deterministic());
    }
}
